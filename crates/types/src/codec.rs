//! Self-contained binary codec for wire messages and storage records.
//!
//! The real UDP/TCP transports serialize [`Message`]s with this codec, and
//! `rmem-storage` reuses the primitive helpers for its on-disk records, so
//! no external serialization framework touches the wire or disk format.
//! The encoding is deliberately simple: fixed-width big-endian integers and
//! length-prefixed byte strings.
//!
//! # Example
//!
//! ```
//! use rmem_types::codec;
//! use rmem_types::{Message, ProcessId, RequestId, Timestamp, Value};
//!
//! let msg = Message::Write {
//!     req: RequestId::new(ProcessId(2), 40),
//!     ts: Timestamp::new(7, ProcessId(2)),
//!     value: Value::from_u32(123),
//! };
//! let bytes = codec::encode_message(&msg);
//! assert_eq!(codec::decode_message(&bytes)?, msg);
//! # Ok::<(), rmem_types::DecodeError>(())
//! ```

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::error::DecodeError;
use crate::message::{Message, RequestId};
use crate::process::ProcessId;
use crate::timestamp::Timestamp;
use crate::value::Value;

/// Upper bound accepted for a length prefix: a value may be up to 64 KiB
/// (the UDP datagram limit the paper works under, §V-B) plus generous
/// header room.
pub const MAX_LEN: usize = 1 << 20;

/// Worst-case encoded size of a value-carrying message (`Write`/`ReadAck`)
/// minus the value bytes: tag (1), request id (12), timestamp (10), value
/// marker and length prefix (5), the `ReadAck` durability flag (1) and
/// lease grant (4), and the optional trace envelope ([`TRACE_OVERHEAD`],
/// 11 bytes). A `Write` encodes five bytes smaller; the constant is the
/// maximum because an admitted value must fit the frame in *both*
/// directions — the write that propagates it and the read acks that later
/// carry it back — whether or not tracing stamps the message.
///
/// Transports cap whole encoded messages; layers that admit *values* (the
/// runner's client API, the store) subtract this overhead from the
/// transport's frame limit to decide whether a value can ever reach a
/// quorum. Pinned by a test against [`encode_message_traced`].
pub const VALUE_MSG_OVERHEAD: usize = 33 + TRACE_OVERHEAD;

/// Encoded size of the optional trace envelope appended by
/// [`encode_message_traced`]: marker (1) + client-family id (2) + op
/// counter (8).
pub const TRACE_OVERHEAD: usize = 11;

/// Marker byte opening a trace envelope. Chosen outside the message tag
/// range so a suffix starting with it never parses as a message.
const TRACE_MARKER: u8 = 0xC7;

// ---------------------------------------------------------------------
// Primitive helpers (shared with rmem-storage's record encoding)
// ---------------------------------------------------------------------

/// Appends a `u64` in big-endian order.
pub fn put_u64(buf: &mut BytesMut, v: u64) {
    buf.put_u64(v);
}

/// Reads a big-endian `u64`.
pub fn get_u64(buf: &mut impl Buf, context: &'static str) -> Result<u64, DecodeError> {
    if buf.remaining() < 8 {
        return Err(DecodeError::UnexpectedEof { context });
    }
    Ok(buf.get_u64())
}

/// Appends a `u16` in big-endian order.
pub fn put_u16(buf: &mut BytesMut, v: u16) {
    buf.put_u16(v);
}

/// Reads a big-endian `u16`.
pub fn get_u16(buf: &mut impl Buf, context: &'static str) -> Result<u16, DecodeError> {
    if buf.remaining() < 2 {
        return Err(DecodeError::UnexpectedEof { context });
    }
    Ok(buf.get_u16())
}

/// Appends a single byte.
pub fn put_u8(buf: &mut BytesMut, v: u8) {
    buf.put_u8(v);
}

/// Reads a single byte.
pub fn get_u8(buf: &mut impl Buf, context: &'static str) -> Result<u8, DecodeError> {
    if !buf.has_remaining() {
        return Err(DecodeError::UnexpectedEof { context });
    }
    Ok(buf.get_u8())
}

/// Appends a length-prefixed byte string (`u32` length, then the bytes).
pub fn put_bytes(buf: &mut BytesMut, bytes: &[u8]) {
    debug_assert!(bytes.len() <= MAX_LEN);
    buf.put_u32(bytes.len() as u32);
    buf.put_slice(bytes);
}

/// Reads a length-prefixed byte string.
pub fn get_bytes(buf: &mut impl Buf, context: &'static str) -> Result<Bytes, DecodeError> {
    if buf.remaining() < 4 {
        return Err(DecodeError::UnexpectedEof { context });
    }
    let len = buf.get_u32() as usize;
    if len > MAX_LEN {
        return Err(DecodeError::BadLength { context, len });
    }
    if buf.remaining() < len {
        return Err(DecodeError::UnexpectedEof { context });
    }
    Ok(buf.copy_to_bytes(len))
}

// ---------------------------------------------------------------------
// Composite helpers
// ---------------------------------------------------------------------

/// Appends a [`ProcessId`].
pub fn put_process_id(buf: &mut BytesMut, pid: ProcessId) {
    put_u16(buf, pid.0);
}

/// Reads a [`ProcessId`].
pub fn get_process_id(buf: &mut impl Buf, context: &'static str) -> Result<ProcessId, DecodeError> {
    Ok(ProcessId(get_u16(buf, context)?))
}

/// Appends a [`Timestamp`].
pub fn put_timestamp(buf: &mut BytesMut, ts: Timestamp) {
    put_u64(buf, ts.seq);
    put_process_id(buf, ts.pid);
}

/// Reads a [`Timestamp`].
pub fn get_timestamp(buf: &mut impl Buf, context: &'static str) -> Result<Timestamp, DecodeError> {
    let seq = get_u64(buf, context)?;
    let pid = get_process_id(buf, context)?;
    Ok(Timestamp { seq, pid })
}

/// Appends a [`RequestId`].
pub fn put_request_id(buf: &mut BytesMut, req: RequestId) {
    put_process_id(buf, req.origin);
    put_u64(buf, req.nonce);
    put_u16(buf, req.reg.0);
}

/// Reads a [`RequestId`].
pub fn get_request_id(buf: &mut impl Buf, context: &'static str) -> Result<RequestId, DecodeError> {
    let origin = get_process_id(buf, context)?;
    let nonce = get_u64(buf, context)?;
    let reg = crate::RegisterId(get_u16(buf, context)?);
    Ok(RequestId { origin, nonce, reg })
}

/// Appends a [`Value`], preserving the ⊥/non-⊥ distinction.
pub fn put_value(buf: &mut BytesMut, value: &Value) {
    put_u8(buf, if value.is_bottom() { 0 } else { 1 });
    put_bytes(buf, value.bytes());
}

/// Reads a [`Value`].
pub fn get_value(buf: &mut impl Buf, context: &'static str) -> Result<Value, DecodeError> {
    let marker = get_u8(buf, context)?;
    let bytes = get_bytes(buf, context)?;
    match marker {
        0 => Ok(Value::bottom()),
        1 => Ok(Value::new(bytes)),
        tag => Err(DecodeError::BadTag { context, tag }),
    }
}

// ---------------------------------------------------------------------
// Message codec
// ---------------------------------------------------------------------

const TAG_SN_REQ: u8 = 1;
const TAG_SN_ACK: u8 = 2;
const TAG_WRITE: u8 = 3;
const TAG_WRITE_ACK: u8 = 4;
const TAG_READ: u8 = 5;
const TAG_READ_ACK: u8 = 6;

/// Serializes a [`Message`] to a standalone datagram payload.
pub fn encode_message(msg: &Message) -> Bytes {
    let mut buf = BytesMut::with_capacity(32 + msg.payload_len());
    match msg {
        Message::SnReq { req } => {
            put_u8(&mut buf, TAG_SN_REQ);
            put_request_id(&mut buf, *req);
        }
        Message::SnAck { req, seq } => {
            put_u8(&mut buf, TAG_SN_ACK);
            put_request_id(&mut buf, *req);
            put_u64(&mut buf, *seq);
        }
        Message::Write { req, ts, value } => {
            put_u8(&mut buf, TAG_WRITE);
            put_request_id(&mut buf, *req);
            put_timestamp(&mut buf, *ts);
            put_value(&mut buf, value);
        }
        Message::WriteAck { req } => {
            put_u8(&mut buf, TAG_WRITE_ACK);
            put_request_id(&mut buf, *req);
        }
        Message::Read { req } => {
            put_u8(&mut buf, TAG_READ);
            put_request_id(&mut buf, *req);
        }
        Message::ReadAck {
            req,
            ts,
            value,
            durable,
            grant,
        } => {
            put_u8(&mut buf, TAG_READ_ACK);
            put_request_id(&mut buf, *req);
            put_timestamp(&mut buf, *ts);
            put_value(&mut buf, value);
            put_u8(&mut buf, u8::from(*durable));
            buf.put_u32(*grant);
        }
    }
    buf.freeze()
}

/// Deserializes a [`Message`] from a datagram payload.
///
/// # Errors
///
/// Returns a [`DecodeError`] if the buffer is truncated, carries an unknown
/// discriminant, declares an implausible length, or has trailing garbage.
pub fn decode_message(bytes: &[u8]) -> Result<Message, DecodeError> {
    let mut buf = bytes;
    const CTX: &str = "Message";
    let tag = get_u8(&mut buf, CTX)?;
    let msg = match tag {
        TAG_SN_REQ => Message::SnReq {
            req: get_request_id(&mut buf, CTX)?,
        },
        TAG_SN_ACK => Message::SnAck {
            req: get_request_id(&mut buf, CTX)?,
            seq: get_u64(&mut buf, CTX)?,
        },
        TAG_WRITE => Message::Write {
            req: get_request_id(&mut buf, CTX)?,
            ts: get_timestamp(&mut buf, CTX)?,
            value: get_value(&mut buf, CTX)?,
        },
        TAG_WRITE_ACK => Message::WriteAck {
            req: get_request_id(&mut buf, CTX)?,
        },
        TAG_READ => Message::Read {
            req: get_request_id(&mut buf, CTX)?,
        },
        TAG_READ_ACK => Message::ReadAck {
            req: get_request_id(&mut buf, CTX)?,
            ts: get_timestamp(&mut buf, CTX)?,
            value: get_value(&mut buf, CTX)?,
            durable: match get_u8(&mut buf, CTX)? {
                0 => false,
                1 => true,
                tag => return Err(DecodeError::BadTag { context: CTX, tag }),
            },
            grant: {
                if buf.remaining() < 4 {
                    return Err(DecodeError::UnexpectedEof { context: CTX });
                }
                buf.get_u32()
            },
        },
        tag => return Err(DecodeError::BadTag { context: CTX, tag }),
    };
    if !buf.is_empty() {
        return Err(DecodeError::TrailingBytes {
            remaining: buf.len(),
        });
    }
    Ok(msg)
}

/// Serializes a [`Message`] with an optional trace envelope appended.
///
/// The envelope is [`TRACE_OVERHEAD`] bytes: marker, client-family id,
/// per-family op counter. With `trace == None` this is byte-identical to
/// [`encode_message`], so traced and untraced peers interoperate.
pub fn encode_message_traced(msg: &Message, trace: Option<crate::TraceId>) -> Bytes {
    match trace {
        None => encode_message(msg),
        Some(t) => {
            let mut buf = BytesMut::with_capacity(32 + TRACE_OVERHEAD + msg.payload_len());
            buf.extend_from_slice(&encode_message(msg));
            put_u8(&mut buf, TRACE_MARKER);
            put_u16(&mut buf, t.client);
            put_u64(&mut buf, t.op);
            buf.freeze()
        }
    }
}

/// Deserializes a [`Message`] that may carry a trace envelope.
///
/// Untraced payloads decode with `None`; a well-formed envelope is split
/// off and returned. The envelope is recognized by length, marker byte,
/// and the prefix decoding as a complete message — a plain message whose
/// bytes happen to end marker-like still decodes correctly because value
/// length prefixes pin the true message length, so the truncated-prefix
/// parse fails and the fallback path takes over.
///
/// # Errors
///
/// Returns a [`DecodeError`] when the payload decodes as neither a traced
/// nor a plain message.
pub fn decode_message_traced(
    bytes: &[u8],
) -> Result<(Message, Option<crate::TraceId>), DecodeError> {
    if bytes.len() > TRACE_OVERHEAD && bytes[bytes.len() - TRACE_OVERHEAD] == TRACE_MARKER {
        let (body, envelope) = bytes.split_at(bytes.len() - TRACE_OVERHEAD);
        if let Ok(msg) = decode_message(body) {
            let mut buf = &envelope[1..];
            const CTX: &str = "TraceEnvelope";
            let client = get_u16(&mut buf, CTX)?;
            let op = get_u64(&mut buf, CTX)?;
            return Ok((msg, Some(crate::TraceId { client, op })));
        }
    }
    decode_message(bytes).map(|msg| (msg, None))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_messages() -> Vec<Message> {
        let req = RequestId::new(ProcessId(3), 99);
        let ts = Timestamp::new(12, ProcessId(3));
        vec![
            Message::SnReq { req },
            Message::SnAck { req, seq: 12 },
            Message::Write {
                req,
                ts,
                value: Value::from_u32(77),
            },
            Message::Write {
                req,
                ts,
                value: Value::bottom(),
            },
            Message::Write {
                req,
                ts,
                value: Value::new(vec![0u8; 65536]),
            },
            Message::WriteAck { req },
            Message::Read { req },
            Message::ReadAck {
                req,
                ts,
                value: Value::from("payload"),
                durable: true,
                grant: 2_000,
            },
            Message::ReadAck {
                req,
                ts,
                value: Value::bottom(),
                durable: false,
                grant: 0,
            },
        ]
    }

    #[test]
    fn roundtrip_every_variant() {
        for msg in sample_messages() {
            let bytes = encode_message(&msg);
            let back = decode_message(&bytes).expect("decode");
            assert_eq!(back, msg);
        }
    }

    #[test]
    fn bottom_survives_roundtrip_distinct_from_empty() {
        let req = RequestId::new(ProcessId(0), 0);
        let ts = Timestamp::ZERO;
        let bot = Message::Write {
            req,
            ts,
            value: Value::bottom(),
        };
        let empty = Message::Write {
            req,
            ts,
            value: Value::new(Vec::new()),
        };
        let b1 = encode_message(&bot);
        let b2 = encode_message(&empty);
        assert_ne!(b1, b2);
        assert_eq!(decode_message(&b1).unwrap(), bot);
        assert_eq!(decode_message(&b2).unwrap(), empty);
    }

    #[test]
    fn truncated_buffers_error_cleanly() {
        for msg in sample_messages() {
            let bytes = encode_message(&msg);
            for cut in 0..bytes.len() {
                let err = decode_message(&bytes[..cut]);
                assert!(
                    err.is_err(),
                    "decoding a truncated {} must fail",
                    msg.label()
                );
            }
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = encode_message(&Message::SnReq {
            req: RequestId::new(ProcessId(0), 1),
        })
        .to_vec();
        bytes.push(0);
        assert_eq!(
            decode_message(&bytes),
            Err(DecodeError::TrailingBytes { remaining: 1 })
        );
    }

    #[test]
    fn unknown_tag_is_rejected() {
        assert!(matches!(
            decode_message(&[0x7f]),
            Err(DecodeError::BadTag { tag: 0x7f, .. })
        ));
    }

    #[test]
    fn implausible_length_is_rejected() {
        // Hand-craft a Write whose value length prefix is absurd.
        let mut buf = BytesMut::new();
        put_u8(&mut buf, TAG_WRITE);
        put_request_id(&mut buf, RequestId::new(ProcessId(0), 0));
        put_timestamp(&mut buf, Timestamp::ZERO);
        put_u8(&mut buf, 1);
        buf.put_u32(u32::MAX);
        assert!(matches!(
            decode_message(&buf),
            Err(DecodeError::BadLength { .. })
        ));
    }

    #[test]
    fn value_msg_overhead_is_exact() {
        // Worst-case field widths: the encoding is fixed-width, so any
        // req/ts works, but use max values to prove there is no varint.
        let req = RequestId::new(ProcessId(u16::MAX), u64::MAX);
        let ts = Timestamp::new(u64::MAX, ProcessId(u16::MAX));
        let trace = crate::TraceId::new(5, u64::MAX);
        for len in [0usize, 1, 1000] {
            let value = Value::new(vec![7u8; len]);
            let write = Message::Write {
                req,
                ts,
                value: value.clone(),
            };
            // Write is five bytes leaner (no durability flag, no lease
            // grant); the constant is the max so one admission check
            // covers both directions, traced or not.
            assert_eq!(
                encode_message_traced(&write, Some(trace)).len(),
                VALUE_MSG_OVERHEAD - 5 + len
            );
            assert_eq!(
                encode_message(&write).len(),
                VALUE_MSG_OVERHEAD - TRACE_OVERHEAD - 5 + len
            );
            let ack = Message::ReadAck {
                req,
                ts,
                value,
                durable: true,
                grant: u32::MAX,
            };
            assert_eq!(
                encode_message_traced(&ack, Some(trace)).len(),
                VALUE_MSG_OVERHEAD + len
            );
            assert_eq!(
                encode_message(&ack).len(),
                VALUE_MSG_OVERHEAD - TRACE_OVERHEAD + len
            );
        }
    }

    #[test]
    fn traced_roundtrip_every_variant() {
        let trace = crate::TraceId::new(9, 4242);
        for msg in sample_messages() {
            let bytes = encode_message_traced(&msg, Some(trace));
            let (back, t) = decode_message_traced(&bytes).expect("traced decode");
            assert_eq!(back, msg);
            assert_eq!(t, Some(trace));
            // Untraced encoding decodes with None through the same entry.
            let plain = encode_message_traced(&msg, None);
            assert_eq!(plain, encode_message(&msg));
            let (back, t) = decode_message_traced(&plain).expect("plain decode");
            assert_eq!(back, msg);
            assert_eq!(t, None);
        }
    }

    #[test]
    fn marker_like_value_bytes_do_not_confuse_traced_decode() {
        // A value whose tail bytes mimic a trace envelope: the value length
        // prefix pins the message length, so the prefix parse fails and the
        // payload decodes as a plain message.
        let req = RequestId::new(ProcessId(1), 2);
        let ts = Timestamp::new(3, ProcessId(1));
        let mut tail = vec![TRACE_MARKER];
        tail.extend_from_slice(&[0xAA; TRACE_OVERHEAD - 1]);
        let msg = Message::Write {
            req,
            ts,
            value: Value::new(tail),
        };
        let bytes = encode_message(&msg);
        let (back, t) = decode_message_traced(&bytes).expect("decode");
        assert_eq!(back, msg);
        assert_eq!(t, None);
        // And the same message traced still splits the envelope correctly.
        let trace = crate::TraceId::new(1, 7);
        let (back, t) = decode_message_traced(&encode_message_traced(&msg, Some(trace))).unwrap();
        assert_eq!(back, msg);
        assert_eq!(t, Some(trace));
    }

    #[test]
    fn primitive_roundtrips() {
        let mut buf = BytesMut::new();
        put_u64(&mut buf, 0xDEAD_BEEF_0000_0001);
        put_u16(&mut buf, 515);
        put_bytes(&mut buf, b"xyz");
        put_timestamp(&mut buf, Timestamp::new(9, ProcessId(2)));
        let mut r: &[u8] = &buf;
        assert_eq!(get_u64(&mut r, "t").unwrap(), 0xDEAD_BEEF_0000_0001);
        assert_eq!(get_u16(&mut r, "t").unwrap(), 515);
        assert_eq!(get_bytes(&mut r, "t").unwrap().as_ref(), b"xyz");
        assert_eq!(
            get_timestamp(&mut r, "t").unwrap(),
            Timestamp::new(9, ProcessId(2))
        );
        assert!(r.is_empty());
    }
}
