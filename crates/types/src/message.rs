//! The wire messages shared by every emulation algorithm.
//!
//! All three emulations (crash-stop baseline, transient, persistent) use
//! the same six message types, mirroring the listeners of Fig. 4
//! lines 17–30:
//!
//! * `SnReq` / `SnAck` — the write query round (lines 8/18–20);
//! * `Write` / `WriteAck` — the propagation round, also used by the read
//!   write-back (lines 14/21–27 and 37);
//! * `Read` / `ReadAck` — the read query round (lines 33/28–30).

use crate::process::ProcessId;
use crate::timestamp::{Seq, Timestamp};
use crate::value::Value;

/// Correlates acknowledgements with the broadcast round that solicited
/// them.
///
/// Every quorum round a process starts gets a fresh `RequestId`; replicas
/// echo it in their acks so retransmitted rounds and long-delayed stale
/// acks are filtered correctly (the fair-lossy channel may deliver
/// duplicates arbitrarily late).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RequestId {
    /// The process that started the round.
    pub origin: ProcessId,
    /// Per-origin round counter (never reused within a process incarnation;
    /// recovered incarnations start a disjoint nonce range).
    pub nonce: u64,
    /// The register of the shared memory this round belongs to
    /// ([`RegisterId::ZERO`](crate::RegisterId::ZERO) for single-register
    /// emulations). Carried on the wire so every process can route the
    /// message to the right per-register state.
    pub reg: crate::RegisterId,
}

impl RequestId {
    /// Creates a request id for the default register.
    pub fn new(origin: ProcessId, nonce: u64) -> Self {
        RequestId {
            origin,
            nonce,
            reg: crate::RegisterId::ZERO,
        }
    }

    /// Creates a request id addressing a specific register.
    pub fn for_register(origin: ProcessId, nonce: u64, reg: crate::RegisterId) -> Self {
        RequestId { origin, nonce, reg }
    }

    /// This id re-addressed to `reg` (used by the shared-memory routing
    /// layer when crossing between outer and per-register views).
    pub fn with_register(self, reg: crate::RegisterId) -> Self {
        RequestId { reg, ..self }
    }
}

impl std::fmt::Display for RequestId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.reg == crate::RegisterId::ZERO {
            write!(f, "{}@{}", self.origin, self.nonce)
        } else {
            write!(f, "{}@{}/{}", self.origin, self.nonce, self.reg)
        }
    }
}

/// Identity of an originating client operation, propagated on the wire so
/// flight-recorder events on *every* node an op touches can be stamped with
/// the op that caused them (not just the local register), and later stitched
/// into one cross-node causal timeline.
///
/// `client` is a process-wide client-family id with the high bit set
/// ([`TraceId::CLIENT_BIT`]) so it can never collide with a node
/// [`ProcessId`] where recorders store an op origin; `op` is a per-family
/// monotonic counter, so every invocation attempt carries a fresh id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceId {
    /// Client-family id (always has [`TraceId::CLIENT_BIT`] set).
    pub client: u16,
    /// Per-family operation counter.
    pub op: u64,
}

impl TraceId {
    /// High bit distinguishing client-family ids from node process ids in
    /// recorder op fields.
    pub const CLIENT_BIT: u16 = 0x8000;

    /// Creates a trace id, forcing the client bit on.
    pub fn new(client: u16, op: u64) -> Self {
        TraceId {
            client: client | Self::CLIENT_BIT,
            op,
        }
    }

    /// Allocates a process-wide fresh client-family id (client bit set).
    /// Wraps within 15 bits — collisions need 32k live client families.
    pub fn fresh_client() -> u16 {
        use std::sync::atomic::{AtomicU16, Ordering};
        static NEXT: AtomicU16 = AtomicU16::new(0);
        (NEXT.fetch_add(1, Ordering::Relaxed) & !Self::CLIENT_BIT) | Self::CLIENT_BIT
    }
}

impl std::fmt::Display for TraceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "c{}#{}", self.client & !Self::CLIENT_BIT, self.op)
    }
}

/// A message of the emulation protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Message {
    /// Query round of a write: "send me your sequence number" (Fig. 4
    /// line 8).
    SnReq {
        /// Round correlation id.
        req: RequestId,
    },
    /// Reply to [`Message::SnReq`] carrying the replica's current sequence
    /// number (Fig. 4 line 19).
    SnAck {
        /// Round correlation id, echoed.
        req: RequestId,
        /// The replica's current sequence number.
        seq: Seq,
    },
    /// Propagation round of a write — and of a read's write-back phase
    /// (Fig. 4 lines 14 and 37): "adopt this tagged value if it is newer".
    Write {
        /// Round correlation id.
        req: RequestId,
        /// The tag `[sn, pid]` of the value.
        ts: Timestamp,
        /// The value itself.
        value: Value,
    },
    /// Acknowledgement of [`Message::Write`], sent **after** the replica
    /// logged the adopted value in the logging emulations (Fig. 4
    /// lines 24–26).
    WriteAck {
        /// Round correlation id, echoed.
        req: RequestId,
    },
    /// Query round of a read: "send me your tagged value" (Fig. 4
    /// line 33).
    Read {
        /// Round correlation id.
        req: RequestId,
    },
    /// Reply to [`Message::Read`] (Fig. 4 line 29).
    ReadAck {
        /// Round correlation id, echoed.
        req: RequestId,
        /// The replica's current tag.
        ts: Timestamp,
        /// The replica's current value.
        value: Value,
        /// Whether the reported tag is covered by the replica's stable
        /// `written` record (always `true` for non-logging flavors, whose
        /// volatile state is as stable as their model gets). The reader's
        /// one-round fast path may only skip its write-back when **every**
        /// replier in the quorum attests durability of one agreed tag —
        /// a volatile-only tag could vanish in a total crash, and a read
        /// that returned it without write-back would re-enable the
        /// new-old inversion the write-back exists to prevent.
        ///
        /// A replica holding outstanding tag-lease grants additionally
        /// reports tags *newer than its minimum granted tag* as
        /// non-durable: such a tag is still fenced behind live leases
        /// (its write acknowledgements are parked), so a fast-path read
        /// returning it early would let a leased read elsewhere invert
        /// the order.
        durable: bool,
        /// Tag-lease grant, in microseconds (0 = no grant). A replica
        /// reporting a durable, lease-clear tag under a leasing flavor
        /// promises to withhold acknowledgements of any newer write for
        /// at least this long after sending the ack; a unanimous durable
        /// quorum whose acks all carry a grant mints a client-held lease
        /// for the agreed tag.
        grant: u32,
    },
}

impl Message {
    /// The correlation id carried by this message.
    pub fn request_id(&self) -> RequestId {
        match self {
            Message::SnReq { req }
            | Message::SnAck { req, .. }
            | Message::Write { req, .. }
            | Message::WriteAck { req }
            | Message::Read { req }
            | Message::ReadAck { req, .. } => *req,
        }
    }

    /// Whether this message is a request (solicits an ack) as opposed to an
    /// acknowledgement.
    pub fn is_request(&self) -> bool {
        matches!(
            self,
            Message::SnReq { .. } | Message::Write { .. } | Message::Read { .. }
        )
    }

    /// Short human-readable label used in traces.
    pub fn label(&self) -> &'static str {
        match self {
            Message::SnReq { .. } => "SN",
            Message::SnAck { .. } => "SN_ack",
            Message::Write { .. } => "W",
            Message::WriteAck { .. } => "W_ack",
            Message::Read { .. } => "R",
            Message::ReadAck { .. } => "R_ack",
        }
    }

    /// The approximate payload this message contributes to a datagram, in
    /// bytes — used by the size-sensitive latency model of the Fig. 6
    /// (bottom) experiment.
    pub fn payload_len(&self) -> usize {
        match self {
            Message::Write { value, .. } | Message::ReadAck { value, .. } => value.len(),
            _ => 0,
        }
    }
}

impl std::fmt::Display for Message {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Message::SnReq { req } => write!(f, "SN({req})"),
            Message::SnAck { req, seq } => write!(f, "SN_ack({req},sn={seq})"),
            Message::Write { req, ts, value } => write!(f, "W({req},{ts},{value})"),
            Message::WriteAck { req } => write!(f, "W_ack({req})"),
            Message::Read { req } => write!(f, "R({req})"),
            Message::ReadAck {
                req,
                ts,
                value,
                durable,
                grant,
            } => {
                let marker = if *durable { "" } else { ",volatile" };
                if *grant > 0 {
                    write!(f, "R_ack({req},{ts},{value}{marker},lease={grant}µs)")
                } else {
                    write!(f, "R_ack({req},{ts},{value}{marker})")
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rid() -> RequestId {
        RequestId::new(ProcessId(1), 7)
    }

    #[test]
    fn request_id_is_extracted_from_every_variant() {
        let ts = Timestamp::new(1, ProcessId(1));
        let v = Value::from_u32(5);
        let msgs = [
            Message::SnReq { req: rid() },
            Message::SnAck { req: rid(), seq: 3 },
            Message::Write {
                req: rid(),
                ts,
                value: v.clone(),
            },
            Message::WriteAck { req: rid() },
            Message::Read { req: rid() },
            Message::ReadAck {
                req: rid(),
                ts,
                value: v,
                durable: true,
                grant: 0,
            },
        ];
        for m in &msgs {
            assert_eq!(m.request_id(), rid());
        }
    }

    #[test]
    fn request_vs_ack_classification() {
        assert!(Message::SnReq { req: rid() }.is_request());
        assert!(Message::Read { req: rid() }.is_request());
        assert!(!Message::WriteAck { req: rid() }.is_request());
        assert!(!Message::SnAck { req: rid(), seq: 0 }.is_request());
    }

    #[test]
    fn payload_len_counts_only_value_bearing_messages() {
        let v = Value::new(vec![0u8; 1024]);
        let ts = Timestamp::ZERO;
        assert_eq!(
            Message::Write {
                req: rid(),
                ts,
                value: v.clone()
            }
            .payload_len(),
            1024
        );
        assert_eq!(
            Message::ReadAck {
                req: rid(),
                ts,
                value: v,
                durable: true,
                grant: 0
            }
            .payload_len(),
            1024
        );
        assert_eq!(Message::SnReq { req: rid() }.payload_len(), 0);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(Message::SnReq { req: rid() }.label(), "SN");
        assert_eq!(Message::WriteAck { req: rid() }.label(), "W_ack");
    }
}
