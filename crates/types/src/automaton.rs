//! The event-driven automaton model.
//!
//! Each emulation algorithm is implemented as a deterministic automaton in
//! the I/O-automata style of Lynch's *Distributed Algorithms* (the
//! formalism the paper's correctness argument leans on via Lemma 13.16):
//! the runtime feeds the automaton [`Input`] events, and the automaton
//! responds by appending [`Action`]s to an output buffer. The automaton
//! itself performs **no I/O and keeps no wall-clock state**, which is what
//! lets the very same implementation run under
//!
//! * the deterministic discrete-event simulator (`rmem-sim`), where crashes
//!   can be injected between any two events and every run is reproducible
//!   from a seed, and
//! * the real socket runtime (`rmem-net`), where inputs arrive from UDP/TCP
//!   sockets and stores hit an fsync-backed file.
//!
//! # Crash/recovery contract
//!
//! A crash destroys the automaton object (its volatile state). On recovery
//! the runtime rebuilds one via [`AutomatonFactory::recover`], handing it a
//! read-only [`StableSnapshot`] of everything it ever stored; the recovered
//! automaton then receives [`Input::Start`] and may run a recovery round
//! (e.g. Fig. 4's re-finish-the-write) before serving clients.
//!
//! # Stable-store contract (the causal-log discipline)
//!
//! [`Action::Store`] is asynchronous: the runtime performs the write to
//! stable storage (taking λ in virtual or real time) and then delivers
//! [`Input::StoreDone`]. An automaton that must *log before sending* —
//! the essence of a causal log (§I-B) — simply withholds the send until
//! the matching `StoreDone` arrives. The causal-log instrumentation in
//! `rmem-sim` counts exactly these store→send dependencies.

use bytes::Bytes;

use crate::message::Message;
use crate::op::{Op, OpId, OpResult};
use crate::process::ProcessId;
use crate::timestamp::Timestamp;
use crate::Micros;

/// Token correlating an [`Action::Store`] with its [`Input::StoreDone`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StoreToken(pub u64);

/// Token correlating an [`Action::SetTimer`] with its [`Input::Timer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimerToken(pub u64);

/// A tag lease minted by a unanimous durable read quorum, riding on
/// [`Action::Complete`] back to the invoking client.
///
/// Every replica of the read quorum attested the same durable `ts` *and*
/// promised to withhold acknowledgements of any newer write until its
/// grant horizon passes, so the holder may serve repeated reads of the
/// leased value locally — with **zero quorum rounds** — for up to
/// `micros` measured from the moment it handed the read to the wire.
/// Expiry is always judged against the *pre-send* clock stamp: the
/// replicas' horizons start later (when each processed the request), so
/// the client-side lease dies strictly before any replica releases a
/// newer write's acknowledgement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LeaseGrant {
    /// The leased tag: the unanimous durable timestamp of the read.
    pub ts: Timestamp,
    /// Lease duration in microseconds (the minimum grant across the
    /// quorum's acknowledgements).
    pub micros: u32,
}

/// Read-only view of a process's stable storage, offered to
/// [`AutomatonFactory::recover`].
///
/// Keys are the record names of the paper's pseudocode (`"writing"`,
/// `"written"`, `"recovered"`); values are the encoded records exactly as
/// previously passed to [`Action::Store`].
pub trait StableSnapshot {
    /// Returns the most recently stored bytes under `key`, if any.
    fn get(&self, key: &str) -> Option<Bytes>;

    /// Lists the occupied slots. Used by multi-register recovery to
    /// discover which registers have stable state; single-register
    /// automata never call it, so the default suffices for ad-hoc
    /// snapshots.
    fn keys(&self) -> Vec<String> {
        Vec::new()
    }
}

impl StableSnapshot for std::collections::HashMap<String, Bytes> {
    fn get(&self, key: &str) -> Option<Bytes> {
        std::collections::HashMap::get(self, key).cloned()
    }

    fn keys(&self) -> Vec<String> {
        let mut keys: Vec<String> = std::collections::HashMap::keys(self).cloned().collect();
        keys.sort();
        keys
    }
}

/// An empty stable snapshot (a process booting for the first time).
#[derive(Debug, Clone, Copy, Default)]
pub struct EmptySnapshot;

impl StableSnapshot for EmptySnapshot {
    fn get(&self, _key: &str) -> Option<Bytes> {
        None
    }
}

/// Events delivered *to* an automaton by its runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Input {
    /// The process (re)starts. Delivered exactly once per incarnation,
    /// before any other input. A fresh incarnation initialises its stable
    /// records here (Fig. 4 lines 1–5); a recovered incarnation starts its
    /// recovery round here (Fig. 4 lines 40–47).
    Start,
    /// A client invokes an operation. The runtime guarantees ids are unique
    /// per process; the automaton replies eventually with
    /// [`Action::Complete`] unless a crash intervenes.
    Invoke {
        /// Unique id for this invocation.
        op: OpId,
        /// The operation to perform.
        operation: Op,
    },
    /// A protocol message arrived on the (fair-lossy) network.
    Message {
        /// The sending process.
        from: ProcessId,
        /// The message.
        msg: Message,
    },
    /// A previously requested [`Action::Store`] reached stable storage.
    StoreDone(StoreToken),
    /// A previously requested [`Action::SetTimer`] fired.
    Timer(TimerToken),
}

/// Effects requested *by* an automaton from its runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Action {
    /// Send `msg` to `to` over the fair-lossy network. Sending to oneself
    /// is allowed and goes through the network like any other send (the
    /// paper's processes answer their own broadcasts through their
    /// listener thread, §V-A).
    Send {
        /// Destination process.
        to: ProcessId,
        /// The message.
        msg: Message,
    },
    /// Durably store `bytes` under `key`; the runtime will deliver
    /// [`Input::StoreDone`] with `token` once the data is stable. A later
    /// store to the same key replaces the record (the pseudocode's `store`
    /// overwrites its slot).
    Store {
        /// Completion correlation token.
        token: StoreToken,
        /// Record name (e.g. `"writing"`, or `"writing@r3"` for register 3
        /// of a shared memory).
        key: String,
        /// Encoded record.
        bytes: Bytes,
    },
    /// Ask for an [`Input::Timer`] callback after `after` elapses
    /// (virtual time in the simulator, wall-clock in the real runtime).
    /// Automata use this for retransmission of unacknowledged rounds.
    SetTimer {
        /// Completion correlation token.
        token: TimerToken,
        /// Delay until the timer fires.
        after: Micros,
    },
    /// Report the outcome of a client invocation.
    Complete {
        /// The invocation being answered.
        op: OpId,
        /// Its result.
        result: OpResult,
        /// Quorum round-trips the operation performed (0 for rejected
        /// invocations). Lets runtimes surface per-operation costs — in
        /// particular whether a read completed through the one-round fast
        /// path (1), paid the write-back round (2), or was served from a
        /// held tag lease without touching the network at all (0).
        rounds: u32,
        /// A tag lease minted by this operation (reads whose unanimous
        /// durable quorum also granted one), for the client to cache.
        /// `None` for writes, rejections, fallback reads and flavors
        /// without leasing.
        lease: Option<LeaseGrant>,
    },
}

impl Action {
    /// Convenience constructor for a broadcast: one [`Action::Send`] per
    /// destination in `0..n`, **including the sender itself** (see
    /// [`Action::Send`]).
    pub fn broadcast(n: usize, msg: &Message) -> impl Iterator<Item = Action> + '_ {
        ProcessId::all(n).map(move |to| Action::Send {
            to,
            msg: msg.clone(),
        })
    }
}

/// A deterministic process automaton.
///
/// Implementations must be pure state machines: all effects flow through
/// `out`, and identical input sequences must produce identical action
/// sequences (the simulator's reproducibility and the checkers depend on
/// it).
pub trait Automaton: Send {
    /// Handle one input event, appending resulting actions to `out` in
    /// order.
    fn on_input(&mut self, input: Input, out: &mut Vec<Action>);

    /// Whether the automaton is past its boot/recovery phase and willing to
    /// accept invocations immediately (used by harnesses to pace
    /// workloads; invoking earlier is allowed and will be queued).
    fn is_ready(&self) -> bool {
        true
    }

    /// A short algorithm name for traces and experiment labels.
    fn algorithm(&self) -> &'static str;
}

/// Builds automata for fresh boots and for recoveries.
///
/// The runtime owns stable storage; the factory only ever sees it through
/// the [`StableSnapshot`] view, mirroring the model's rule that recovery is
/// the *only* moment volatile state can be reconstructed from stable state.
pub trait AutomatonFactory: Send + Sync {
    /// Creates the automaton for process `me` of a cluster of `n`, booting
    /// for the first time (empty stable storage).
    fn fresh(&self, me: ProcessId, n: usize) -> Box<dyn Automaton>;

    /// Creates the automaton for process `me` recovering from a crash,
    /// given everything it previously stored.
    ///
    /// `incarnation` is a runtime-supplied counter distinguishing this
    /// incarnation from all earlier ones of the same process (the
    /// simulator counts crashes; the socket runtime persists a boot
    /// counter). Automata fold it into their request nonces so that
    /// acknowledgements from a pre-crash round can never be mistaken for
    /// acknowledgements of a post-recovery round. This is transport-level
    /// plumbing, not algorithm state — it is deliberately *not* one of the
    /// algorithm's logs.
    fn recover(
        &self,
        me: ProcessId,
        n: usize,
        incarnation: u64,
        stable: &dyn StableSnapshot,
    ) -> Box<dyn Automaton>;

    /// A short algorithm name for traces and experiment labels.
    fn algorithm(&self) -> &'static str;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::RequestId;

    #[test]
    fn broadcast_targets_every_process_including_self() {
        let msg = Message::SnReq {
            req: RequestId::new(ProcessId(1), 4),
        };
        let actions: Vec<_> = Action::broadcast(3, &msg).collect();
        assert_eq!(actions.len(), 3);
        let targets: Vec<_> = actions
            .iter()
            .map(|a| match a {
                Action::Send { to, .. } => *to,
                other => panic!("unexpected action {other:?}"),
            })
            .collect();
        assert_eq!(targets, vec![ProcessId(0), ProcessId(1), ProcessId(2)]);
    }

    #[test]
    fn hashmap_snapshot_returns_stored_bytes() {
        let mut map = std::collections::HashMap::new();
        map.insert("written".to_string(), Bytes::from_static(b"abc"));
        let snap: &dyn StableSnapshot = &map;
        assert_eq!(snap.get("written"), Some(Bytes::from_static(b"abc")));
        assert_eq!(snap.get("writing"), None);
    }

    #[test]
    fn empty_snapshot_is_empty() {
        assert_eq!(EmptySnapshot.get("anything"), None);
    }
}
