//! Client-visible operations and their results.

use crate::process::ProcessId;
use crate::value::Value;

/// Identifier of one register within an emulated shared memory.
///
/// A single-register emulation is the memory whose only register is
/// [`RegisterId::ZERO`]; the multi-register layer
/// (`rmem_core::SharedMemory`) hosts one independent register emulation
/// per id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct RegisterId(pub u16);

impl RegisterId {
    /// The default register of single-register emulations.
    pub const ZERO: RegisterId = RegisterId(0);
}

impl std::fmt::Display for RegisterId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl From<u16> for RegisterId {
    fn from(v: u16) -> Self {
        RegisterId(v)
    }
}

/// A register operation a client asks a process to perform.
///
/// [`Op::Read`] and [`Op::Write`] address the default register
/// ([`RegisterId::ZERO`]); [`Op::ReadAt`] and [`Op::WriteAt`] address a
/// register of a multi-register shared memory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op {
    /// Read the default register.
    Read,
    /// Write `Value` to the default register.
    Write(Value),
    /// Read the given register of a shared memory.
    ReadAt(RegisterId),
    /// Write `Value` to the given register of a shared memory.
    WriteAt(RegisterId, Value),
}

impl Op {
    /// The kind of this operation.
    pub fn kind(&self) -> OpKind {
        match self {
            Op::Read | Op::ReadAt(_) => OpKind::Read,
            Op::Write(_) | Op::WriteAt(..) => OpKind::Write,
        }
    }

    /// The register this operation addresses.
    pub fn register(&self) -> RegisterId {
        match self {
            Op::Read | Op::Write(_) => RegisterId::ZERO,
            Op::ReadAt(reg) | Op::WriteAt(reg, _) => *reg,
        }
    }

    /// Strips the register address, returning the plain single-register
    /// operation (used by routing layers that have already dispatched on
    /// [`register`](Self::register)).
    pub fn normalized(self) -> Op {
        match self {
            Op::ReadAt(_) => Op::Read,
            Op::WriteAt(_, v) => Op::Write(v),
            plain => plain,
        }
    }

    /// The written value, for writes of either addressing form.
    pub fn write_value(&self) -> Option<&Value> {
        match self {
            Op::Write(v) | Op::WriteAt(_, v) => Some(v),
            _ => None,
        }
    }
}

/// Discriminant of [`Op`], handy for statistics and history events.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// A read operation.
    Read,
    /// A write operation.
    Write,
}

impl std::fmt::Display for OpKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OpKind::Read => write!(f, "R"),
            OpKind::Write => write!(f, "W"),
        }
    }
}

/// Identifier of one operation *invocation* at one process.
///
/// The pair (invoking process, per-process counter) is unique across an
/// execution; histories and traces are keyed by it. The counter restarts
/// only if the driving harness restarts it — recovery does **not** reset
/// it, so an invocation lost to a crash is never confused with a later one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct OpId {
    /// Invoking process.
    pub pid: ProcessId,
    /// Per-process invocation counter.
    pub counter: u64,
}

impl OpId {
    /// Creates an operation id.
    pub fn new(pid: ProcessId, counter: u64) -> Self {
        OpId { pid, counter }
    }
}

impl std::fmt::Display for OpId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}#{}", self.pid, self.counter)
    }
}

/// Client-assigned identity of one **logical** store write, carried
/// inside the written payload (see `rmem_kv`'s codec op-id frame).
///
/// Unlike [`OpId`] — which names one *invocation* at one process and is
/// never reused — an `OpTag` survives client crashes: a recovering client
/// re-issues an unresolved write **under the same tag**, and every layer
/// that sees duplicate tags for one key (replicas, certification) treats
/// them as a single logical write. The pair (client, seq) is unique per
/// client family; `seq` is allocated from the client's intent journal so
/// it does not restart after a crash.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct OpTag {
    /// The issuing client's stable identity (assigned by the harness;
    /// distinct from any transport process id).
    pub client: u16,
    /// Journal-allocated sequence number, monotone across crashes.
    pub seq: u64,
}

impl OpTag {
    /// Creates an operation tag.
    pub fn new(client: u16, seq: u64) -> Self {
        OpTag { client, seq }
    }
}

impl std::fmt::Display for OpTag {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "c{}#{}", self.client, self.seq)
    }
}

/// Why a process refused to start an operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The process already has an operation in flight. The paper's model
    /// (§III-A) requires processes to be sequential: a new invocation is
    /// only legal after the previous reply (or after a crash wiped the
    /// pending one).
    Busy,
    /// The process is shutting down (or has halted): the operation was
    /// admitted but its emulation will never complete. From the caller's
    /// side this is indistinguishable from the process crashing with the
    /// operation pending — clients surface it as a process-down error.
    Shutdown,
}

impl std::fmt::Display for RejectReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RejectReason::Busy => write!(f, "an operation is already in flight"),
            RejectReason::Shutdown => write!(f, "the process is shutting down"),
        }
    }
}

/// The outcome a process reports for a completed operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OpResult {
    /// A write returned "OK".
    Written,
    /// A read returned this value.
    ReadValue(Value),
    /// The invocation was refused (see [`RejectReason`]); no operation was
    /// started and nothing was sent or logged.
    Rejected(RejectReason),
}

impl OpResult {
    /// The value carried by a read result, if any.
    pub fn read_value(&self) -> Option<&Value> {
        match self {
            OpResult::ReadValue(v) => Some(v),
            _ => None,
        }
    }

    /// Whether the operation actually completed (was not rejected).
    pub fn is_completed(&self) -> bool {
        !matches!(self, OpResult::Rejected(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_kind() {
        assert_eq!(Op::Read.kind(), OpKind::Read);
        assert_eq!(Op::Write(Value::from_u32(1)).kind(), OpKind::Write);
        assert_eq!(Op::ReadAt(RegisterId(3)).kind(), OpKind::Read);
        assert_eq!(
            Op::WriteAt(RegisterId(3), Value::from_u32(1)).kind(),
            OpKind::Write
        );
        assert_eq!(OpKind::Read.to_string(), "R");
        assert_eq!(OpKind::Write.to_string(), "W");
    }

    #[test]
    fn register_addressing_and_normalization() {
        let v = Value::from_u32(9);
        assert_eq!(Op::Read.register(), RegisterId::ZERO);
        assert_eq!(Op::Write(v.clone()).register(), RegisterId::ZERO);
        assert_eq!(Op::ReadAt(RegisterId(7)).register(), RegisterId(7));
        assert_eq!(
            Op::WriteAt(RegisterId(7), v.clone()).register(),
            RegisterId(7)
        );
        assert_eq!(Op::ReadAt(RegisterId(7)).normalized(), Op::Read);
        assert_eq!(
            Op::WriteAt(RegisterId(7), v.clone()).normalized(),
            Op::Write(v.clone())
        );
        assert_eq!(Op::Read.normalized(), Op::Read);
        assert_eq!(
            Op::WriteAt(RegisterId(1), v.clone()).write_value(),
            Some(&v)
        );
        assert_eq!(Op::ReadAt(RegisterId(1)).write_value(), None);
    }

    #[test]
    fn register_id_display() {
        assert_eq!(RegisterId(4).to_string(), "r4");
        let r: RegisterId = 8u16.into();
        assert_eq!(r, RegisterId(8));
    }

    #[test]
    fn op_id_ordering_groups_by_process() {
        let a = OpId::new(ProcessId(0), 5);
        let b = OpId::new(ProcessId(0), 6);
        let c = OpId::new(ProcessId(1), 0);
        assert!(a < b && b < c);
        assert_eq!(a.to_string(), "p0#5");
    }

    #[test]
    fn result_accessors() {
        let r = OpResult::ReadValue(Value::from_u32(9));
        assert_eq!(r.read_value().and_then(Value::as_u32), Some(9));
        assert!(r.is_completed());
        assert!(OpResult::Written.is_completed());
        assert!(!OpResult::Rejected(RejectReason::Busy).is_completed());
        assert_eq!(OpResult::Written.read_value(), None);
    }
}
