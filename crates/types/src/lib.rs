//! Core vocabulary types for the `rmem` crash-recovery shared-memory
//! emulations (Guerraoui & Levy, *Robust Emulations of Shared Memory in a
//! Crash-Recovery Model*, ICDCS 2004).
//!
//! This crate deliberately contains no algorithm logic and no I/O. It
//! defines:
//!
//! * identifiers — [`ProcessId`], [`OpId`], [`RequestId`];
//! * the lexicographic write tag [`Timestamp`] ordering all written values;
//! * register payloads ([`Value`]) and operations ([`Op`], [`OpResult`]);
//! * the wire [`Message`] set shared by every emulation in `rmem-core`;
//! * a small self-contained binary [`codec`] (the real UDP/TCP transports
//!   and the storage records both use it — nothing external touches the
//!   wire or the disk format);
//! * the event-driven automaton model ([`Automaton`], [`Input`],
//!   [`Action`]) through which the deterministic simulator (`rmem-sim`)
//!   and the real socket runtime (`rmem-net`) drive the same algorithm
//!   implementations.
//!
//! # Example
//!
//! ```
//! use rmem_types::{ProcessId, Timestamp};
//!
//! // Timestamps order lexicographically: sequence number first,
//! // process id second (the paper's tie-break for concurrent writers).
//! let a = Timestamp::new(3, ProcessId(1));
//! let b = Timestamp::new(3, ProcessId(2));
//! let c = Timestamp::new(4, ProcessId(0));
//! assert!(a < b && b < c);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod automaton;
pub mod codec;
pub mod error;
pub mod message;
pub mod op;
pub mod process;
pub mod timestamp;
pub mod value;

pub use automaton::{
    Action, Automaton, AutomatonFactory, EmptySnapshot, Input, LeaseGrant, StableSnapshot,
    StoreToken, TimerToken,
};
pub use error::DecodeError;
pub use message::{Message, RequestId, TraceId};
pub use op::{Op, OpId, OpKind, OpResult, OpTag, RegisterId, RejectReason};
pub use process::ProcessId;
pub use timestamp::{Seq, Timestamp};
pub use value::Value;

/// Microsecond-granularity duration used for timer requests emitted by
/// automata.
///
/// The simulator interprets it in virtual time; the real runtime maps it to
/// a wall-clock [`std::time::Duration`]. Microseconds are the natural unit
/// for the paper's latency constants (δ ≈ 100 µs, λ ≈ 200 µs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Micros(pub u64);

impl Micros {
    /// Zero duration.
    pub const ZERO: Micros = Micros(0);

    /// Constructs a duration from whole milliseconds.
    pub fn from_millis(ms: u64) -> Self {
        Micros(ms * 1_000)
    }

    /// Returns the value in microseconds.
    pub fn as_u64(self) -> u64 {
        self.0
    }

    /// Saturating addition.
    pub fn saturating_add(self, other: Micros) -> Micros {
        Micros(self.0.saturating_add(other.0))
    }
}

impl From<Micros> for std::time::Duration {
    fn from(m: Micros) -> Self {
        std::time::Duration::from_micros(m.0)
    }
}

impl std::fmt::Display for Micros {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}µs", self.0)
    }
}

impl std::ops::Add for Micros {
    type Output = Micros;
    fn add(self, rhs: Micros) -> Micros {
        Micros(self.0 + rhs.0)
    }
}

impl std::ops::AddAssign for Micros {
    fn add_assign(&mut self, rhs: Micros) {
        self.0 += rhs.0;
    }
}

impl std::ops::Sub for Micros {
    type Output = Micros;
    fn sub(self, rhs: Micros) -> Micros {
        Micros(self.0 - rhs.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn micros_arithmetic() {
        let a = Micros(100);
        let b = Micros::from_millis(1);
        assert_eq!(a + b, Micros(1_100));
        assert_eq!(b - a, Micros(900));
        let mut c = a;
        c += b;
        assert_eq!(c, Micros(1_100));
        assert_eq!(Micros(u64::MAX).saturating_add(Micros(1)), Micros(u64::MAX));
    }

    #[test]
    fn micros_into_std_duration() {
        let d: std::time::Duration = Micros(2_500).into();
        assert_eq!(d, std::time::Duration::from_micros(2_500));
    }

    #[test]
    fn micros_display() {
        assert_eq!(Micros(42).to_string(), "42µs");
    }
}
