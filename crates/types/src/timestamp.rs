//! Lexicographic write tags.

use crate::process::ProcessId;

/// Monotonically increasing sequence number component of a [`Timestamp`].
pub type Seq = u64;

/// The tag `[sn, pid]` associated with every written value.
///
/// The multi-writer algorithms of the paper (§IV-B) order written values by
/// the pair *(sequence number, writer id)* compared **lexicographically** —
/// sequence number first, writer id as tie-break — written `>lex` in the
/// pseudocode of Fig. 4 (line 22). The derived `Ord` on this struct is
/// exactly that order because the fields are declared in that order.
///
/// # Examples
///
/// ```
/// use rmem_types::{ProcessId, Timestamp};
///
/// let t0 = Timestamp::ZERO;
/// let t1 = Timestamp::new(1, ProcessId(4));
/// let t2 = Timestamp::new(1, ProcessId(5));
/// assert!(t0 < t1 && t1 < t2);
/// assert_eq!(t2.next(ProcessId(0)), Timestamp::new(2, ProcessId(0)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Timestamp {
    /// Sequence number (majority-queried maximum plus an increment).
    pub seq: Seq,
    /// Id of the writer that produced this tag (tie-break component).
    pub pid: ProcessId,
}

impl Timestamp {
    /// The initial tag `[0, p0]` shared by all processes before any write.
    pub const ZERO: Timestamp = Timestamp {
        seq: 0,
        pid: ProcessId(0),
    };

    /// Creates a tag from its components.
    pub fn new(seq: Seq, pid: ProcessId) -> Self {
        Timestamp { seq, pid }
    }

    /// The tag a writer `pid` forms after observing this tag as the highest
    /// in its query round: `[seq + 1, pid]` (Fig. 4 line 11).
    pub fn next(self, pid: ProcessId) -> Timestamp {
        Timestamp {
            seq: self.seq + 1,
            pid,
        }
    }

    /// The tag a *recovered transient* writer forms: `[seq + rec + 1, pid]`
    /// (Fig. 5 line 11). Adding the stable recovery counter `rec`
    /// guarantees the new tag dominates any tag the writer may have used in
    /// a write that was cut short by a crash and never logged locally.
    pub fn next_after_recoveries(self, pid: ProcessId, rec: u64) -> Timestamp {
        Timestamp {
            seq: self.seq + rec + 1,
            pid,
        }
    }
}

impl std::fmt::Display for Timestamp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{},{}]", self.seq, self.pid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexicographic_order_seq_dominates() {
        let low = Timestamp::new(1, ProcessId(9));
        let high = Timestamp::new(2, ProcessId(0));
        assert!(
            low < high,
            "sequence number must dominate the pid tie-break"
        );
    }

    #[test]
    fn lexicographic_order_pid_breaks_ties() {
        let a = Timestamp::new(7, ProcessId(1));
        let b = Timestamp::new(7, ProcessId(2));
        assert!(a < b);
        assert_ne!(
            a, b,
            "concurrent writes by distinct writers never share a tag"
        );
    }

    #[test]
    fn next_increments_and_rebrands() {
        let t = Timestamp::new(5, ProcessId(3));
        let n = t.next(ProcessId(1));
        assert_eq!(n, Timestamp::new(6, ProcessId(1)));
        assert!(t < n);
    }

    #[test]
    fn next_after_recoveries_dominates_unlogged_tags() {
        // A writer at seq 5 crashed mid-write (it may have injected seq 6
        // at some replica without logging it). After rec = 1 recovery the
        // new tag must exceed 6.
        let queried_max = Timestamp::new(5, ProcessId(0));
        let fresh = queried_max.next_after_recoveries(ProcessId(0), 1);
        assert!(fresh.seq > 6);
        // With zero recoveries it degenerates to `next`.
        assert_eq!(
            queried_max.next_after_recoveries(ProcessId(0), 0),
            queried_max.next(ProcessId(0))
        );
    }

    #[test]
    fn zero_is_minimum() {
        assert!(Timestamp::ZERO <= Timestamp::new(0, ProcessId(0)));
        assert!(Timestamp::ZERO < Timestamp::new(0, ProcessId(1)));
        assert!(Timestamp::ZERO < Timestamp::new(1, ProcessId(0)));
    }

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(Timestamp::new(3, ProcessId(2)).to_string(), "[3,p2]");
    }
}
