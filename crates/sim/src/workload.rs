//! Workload description: scripted adversary schedules and closed-loop
//! clients.

use rmem_types::{Micros, Op, ProcessId};

use crate::time::VirtualTime;

/// An event the harness plants at an absolute virtual time.
#[derive(Debug, Clone)]
pub enum PlannedEvent {
    /// Invoke `Op` at the process (ignored if it is crashed at that
    /// moment).
    Invoke(ProcessId, Op),
    /// Crash the process (no-op if already crashed).
    Crash(ProcessId),
    /// Recover the process (no-op if not crashed).
    Recover(ProcessId),
    /// Block the directed link `from → to` (messages are dropped).
    Block(ProcessId, ProcessId),
    /// Unblock the directed link.
    Unblock(ProcessId, ProcessId),
}

/// A scripted schedule: the adversary and any scripted clients.
///
/// Used to reproduce the paper's proof runs (ρ1–ρ4, Figs. 2–3) and the
/// Fig. 1 scenarios, where precise timing of crashes relative to operation
/// phases is the whole point.
#[derive(Debug, Clone, Default)]
pub struct Schedule {
    entries: Vec<(VirtualTime, PlannedEvent)>,
}

impl Schedule {
    /// Creates an empty schedule.
    pub fn new() -> Self {
        Schedule::default()
    }

    /// Plants `event` at absolute time `at` (microseconds).
    pub fn at(mut self, at: u64, event: PlannedEvent) -> Self {
        self.entries.push((VirtualTime(at), event));
        self
    }

    /// The planted events.
    pub fn entries(&self) -> &[(VirtualTime, PlannedEvent)] {
        &self.entries
    }
}

/// A closed-loop client bound to one process: it invokes the listed
/// operations sequentially, waiting `think` between a completion and the
/// next invocation. If a crash wipes a pending operation, the loop resumes
/// with the next operation once the process recovers.
///
/// This is the paper's measurement workload: "writing a 4 byte integer
/// value … repeating the write fifty times and finally averaging" (§V-B).
#[derive(Debug, Clone)]
pub struct ClosedLoop {
    /// The process issuing the operations.
    pub pid: ProcessId,
    /// Operations to perform, in order.
    pub ops: Vec<Op>,
    /// Pause between completion and next invocation.
    pub think: Micros,
    /// Delay before the first invocation.
    pub start_after: Micros,
}

impl ClosedLoop {
    /// A loop of `count` writes of `value` at `pid`, back to back.
    pub fn writes(pid: ProcessId, value: rmem_types::Value, count: usize) -> Self {
        ClosedLoop {
            pid,
            ops: std::iter::repeat_with(|| Op::Write(value.clone())).take(count).collect(),
            think: Micros(10),
            start_after: Micros(10),
        }
    }

    /// A loop of `count` reads at `pid`.
    pub fn reads(pid: ProcessId, count: usize) -> Self {
        ClosedLoop {
            pid,
            ops: std::iter::repeat_with(|| Op::Read).take(count).collect(),
            think: Micros(10),
            start_after: Micros(10),
        }
    }

    /// Sets the think time.
    pub fn with_think(mut self, think: Micros) -> Self {
        self.think = think;
        self
    }

    /// Sets the start delay.
    pub fn with_start_after(mut self, start_after: Micros) -> Self {
        self.start_after = start_after;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmem_types::Value;

    #[test]
    fn schedule_builder_accumulates_in_order() {
        let s = Schedule::new()
            .at(10, PlannedEvent::Crash(ProcessId(0)))
            .at(20, PlannedEvent::Recover(ProcessId(0)));
        assert_eq!(s.entries().len(), 2);
        assert_eq!(s.entries()[0].0, VirtualTime(10));
    }

    #[test]
    fn closed_loop_constructors() {
        let w = ClosedLoop::writes(ProcessId(1), Value::from_u32(7), 50);
        assert_eq!(w.ops.len(), 50);
        assert!(matches!(w.ops[0], Op::Write(_)));
        let r = ClosedLoop::reads(ProcessId(2), 3).with_think(Micros(100)).with_start_after(Micros(5));
        assert_eq!(r.ops.len(), 3);
        assert_eq!(r.think, Micros(100));
        assert_eq!(r.start_after, Micros(5));
    }
}
