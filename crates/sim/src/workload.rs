//! Workload description: scripted adversary schedules, closed-loop
//! clients, and key-popularity distributions for store-level workloads.

use rand::rngs::StdRng;
use rand::Rng;
use rmem_types::{Micros, Op, ProcessId};

use crate::time::VirtualTime;

/// An event the harness plants at an absolute virtual time.
#[derive(Debug, Clone)]
pub enum PlannedEvent {
    /// Invoke `Op` at the process (ignored if it is crashed at that
    /// moment).
    Invoke(ProcessId, Op),
    /// Crash the process (no-op if already crashed).
    Crash(ProcessId),
    /// Recover the process (no-op if not crashed).
    Recover(ProcessId),
    /// Block the directed link `from → to` (messages are dropped).
    Block(ProcessId, ProcessId),
    /// Unblock the directed link.
    Unblock(ProcessId, ProcessId),
}

/// A scripted schedule: the adversary and any scripted clients.
///
/// Used to reproduce the paper's proof runs (ρ1–ρ4, Figs. 2–3) and the
/// Fig. 1 scenarios, where precise timing of crashes relative to operation
/// phases is the whole point.
#[derive(Debug, Clone, Default)]
pub struct Schedule {
    entries: Vec<(VirtualTime, PlannedEvent)>,
}

impl Schedule {
    /// Creates an empty schedule.
    pub fn new() -> Self {
        Schedule::default()
    }

    /// Plants `event` at absolute time `at` (microseconds).
    pub fn at(mut self, at: u64, event: PlannedEvent) -> Self {
        self.entries.push((VirtualTime(at), event));
        self
    }

    /// The planted events.
    pub fn entries(&self) -> &[(VirtualTime, PlannedEvent)] {
        &self.entries
    }
}

/// A closed-loop client bound to one process: it invokes the listed
/// operations sequentially, waiting `think` between a completion and the
/// next invocation. If a crash wipes a pending operation, the loop resumes
/// with the next operation once the process recovers.
///
/// This is the paper's measurement workload: "writing a 4 byte integer
/// value … repeating the write fifty times and finally averaging" (§V-B).
#[derive(Debug, Clone)]
pub struct ClosedLoop {
    /// The process issuing the operations.
    pub pid: ProcessId,
    /// Operations to perform, in order.
    pub ops: Vec<Op>,
    /// Pause between completion and next invocation.
    pub think: Micros,
    /// Delay before the first invocation.
    pub start_after: Micros,
}

impl ClosedLoop {
    /// A loop of `count` writes of `value` at `pid`, back to back.
    pub fn writes(pid: ProcessId, value: rmem_types::Value, count: usize) -> Self {
        ClosedLoop {
            pid,
            ops: std::iter::repeat_with(|| Op::Write(value.clone()))
                .take(count)
                .collect(),
            think: Micros(10),
            start_after: Micros(10),
        }
    }

    /// A loop of `count` reads at `pid`.
    pub fn reads(pid: ProcessId, count: usize) -> Self {
        ClosedLoop {
            pid,
            ops: std::iter::repeat_with(|| Op::Read).take(count).collect(),
            think: Micros(10),
            start_after: Micros(10),
        }
    }

    /// Sets the think time.
    pub fn with_think(mut self, think: Micros) -> Self {
        self.think = think;
        self
    }

    /// Sets the start delay.
    pub fn with_start_after(mut self, start_after: Micros) -> Self {
        self.start_after = start_after;
        self
    }
}

/// A discrete key-popularity distribution over indices `0..n`: Zipf with
/// parameter `s` (`weight(i) ∝ 1/(i+1)^s`), degenerating to uniform at
/// `s = 0`.
///
/// This is the standard skewed-access model for key-value workloads (YCSB
/// uses s ≈ 0.99): a handful of hot keys take most of the traffic, which
/// is exactly the regime where per-shard independence pays or hurts.
/// Sampling is by binary search over the precomputed CDF — O(log n) per
/// draw, deterministic given the caller's seeded [`StdRng`].
#[derive(Debug, Clone)]
pub struct KeyDistribution {
    cdf: Vec<f64>,
}

impl KeyDistribution {
    /// A uniform distribution over `n` keys.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn uniform(n: usize) -> Self {
        KeyDistribution::zipf(n, 0.0)
    }

    /// A Zipf distribution over `n` keys with exponent `s ≥ 0` (index 0 is
    /// the hottest key).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `s` is negative/non-finite.
    pub fn zipf(n: usize, s: f64) -> Self {
        assert!(n > 0, "a key distribution needs at least one key");
        assert!(
            s >= 0.0 && s.is_finite(),
            "the Zipf exponent must be finite and ≥ 0"
        );
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for i in 0..n {
            acc += 1.0 / ((i + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for w in &mut cdf {
            *w /= total;
        }
        KeyDistribution { cdf }
    }

    /// Number of keys.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the distribution is over zero keys (never true).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draws a key index.
    pub fn sample(&self, rng: &mut StdRng) -> usize {
        let coin: f64 = rng.gen_range(0.0..1.0);
        match self
            .cdf
            .binary_search_by(|w| w.partial_cmp(&coin).expect("finite weights"))
        {
            Ok(i) | Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rmem_types::Value;

    #[test]
    fn schedule_builder_accumulates_in_order() {
        let s = Schedule::new()
            .at(10, PlannedEvent::Crash(ProcessId(0)))
            .at(20, PlannedEvent::Recover(ProcessId(0)));
        assert_eq!(s.entries().len(), 2);
        assert_eq!(s.entries()[0].0, VirtualTime(10));
    }

    #[test]
    fn uniform_distribution_covers_all_keys_evenly() {
        let dist = KeyDistribution::uniform(8);
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0usize; 8];
        for _ in 0..8_000 {
            counts[dist.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((700..1300).contains(&c), "uniform draw skewed: {counts:?}");
        }
    }

    #[test]
    fn zipf_distribution_is_head_heavy() {
        let dist = KeyDistribution::zipf(16, 0.99);
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = [0usize; 16];
        for _ in 0..10_000 {
            counts[dist.sample(&mut rng)] += 1;
        }
        assert!(
            counts[0] > counts[8] * 3,
            "index 0 must be much hotter: {counts:?}"
        );
        assert!(
            counts.iter().all(|&c| c > 0),
            "every key must still appear: {counts:?}"
        );
    }

    #[test]
    fn zipf_samples_are_deterministic_per_seed() {
        let dist = KeyDistribution::zipf(10, 0.7);
        let draw = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..50).map(|_| dist.sample(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(draw(7), draw(7));
        assert_ne!(draw(7), draw(8));
    }

    #[test]
    #[should_panic(expected = "at least one key")]
    fn empty_distribution_panics() {
        let _ = KeyDistribution::uniform(0);
    }

    #[test]
    fn closed_loop_constructors() {
        let w = ClosedLoop::writes(ProcessId(1), Value::from_u32(7), 50);
        assert_eq!(w.ops.len(), 50);
        assert!(matches!(w.ops[0], Op::Write(_)));
        let r = ClosedLoop::reads(ProcessId(2), 3)
            .with_think(Micros(100))
            .with_start_after(Micros(5));
        assert_eq!(r.ops.len(), 3);
        assert_eq!(r.think, Micros(100));
        assert_eq!(r.start_after, Micros(5));
    }
}
