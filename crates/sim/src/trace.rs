//! Execution traces: operation records, causal-log accounting and history
//! export.
//!
//! # Causal-log accounting
//!
//! The paper's complexity metric (§I-B) counts **causal logs**: logs that
//! causally precede one another within one operation. Two logs performed in
//! parallel at different processes cost 1; a log the writer must complete
//! *before* broadcasting, followed by replica logs, costs 2. The simulator
//! measures this by threading a `chain` counter through the event graph:
//!
//! * an invocation starts with chain 0;
//! * every action inherits the chain of the input being processed;
//! * completing a store raises the chain by 1 (`StoreDone` carries
//!   `chain + 1`);
//! * a delivered message carries the sender's chain at send time.
//!
//! When an operation completes, the largest chain among the inputs it
//! causally waited for — invocation, acknowledgements of its rounds at the
//! invoking process, its own store completions — is exactly the number of
//! causal logs on the operation's critical path. The paper's bounds then
//! become *measurable assertions*: persistent writes report 2, transient
//! writes 1, uncontended reads 0 (and 1 under write concurrency),
//! crash-stop everything 0.

use std::collections::HashMap;

use rmem_consistency::History;
use rmem_types::{Op, OpId, OpKind, OpResult, ProcessId};

use crate::time::VirtualTime;

/// The lifecycle record of one operation.
#[derive(Debug, Clone)]
pub struct OpRecord {
    /// Operation id.
    pub op: OpId,
    /// Read or write.
    pub kind: OpKind,
    /// The operation as invoked.
    pub operation: Op,
    /// Virtual invocation time.
    pub invoked_at: VirtualTime,
    /// Virtual completion time (`None` if the op was pending when its
    /// process crashed, or the run ended).
    pub completed_at: Option<VirtualTime>,
    /// The result (if completed).
    pub result: Option<OpResult>,
    /// Causal logs on the operation's critical path (see module docs).
    pub causal_logs: u32,
    /// Quorum round-trips the operation performed, as reported by the
    /// automaton at completion (0 while pending): 1 for fast-path and
    /// regular reads, 2 for written-back reads and queried writes.
    pub rounds: u32,
}

impl OpRecord {
    /// Operation latency, if completed.
    pub fn latency(&self) -> Option<rmem_types::Micros> {
        self.completed_at.map(|c| c.since(self.invoked_at))
    }

    /// Whether the operation completed with a non-rejected result.
    pub fn is_completed(&self) -> bool {
        self.result.as_ref().is_some_and(|r| r.is_completed())
    }
}

/// One history-relevant occurrence, in global order.
#[derive(Debug, Clone)]
enum TraceEvent {
    Invoke(OpId, Op),
    Reply(OpId, OpResult),
    Crash(ProcessId),
    Recover(ProcessId),
}

/// The full record of a simulation run.
#[derive(Debug, Default)]
pub struct Trace {
    ops: Vec<OpRecord>,
    index: HashMap<OpId, usize>,
    events: Vec<(VirtualTime, TraceEvent)>,
    /// Messages handed to the network.
    pub messages_sent: u64,
    /// Messages actually delivered.
    pub messages_delivered: u64,
    /// Stores applied to stable storage.
    pub stores_applied: u64,
    /// Stores that joined an already-pending group commit instead of
    /// starting their own (only nonzero under
    /// `DiskConfig::coalesce` — the sim's group-commit model).
    pub stores_coalesced: u64,
    /// Stores applied while no operation was pending at the storing
    /// process — recovery/initialisation logging, which the paper counts
    /// outside operations ("this log is outside the actual read and write
    /// operations", §IV-B).
    pub background_stores: u64,
    /// Invocations that arrived at a crashed process and were discarded.
    pub invokes_dropped: u64,
    /// Crash events delivered.
    pub crashes: u64,
    /// Recovery events delivered.
    pub recoveries: u64,
    /// Durations (µs) from each Recover event to the automaton reporting
    /// ready — the cost of the algorithm's recovery procedure.
    pub recovery_durations: Vec<u64>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Records an invocation.
    pub fn record_invoke(&mut self, at: VirtualTime, op: OpId, operation: Op) {
        let record = OpRecord {
            op,
            kind: operation.kind(),
            operation: operation.clone(),
            invoked_at: at,
            completed_at: None,
            result: None,
            causal_logs: 0,
            rounds: 0,
        };
        self.index.insert(op, self.ops.len());
        self.ops.push(record);
        self.events.push((at, TraceEvent::Invoke(op, operation)));
    }

    /// Raises the causal-log watermark of a pending operation.
    pub fn bump_chain(&mut self, op: OpId, chain: u32) {
        if let Some(&i) = self.index.get(&op) {
            let r = &mut self.ops[i];
            if r.completed_at.is_none() {
                r.causal_logs = r.causal_logs.max(chain);
            }
        }
    }

    /// Records the quorum-round count the automaton reported for `op`.
    pub fn record_rounds(&mut self, op: OpId, rounds: u32) {
        if let Some(&i) = self.index.get(&op) {
            self.ops[i].rounds = rounds;
        }
    }

    /// Records a completion.
    pub fn record_complete(&mut self, at: VirtualTime, op: OpId, result: OpResult) {
        if let Some(&i) = self.index.get(&op) {
            let r = &mut self.ops[i];
            r.completed_at = Some(at);
            r.result = Some(result.clone());
        }
        self.events.push((at, TraceEvent::Reply(op, result)));
    }

    /// Records a crash.
    pub fn record_crash(&mut self, at: VirtualTime, pid: ProcessId) {
        self.crashes += 1;
        self.events.push((at, TraceEvent::Crash(pid)));
    }

    /// Records a recovery.
    pub fn record_recover(&mut self, at: VirtualTime, pid: ProcessId) {
        self.recoveries += 1;
        self.events.push((at, TraceEvent::Recover(pid)));
    }

    /// Records how long a recovery procedure took (Recover → ready).
    pub fn record_recovery_duration(&mut self, duration: rmem_types::Micros) {
        self.recovery_durations.push(duration.0);
    }

    /// All operation records, in invocation order.
    pub fn operations(&self) -> &[OpRecord] {
        &self.ops
    }

    /// The record of one operation.
    pub fn operation(&self, op: OpId) -> Option<&OpRecord> {
        self.index.get(&op).map(|&i| &self.ops[i])
    }

    /// Converts the trace into a checkable [`History`].
    pub fn to_history(&self) -> History {
        let mut h = History::new();
        for (_, ev) in &self.events {
            match ev {
                TraceEvent::Invoke(op, operation) => {
                    h.push(rmem_consistency::Event::Invoke {
                        op: *op,
                        operation: operation.clone(),
                    });
                }
                TraceEvent::Reply(op, result) => {
                    h.push(rmem_consistency::Event::Reply {
                        op: *op,
                        result: result.clone(),
                    });
                }
                TraceEvent::Crash(pid) => h.push(rmem_consistency::Event::Crash { pid: *pid }),
                TraceEvent::Recover(pid) => h.push(rmem_consistency::Event::Recover { pid: *pid }),
            }
        }
        h
    }

    /// Completed-operation latencies for `kind`, in microseconds.
    pub fn latencies(&self, kind: OpKind) -> Vec<u64> {
        self.ops
            .iter()
            .filter(|r| r.kind == kind && r.is_completed())
            .filter_map(|r| r.latency().map(|m| m.0))
            .collect()
    }

    /// Quorum-round counts of completed operations of `kind`, in
    /// invocation order — the fast-path observability hook: a read-heavy
    /// quiescent run shows a mean well below 2.0, a contended one shows
    /// the fallback's 2s.
    pub fn rounds(&self, kind: OpKind) -> Vec<u32> {
        self.ops
            .iter()
            .filter(|r| r.kind == kind && r.is_completed())
            .map(|r| r.rounds)
            .collect()
    }

    /// Crash/recovery marks for rendering: `(time µs, process, is_crash)`.
    pub fn lifecycle_marks(&self) -> Vec<(u64, ProcessId, bool)> {
        self.events
            .iter()
            .filter_map(|(at, ev)| match ev {
                TraceEvent::Crash(pid) => Some((at.as_micros(), *pid, true)),
                TraceEvent::Recover(pid) => Some((at.as_micros(), *pid, false)),
                _ => None,
            })
            .collect()
    }

    /// Maximum causal-log count among completed operations of `kind`.
    pub fn max_causal_logs(&self, kind: OpKind) -> u32 {
        self.ops
            .iter()
            .filter(|r| r.kind == kind && r.is_completed())
            .map(|r| r.causal_logs)
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmem_types::Value;

    fn p(i: u16) -> ProcessId {
        ProcessId(i)
    }

    #[test]
    fn op_lifecycle_latency_and_chain() {
        let mut t = Trace::new();
        let op = OpId::new(p(0), 0);
        t.record_invoke(VirtualTime(100), op, Op::Write(Value::from_u32(1)));
        t.bump_chain(op, 1);
        t.bump_chain(op, 2);
        t.bump_chain(op, 1); // watermark never decreases
        t.record_complete(VirtualTime(900), op, OpResult::Written);
        let r = t.operation(op).unwrap();
        assert_eq!(r.latency(), Some(rmem_types::Micros(800)));
        assert_eq!(r.causal_logs, 2);
        assert!(r.is_completed());
    }

    #[test]
    fn rounds_are_recorded_per_op_and_filterable() {
        let mut t = Trace::new();
        let r1 = OpId::new(p(0), 0);
        t.record_invoke(VirtualTime(0), r1, Op::Read);
        t.record_rounds(r1, 1);
        t.record_complete(VirtualTime(5), r1, OpResult::ReadValue(Value::bottom()));
        let r2 = OpId::new(p(1), 0);
        t.record_invoke(VirtualTime(0), r2, Op::Read);
        t.record_rounds(r2, 2);
        t.record_complete(VirtualTime(9), r2, OpResult::ReadValue(Value::bottom()));
        let w = OpId::new(p(2), 0);
        t.record_invoke(VirtualTime(0), w, Op::Write(Value::from_u32(1)));
        t.record_rounds(w, 2);
        // w never completes: excluded from the per-kind sample.
        assert_eq!(t.rounds(OpKind::Read), vec![1, 2]);
        assert!(t.rounds(OpKind::Write).is_empty());
        assert_eq!(t.operation(r1).unwrap().rounds, 1);
    }

    #[test]
    fn bump_after_completion_is_ignored() {
        let mut t = Trace::new();
        let op = OpId::new(p(0), 0);
        t.record_invoke(VirtualTime(0), op, Op::Read);
        t.record_complete(VirtualTime(10), op, OpResult::ReadValue(Value::bottom()));
        t.bump_chain(op, 9);
        assert_eq!(t.operation(op).unwrap().causal_logs, 0);
    }

    #[test]
    fn history_export_preserves_order_and_crashes() {
        let mut t = Trace::new();
        let w = OpId::new(p(0), 0);
        t.record_invoke(VirtualTime(0), w, Op::Write(Value::from_u32(5)));
        t.record_crash(VirtualTime(5), p(0));
        t.record_recover(VirtualTime(9), p(0));
        let h = t.to_history();
        assert_eq!(h.len(), 3);
        assert!(h.well_formed().is_ok());
        assert_eq!(h.pending_ops(), vec![w]);
    }

    #[test]
    fn latencies_filter_by_kind_and_completion() {
        let mut t = Trace::new();
        let w = OpId::new(p(0), 0);
        t.record_invoke(VirtualTime(0), w, Op::Write(Value::from_u32(1)));
        t.record_complete(VirtualTime(700), w, OpResult::Written);
        let r = OpId::new(p(1), 0);
        t.record_invoke(VirtualTime(0), r, Op::Read);
        // r never completes
        assert_eq!(t.latencies(OpKind::Write), vec![700]);
        assert!(t.latencies(OpKind::Read).is_empty());
        assert_eq!(t.max_causal_logs(OpKind::Write), 0);
    }

    #[test]
    fn rejected_ops_are_not_completed() {
        let mut t = Trace::new();
        let r = OpId::new(p(1), 0);
        t.record_invoke(VirtualTime(0), r, Op::Read);
        t.record_complete(
            VirtualTime(1),
            r,
            OpResult::Rejected(rmem_types::RejectReason::Busy),
        );
        assert!(!t.operation(r).unwrap().is_completed());
        assert!(t.latencies(OpKind::Read).is_empty());
    }
}
