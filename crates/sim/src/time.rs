//! Virtual time.

use rmem_types::Micros;

/// An instant of simulated time, in microseconds since the start of the
/// run.
///
/// The paper's model posits a fictional global clock outside the processes'
/// control (§II); this is it. Automata never see `VirtualTime` — they only
/// request relative timers — so algorithm code cannot accidentally depend
/// on it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VirtualTime(pub u64);

impl VirtualTime {
    /// The start of the simulation.
    pub const ZERO: VirtualTime = VirtualTime(0);

    /// Microseconds since simulation start.
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// This instant advanced by `d`.
    pub fn after(self, d: Micros) -> VirtualTime {
        VirtualTime(self.0.saturating_add(d.0))
    }

    /// The duration since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`.
    pub fn since(self, earlier: VirtualTime) -> Micros {
        assert!(
            earlier.0 <= self.0,
            "time ran backwards: {earlier} > {self}"
        );
        Micros(self.0 - earlier.0)
    }
}

impl std::fmt::Display for VirtualTime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "t={}µs", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn after_and_since_are_inverse() {
        let t0 = VirtualTime(100);
        let t1 = t0.after(Micros(250));
        assert_eq!(t1, VirtualTime(350));
        assert_eq!(t1.since(t0), Micros(250));
    }

    #[test]
    fn ordering_is_chronological() {
        assert!(VirtualTime::ZERO < VirtualTime(1));
        assert!(VirtualTime(5) < VirtualTime(6));
    }

    #[test]
    #[should_panic(expected = "time ran backwards")]
    fn since_panics_on_reversed_arguments() {
        let _ = VirtualTime(1).since(VirtualTime(2));
    }

    #[test]
    fn display() {
        assert_eq!(VirtualTime(7).to_string(), "t=7µs");
    }
}
