//! The discrete-event simulation engine.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rmem_storage::{MemStorage, SnapshotView, StableStorage};
use rmem_types::{Action, AutomatonFactory, Input, Micros, Op, OpId, ProcessId};

use crate::config::ClusterConfig;
use crate::event::{EventKind, EventQueue};
use crate::network::{Fate, NetworkModel};
use crate::time::VirtualTime;
use crate::trace::Trace;
use crate::workload::{ClosedLoop, PlannedEvent, Schedule};

/// One simulated process: its automaton (volatile — destroyed by crashes)
/// and its stable storage (owned by the engine — survives crashes).
struct ProcSlot {
    automaton: Option<Box<dyn rmem_types::Automaton>>,
    storage: MemStorage,
    /// Bumped at every crash; store completions and timers from older
    /// incarnations are discarded.
    incarnation: u32,
    /// The process's **operation table**: in-flight client operations
    /// keyed by the register they address. Mirrors the real runner's
    /// table (`rmem-net`): at most one operation per register — §III-A
    /// sequentiality applied per register emulation — while operations on
    /// distinct registers overlap freely.
    pending: std::collections::BTreeMap<rmem_types::RegisterId, OpId>,
    next_op_counter: u64,
    /// Set while the process runs its recovery procedure (between the
    /// Recover event and the automaton reporting ready); drives the
    /// recovery-duration measurement.
    recovering_since: Option<VirtualTime>,
    /// Group-commit disk state (`DiskConfig::coalesce`): when the fsync
    /// currently scheduled last will complete, and the start/completion
    /// of the commit currently accepting joiners. The disk outlives
    /// crashes (hardware keeps spinning); only the StoreDone deliveries
    /// die with the incarnation.
    disk_busy_until: VirtualTime,
    disk_group_start: VirtualTime,
    disk_group_done: VirtualTime,
}

impl ProcSlot {
    /// Whether `op` is still in flight at this process.
    fn is_pending(&self, op: OpId) -> bool {
        self.pending.values().any(|&p| p == op)
    }
}

struct LoopState {
    pid: ProcessId,
    remaining: std::collections::VecDeque<Op>,
    think: Micros,
    /// An invocation of this loop is in flight (scheduled or pending).
    in_flight: bool,
}

/// Outcome summary of a run.
#[derive(Debug)]
pub struct SimReport {
    /// The full execution trace (operations, history, counters).
    pub trace: Trace,
    /// Virtual time at which the run stopped.
    pub final_time: VirtualTime,
    /// Total events processed.
    pub events_processed: u64,
    /// Messages dropped by the network (loss + partitions).
    pub messages_dropped: u64,
    /// Messages duplicated by the network.
    pub messages_duplicated: u64,
    /// Whether the run ended by quiescence (`true`) or by hitting the
    /// time/event limit (`false`).
    pub quiescent: bool,
}

/// A deterministic simulation of a cluster running one automaton per
/// process.
///
/// Construct with [`Simulation::new`], attach workloads
/// ([`with_schedule`](Simulation::with_schedule),
/// [`add_closed_loop`](Simulation::add_closed_loop)) and call
/// [`run`](Simulation::run). The same seed and workload always produce the
/// identical run.
pub struct Simulation {
    config: ClusterConfig,
    factory: Arc<dyn AutomatonFactory>,
    now: VirtualTime,
    queue: EventQueue,
    net: NetworkModel,
    rng: StdRng,
    procs: Vec<ProcSlot>,
    trace: Trace,
    loops: Vec<LoopState>,
    schedule: Vec<(VirtualTime, PlannedEvent)>,
    events_processed: u64,
    /// Requester-relative causal chains for acknowledgements a replica
    /// parked behind a store: when a request is delivered and not
    /// immediately acknowledged, the ack it eventually triggers must carry
    /// `request chain + 1` (one store on the requester's path), not the
    /// chain of whatever store completion happened to release it — that
    /// store may belong to a different operation's lineage.
    deferred_acks: std::collections::HashMap<(ProcessId, rmem_types::RequestId), u32>,
    /// Messages sent while handling the current event (drives the
    /// sender-side serialization model, `NetConfig::serialize_per_msg`).
    sends_this_event: u32,
    ran: bool,
}

impl Simulation {
    /// Creates a simulation of `config.n` processes built by `factory`,
    /// with all randomness derived from `seed`.
    pub fn new(config: ClusterConfig, factory: Arc<dyn AutomatonFactory>, seed: u64) -> Self {
        let n = config.n;
        let procs = (0..n)
            .map(|_| ProcSlot {
                automaton: None,
                storage: MemStorage::new(),
                incarnation: 0,
                pending: std::collections::BTreeMap::new(),
                next_op_counter: 0,
                recovering_since: None,
                disk_busy_until: VirtualTime::ZERO,
                disk_group_start: VirtualTime::ZERO,
                disk_group_done: VirtualTime::ZERO,
            })
            .collect();
        Simulation {
            net: NetworkModel::new(config.net.clone()),
            rng: StdRng::seed_from_u64(seed),
            config,
            factory,
            now: VirtualTime::ZERO,
            queue: EventQueue::new(),
            procs,
            trace: Trace::new(),
            loops: Vec::new(),
            schedule: Vec::new(),
            events_processed: 0,
            deferred_acks: std::collections::HashMap::new(),
            sends_this_event: 0,
            ran: false,
        }
    }

    /// Attaches a scripted schedule (crashes, recoveries, scripted
    /// invocations, partitions).
    pub fn with_schedule(mut self, schedule: Schedule) -> Self {
        self.schedule.extend(schedule.entries().iter().cloned());
        self
    }

    /// Attaches a closed-loop client.
    pub fn add_closed_loop(&mut self, cl: ClosedLoop) {
        assert!(
            cl.pid.index() < self.config.n,
            "closed loop bound to unknown process {}",
            cl.pid
        );
        self.loops.push(LoopState {
            pid: cl.pid,
            remaining: cl.ops.clone().into(),
            think: cl.think,
            in_flight: false,
        });
        // The first invocation is scheduled when the run starts, honouring
        // start_after; encode it via the schedule with a sentinel: we
        // simply plant the first op here.
        let idx = self.loops.len() - 1;
        let first_at = VirtualTime::ZERO.after(cl.start_after);
        if let Some(op) = self.loops[idx].remaining.pop_front() {
            self.loops[idx].in_flight = true;
            let op_id = self.fresh_op_id(cl.pid);
            self.queue.push(
                first_at,
                EventKind::Invoke {
                    pid: cl.pid,
                    op: op_id,
                    operation: op,
                },
            );
        }
    }

    fn fresh_op_id(&mut self, pid: ProcessId) -> OpId {
        let slot = &mut self.procs[pid.index()];
        let id = OpId::new(pid, slot.next_op_counter);
        slot.next_op_counter += 1;
        id
    }

    /// Whether `pid` is currently crashed.
    pub fn is_crashed(&self, pid: ProcessId) -> bool {
        self.procs[pid.index()].automaton.is_none()
    }

    /// Read-only view of a process's stable storage (inspect after `run`).
    pub fn storage(&self, pid: ProcessId) -> &MemStorage {
        &self.procs[pid.index()].storage
    }

    /// Runs the simulation to quiescence or its limits, returning the
    /// report. May be called once.
    ///
    /// # Panics
    ///
    /// Panics if called twice.
    pub fn run(&mut self) -> SimReport {
        assert!(!self.ran, "Simulation::run may only be called once");
        self.ran = true;

        // Plant the scripted schedule.
        let schedule = std::mem::take(&mut self.schedule);
        for (at, ev) in schedule {
            let kind = match ev {
                PlannedEvent::Invoke(pid, op) => {
                    let op_id = self.fresh_op_id(pid);
                    EventKind::Invoke {
                        pid,
                        op: op_id,
                        operation: op,
                    }
                }
                PlannedEvent::Crash(pid) => EventKind::Crash { pid },
                PlannedEvent::Recover(pid) => EventKind::Recover { pid },
                PlannedEvent::Block(from, to) => EventKind::SetLink {
                    from,
                    to,
                    blocked: true,
                },
                PlannedEvent::Unblock(from, to) => EventKind::SetLink {
                    from,
                    to,
                    blocked: false,
                },
            };
            self.queue.push(at, kind);
        }

        // Boot every process.
        for pid in ProcessId::all(self.config.n) {
            let automaton = self.factory.fresh(pid, self.config.n);
            self.procs[pid.index()].automaton = Some(automaton);
        }
        for pid in ProcessId::all(self.config.n) {
            self.feed(pid, Input::Start, 0, None);
        }

        let mut quiescent = false;
        let mut hit_limit = false;
        while let Some(ev) = self.queue.pop() {
            if ev.at > self.config.max_time || self.events_processed >= self.config.max_events {
                hit_limit = true;
                break;
            }
            debug_assert!(ev.at >= self.now, "event queue delivered out of order");
            self.now = ev.at;
            self.events_processed += 1;
            self.sends_this_event = 0;
            self.dispatch(ev.kind);

            if self.queue.len() < 256 && self.is_idle() && self.queue_only_timers() {
                quiescent = true;
                break;
            }
        }
        if !hit_limit && self.queue.is_empty() {
            quiescent = true;
        }

        SimReport {
            trace: std::mem::take(&mut self.trace),
            final_time: self.now,
            events_processed: self.events_processed,
            messages_dropped: self.net.dropped,
            messages_duplicated: self.net.duplicated,
            quiescent,
        }
    }

    /// Completes the recovery-duration measurement when a recovering
    /// process first reports ready.
    fn note_if_recovered(&mut self, pid: ProcessId) {
        let slot = &mut self.procs[pid.index()];
        if let Some(since) = slot.recovering_since {
            if slot.automaton.as_ref().is_some_and(|a| a.is_ready()) {
                slot.recovering_since = None;
                self.trace.record_recovery_duration(self.now.since(since));
            }
        }
    }

    fn is_idle(&self) -> bool {
        let procs_idle = self
            .procs
            .iter()
            .all(|s| s.pending.is_empty() && s.automaton.as_ref().is_none_or(|a| a.is_ready()));
        let loops_done = self
            .loops
            .iter()
            .all(|l| l.remaining.is_empty() && !l.in_flight);
        procs_idle && loops_done
    }

    fn queue_only_timers(&self) -> bool {
        // Private helper on the queue would expose internals; a linear
        // scan over the (small, by the len() guard) heap is fine.
        self.queue_iter_all_timers()
    }

    fn queue_iter_all_timers(&self) -> bool {
        self.queue
            .iter()
            .all(|s| matches!(s.kind, EventKind::TimerFire { .. }))
    }

    fn dispatch(&mut self, kind: EventKind) {
        match kind {
            EventKind::Deliver {
                to,
                from,
                msg,
                chain,
            } => {
                if self.procs[to.index()].automaton.is_none() {
                    return; // crashed receivers hear nothing
                }
                self.trace.messages_delivered += 1;
                // A message belongs to the receiver's own operation on the
                // register its request id names (request ids carry the
                // register, so concurrent operations on distinct registers
                // attribute independently).
                let attributed = if msg.request_id().origin == to {
                    self.procs[to.index()]
                        .pending
                        .get(&msg.request_id().reg)
                        .copied()
                } else {
                    None
                };
                self.feed(to, Input::Message { from, msg }, chain, attributed);
                self.note_if_recovered(to);
            }
            EventKind::StoreDone {
                pid,
                token,
                key,
                bytes,
                incarnation,
                chain,
                attributed_op,
            } => {
                let slot = &mut self.procs[pid.index()];
                if slot.incarnation != incarnation {
                    return; // the store was in flight when the process crashed: lost
                }
                slot.storage
                    .store(&key, bytes)
                    .expect("MemStorage store cannot fail");
                self.trace.stores_applied += 1;
                if slot.pending.is_empty() {
                    self.trace.background_stores += 1;
                }
                let attributed = attributed_op.filter(|&op| slot.is_pending(op));
                if slot.automaton.is_none() {
                    return;
                }
                self.feed(pid, Input::StoreDone(token), chain, attributed);
                self.note_if_recovered(pid);
            }
            EventKind::TimerFire {
                pid,
                token,
                incarnation,
                chain,
            } => {
                let slot = &self.procs[pid.index()];
                if slot.incarnation != incarnation || slot.automaton.is_none() {
                    return;
                }
                self.feed(pid, Input::Timer(token), chain, None);
                self.note_if_recovered(pid);
            }
            EventKind::Invoke { pid, op, operation } => {
                let slot = &mut self.procs[pid.index()];
                if slot.automaton.is_none() {
                    self.trace.invokes_dropped += 1;
                    self.loop_op_lost(pid);
                    return;
                }
                let reg = operation.register();
                if slot.pending.contains_key(&reg) {
                    // §III-A sequentiality, per register emulation (as in
                    // the real runner): a register serves one operation at
                    // a time, so its restriction of the history stays
                    // well-formed; distinct registers overlap freely.
                    self.trace.invokes_dropped += 1;
                    return;
                }
                slot.pending.insert(reg, op);
                self.trace.record_invoke(self.now, op, operation.clone());
                self.feed(pid, Input::Invoke { op, operation }, 0, Some(op));
            }
            EventKind::Crash { pid } => {
                let slot = &mut self.procs[pid.index()];
                if slot.automaton.is_none() {
                    return;
                }
                slot.automaton = None;
                slot.incarnation += 1;
                slot.pending.clear(); // the ops are lost; their records stay pending
                slot.recovering_since = None;
                self.deferred_acks.retain(|(p, _), _| *p != pid);
                self.trace.record_crash(self.now, pid);
                self.loop_op_lost(pid);
            }
            EventKind::Recover { pid } => {
                if self.procs[pid.index()].automaton.is_some() {
                    return;
                }
                let automaton = {
                    let slot = &self.procs[pid.index()];
                    let snapshot = SnapshotView::new(&slot.storage);
                    self.factory
                        .recover(pid, self.config.n, slot.incarnation as u64, &snapshot)
                };
                self.procs[pid.index()].automaton = Some(automaton);
                self.procs[pid.index()].recovering_since = Some(self.now);
                self.trace.record_recover(self.now, pid);
                self.feed(pid, Input::Start, 0, None);
                self.note_if_recovered(pid);
                self.loop_resume(pid);
            }
            EventKind::SetLink { from, to, blocked } => {
                self.net.set_link(from, to, blocked);
            }
        }
    }

    /// Delivers `input` to `pid`'s automaton and executes the resulting
    /// actions. `chain` is the causal-log count carried by the input;
    /// `attributed` names the in-flight operation the input belongs to,
    /// if any (with the per-register operation table, several operations
    /// can be in flight — attribution is per register, not per process).
    fn feed(&mut self, pid: ProcessId, input: Input, chain: u32, attributed: Option<OpId>) {
        if let Some(op) = attributed {
            self.trace.bump_chain(op, chain);
        }
        // If the input is a protocol request, note it so a deferred ack
        // can be assigned its requester-relative chain (see field docs).
        let request_id = match &input {
            Input::Message { msg, .. } if msg.is_request() => Some(msg.request_id()),
            _ => None,
        };
        let mut out = Vec::new();
        {
            let slot = &mut self.procs[pid.index()];
            let Some(automaton) = slot.automaton.as_mut() else {
                return;
            };
            automaton.on_input(input, &mut out);
        }
        if let Some(req) = request_id {
            let acked_now = out.iter().any(|a| {
                matches!(a, Action::Send { msg, .. } if !msg.is_request() && msg.request_id() == req)
            });
            if !acked_now {
                self.deferred_acks.insert((pid, req), chain + 1);
            }
        }
        for action in out {
            self.apply_action(pid, action, chain, attributed);
        }
    }

    fn apply_action(
        &mut self,
        pid: ProcessId,
        action: Action,
        chain: u32,
        attributed: Option<OpId>,
    ) {
        match action {
            Action::Send { to, msg } => {
                assert!(to.index() < self.config.n, "send to unknown process {to}");
                self.trace.messages_sent += 1;
                // Duplicated requests can make one round send several
                // acks, so the recorded chain must outlive the first ack:
                // look up without consuming (entries die with a crash of
                // the process, and request ids are never reused).
                let chain = if msg.is_request() {
                    chain
                } else {
                    self.deferred_acks
                        .get(&(pid, msg.request_id()))
                        .copied()
                        .unwrap_or(chain)
                };
                let serialization =
                    Micros(self.sends_this_event as u64 * self.config.net.serialize_per_msg.0);
                self.sends_this_event += 1;
                let fate = self.net.fate(pid, to, msg.payload_len(), &mut self.rng);
                match fate {
                    Fate::Drop => {}
                    Fate::Deliver(d) => {
                        self.queue.push(
                            self.now.after(serialization + d),
                            EventKind::Deliver {
                                to,
                                from: pid,
                                msg,
                                chain,
                            },
                        );
                    }
                    Fate::Duplicate(d1, d2) => {
                        self.queue.push(
                            self.now.after(serialization + d1),
                            EventKind::Deliver {
                                to,
                                from: pid,
                                msg: msg.clone(),
                                chain,
                            },
                        );
                        self.queue.push(
                            self.now.after(serialization + d2),
                            EventKind::Deliver {
                                to,
                                from: pid,
                                msg,
                                chain,
                            },
                        );
                    }
                }
            }
            Action::Store { token, key, bytes } => {
                let disk = self.config.disk_of(pid.index()).clone();
                let jitter = if disk.jitter.0 > 0 {
                    Micros(self.rng.gen_range(0..=disk.jitter.0))
                } else {
                    Micros(0)
                };
                let latency = disk.base_latency
                    + jitter
                    + Micros((bytes.len() as u64 * disk.ns_per_byte) / 1_000);
                let slot = &mut self.procs[pid.index()];
                let done_at = if !disk.coalesce {
                    // Unlimited parallel stores: each pays its own latency.
                    self.now.after(latency)
                } else if self.now >= slot.disk_busy_until {
                    // Idle disk: this store's commit starts immediately.
                    slot.disk_group_start = self.now;
                    slot.disk_group_done = self.now.after(latency);
                    slot.disk_busy_until = slot.disk_group_done;
                    slot.disk_group_done
                } else if self.now <= slot.disk_group_start {
                    // A commit is queued but its fsync has not started:
                    // join the group — same fsync, same completion.
                    self.trace.stores_coalesced += 1;
                    slot.disk_group_done
                } else {
                    // The accepting commit's fsync is already running:
                    // open the next group, starting when the disk frees.
                    slot.disk_group_start = slot.disk_busy_until;
                    slot.disk_group_done = slot.disk_busy_until.after(latency);
                    slot.disk_busy_until = slot.disk_group_done;
                    slot.disk_group_done
                };
                let attributed_op = attributed;
                let incarnation = slot.incarnation;
                self.queue.push(
                    done_at,
                    EventKind::StoreDone {
                        pid,
                        token,
                        key,
                        bytes,
                        incarnation,
                        chain: chain + 1,
                        attributed_op,
                    },
                );
            }
            Action::SetTimer { token, after } => {
                let slot = &self.procs[pid.index()];
                self.queue.push(
                    self.now.after(after),
                    EventKind::TimerFire {
                        pid,
                        token,
                        incarnation: slot.incarnation,
                        chain,
                    },
                );
            }
            Action::Complete {
                op, result, rounds, ..
            } => {
                let slot = &mut self.procs[pid.index()];
                slot.pending.retain(|_, &mut p| p != op);
                self.trace.bump_chain(op, chain);
                self.trace.record_rounds(op, rounds);
                self.trace.record_complete(self.now, op, result);
                self.loop_advance(pid);
            }
        }
    }

    // -- Closed-loop bookkeeping ----------------------------------------

    fn loop_advance(&mut self, pid: ProcessId) {
        let Some(idx) = self.loops.iter().position(|l| l.pid == pid && l.in_flight) else {
            return;
        };
        self.loops[idx].in_flight = false;
        let think = self.loops[idx].think;
        if let Some(op) = self.loops[idx].remaining.pop_front() {
            self.loops[idx].in_flight = true;
            let op_id = self.fresh_op_id(pid);
            self.queue.push(
                self.now.after(think),
                EventKind::Invoke {
                    pid,
                    op: op_id,
                    operation: op,
                },
            );
        }
    }

    fn loop_op_lost(&mut self, pid: ProcessId) {
        if let Some(l) = self.loops.iter_mut().find(|l| l.pid == pid && l.in_flight) {
            l.in_flight = false;
        }
    }

    fn loop_resume(&mut self, pid: ProcessId) {
        let Some(idx) = self.loops.iter().position(|l| l.pid == pid && !l.in_flight) else {
            return;
        };
        let think = self.loops[idx].think;
        if let Some(op) = self.loops[idx].remaining.pop_front() {
            self.loops[idx].in_flight = true;
            let op_id = self.fresh_op_id(pid);
            self.queue.push(
                self.now.after(think),
                EventKind::Invoke {
                    pid,
                    op: op_id,
                    operation: op,
                },
            );
        }
    }
}
