//! The event queue: a deterministic priority queue over virtual time.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use bytes::Bytes;
use rmem_types::{Message, Op, OpId, ProcessId, StoreToken, TimerToken};

use crate::time::VirtualTime;

/// What happens when a scheduled event fires.
#[derive(Debug, Clone)]
pub enum EventKind {
    /// Deliver a network message.
    Deliver {
        /// Receiving process.
        to: ProcessId,
        /// Sending process.
        from: ProcessId,
        /// The message.
        msg: Message,
        /// Causal-log chain length carried by this message (see
        /// [`crate::trace`]).
        chain: u32,
    },
    /// A store issued by `pid` reaches stable storage: apply it and notify
    /// the automaton.
    StoreDone {
        /// The storing process.
        pid: ProcessId,
        /// Correlation token for the automaton.
        token: StoreToken,
        /// Slot to write.
        key: String,
        /// Record to write.
        bytes: Bytes,
        /// The process incarnation that issued the store (stale
        /// completions from before a crash are discarded — an in-flight
        /// write is lost with the crash).
        incarnation: u32,
        /// Causal-log chain length *after* this store (issuer's chain + 1).
        chain: u32,
        /// The operation this store is attributed to for causal-log
        /// accounting (the issuer's pending op at issue time), if any.
        attributed_op: Option<OpId>,
    },
    /// A timer set by `pid` fires.
    TimerFire {
        /// The process whose timer fires.
        pid: ProcessId,
        /// Correlation token for the automaton.
        token: TimerToken,
        /// Issuing incarnation (timers die with their incarnation).
        incarnation: u32,
        /// Causal-log chain at the time the timer was set.
        chain: u32,
    },
    /// A client invokes an operation at `pid`.
    Invoke {
        /// Target process.
        pid: ProcessId,
        /// Operation id.
        op: OpId,
        /// The operation.
        operation: Op,
    },
    /// The adversary crashes `pid`.
    Crash {
        /// Victim.
        pid: ProcessId,
    },
    /// The adversary recovers `pid`.
    Recover {
        /// The process to revive.
        pid: ProcessId,
    },
    /// The adversary blocks or unblocks the directed link `from → to`
    /// (partition modelling; blocked links drop every message).
    SetLink {
        /// Sender side.
        from: ProcessId,
        /// Receiver side.
        to: ProcessId,
        /// `true` = blocked.
        blocked: bool,
    },
}

/// A scheduled event. Ordering is (time, sequence number): two events never
/// compare equal, so execution order is total and deterministic.
#[derive(Debug, Clone)]
pub struct Scheduled {
    /// When the event fires.
    pub at: VirtualTime,
    /// Tie-break: insertion order.
    pub seq: u64,
    /// The payload.
    pub kind: EventKind,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Scheduled {}

impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Deterministic event queue.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Scheduled>,
    next_seq: u64,
}

impl EventQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue::default()
    }

    /// Schedules `kind` at `at`.
    pub fn push(&mut self, at: VirtualTime, kind: EventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { at, seq, kind });
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<Scheduled> {
        self.heap.pop()
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Iterates over pending events in unspecified order (used for cheap
    /// quiescence checks).
    pub fn iter(&self) -> impl Iterator<Item = &Scheduled> {
        self.heap.iter()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(VirtualTime(30), EventKind::Crash { pid: ProcessId(0) });
        q.push(VirtualTime(10), EventKind::Crash { pid: ProcessId(1) });
        q.push(VirtualTime(20), EventKind::Crash { pid: ProcessId(2) });
        let order: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|s| s.at.0).collect();
        assert_eq!(order, vec![10, 20, 30]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..5u16 {
            q.push(VirtualTime(7), EventKind::Crash { pid: ProcessId(i) });
        }
        let order: Vec<u16> = std::iter::from_fn(|| q.pop())
            .map(|s| match s.kind {
                EventKind::Crash { pid } => pid.0,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn len_and_is_empty() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(VirtualTime(1), EventKind::Crash { pid: ProcessId(0) });
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }
}
