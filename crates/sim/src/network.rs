//! The simulated fair-lossy network.

use std::collections::HashSet;

use rand::rngs::StdRng;
use rand::Rng;
use rmem_types::{Micros, ProcessId};

use crate::config::NetConfig;

/// What the network decides to do with one send.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fate {
    /// Deliver once after the given one-way delay.
    Deliver(Micros),
    /// Deliver twice (duplication), at the two delays.
    Duplicate(Micros, Micros),
    /// Drop silently.
    Drop,
}

/// The network model: computes per-message fates deterministically from
/// the shared simulation RNG, and tracks blocked directed links
/// (partitions).
#[derive(Debug)]
pub struct NetworkModel {
    config: NetConfig,
    blocked: HashSet<(ProcessId, ProcessId)>,
    /// Messages dropped so far (diagnostics).
    pub dropped: u64,
    /// Messages duplicated so far (diagnostics).
    pub duplicated: u64,
}

impl NetworkModel {
    /// Creates a model from its configuration.
    pub fn new(config: NetConfig) -> Self {
        NetworkModel {
            config,
            blocked: HashSet::new(),
            dropped: 0,
            duplicated: 0,
        }
    }

    /// Blocks or unblocks the directed link `from → to`.
    pub fn set_link(&mut self, from: ProcessId, to: ProcessId, blocked: bool) {
        if blocked {
            self.blocked.insert((from, to));
        } else {
            self.blocked.remove(&(from, to));
        }
    }

    /// Whether the directed link is currently blocked.
    pub fn is_blocked(&self, from: ProcessId, to: ProcessId) -> bool {
        self.blocked.contains(&(from, to))
    }

    fn one_delay(
        &self,
        from: ProcessId,
        to: ProcessId,
        payload_len: usize,
        rng: &mut StdRng,
    ) -> Micros {
        let base = if from == to {
            self.config.self_delay
        } else {
            self.config.base_delay
        };
        let jitter = if self.config.jitter.0 > 0 {
            Micros(rng.gen_range(0..=self.config.jitter.0))
        } else {
            Micros(0)
        };
        let transmission = Micros((payload_len as u64 * self.config.ns_per_byte) / 1_000);
        base + jitter + transmission
    }

    /// Decides the fate of a message of `payload_len` bytes sent
    /// `from → to`.
    pub fn fate(
        &mut self,
        from: ProcessId,
        to: ProcessId,
        payload_len: usize,
        rng: &mut StdRng,
    ) -> Fate {
        if self.is_blocked(from, to) {
            self.dropped += 1;
            return Fate::Drop;
        }
        // Draw the coins unconditionally so the RNG stream does not depend
        // on configuration thresholds in surprising ways.
        let drop_coin: f64 = rng.gen();
        let dup_coin: f64 = rng.gen();
        if drop_coin < self.config.drop_prob {
            self.dropped += 1;
            return Fate::Drop;
        }
        let d1 = self.one_delay(from, to, payload_len, rng);
        if dup_coin < self.config.duplicate_prob {
            self.duplicated += 1;
            let d2 = self.one_delay(from, to, payload_len, rng);
            return Fate::Duplicate(d1, d2);
        }
        Fate::Deliver(d1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn default_net_is_reliable_and_deterministic() {
        let mut net = NetworkModel::new(NetConfig::default());
        let mut r = rng();
        match net.fate(ProcessId(0), ProcessId(1), 0, &mut r) {
            Fate::Deliver(d) => assert_eq!(d, Micros(100)),
            other => panic!("unexpected fate {other:?}"),
        }
        assert_eq!(net.dropped, 0);
    }

    #[test]
    fn self_messages_use_loopback_delay() {
        let mut net = NetworkModel::new(NetConfig::default());
        let mut r = rng();
        match net.fate(ProcessId(2), ProcessId(2), 0, &mut r) {
            Fate::Deliver(d) => assert_eq!(d, Micros(1)),
            other => panic!("unexpected fate {other:?}"),
        }
    }

    #[test]
    fn payload_size_adds_transmission_delay() {
        let mut net = NetworkModel::new(NetConfig::default());
        let mut r = rng();
        // 64 KiB at 80 ns/byte ≈ 5243 µs on top of the base 100.
        match net.fate(ProcessId(0), ProcessId(1), 65536, &mut r) {
            Fate::Deliver(d) => assert_eq!(d, Micros(100 + 65536 * 80 / 1000)),
            other => panic!("unexpected fate {other:?}"),
        }
    }

    #[test]
    fn blocked_links_drop_everything() {
        let mut net = NetworkModel::new(NetConfig::default());
        let mut r = rng();
        net.set_link(ProcessId(0), ProcessId(1), true);
        assert_eq!(net.fate(ProcessId(0), ProcessId(1), 0, &mut r), Fate::Drop);
        // The reverse direction is unaffected.
        assert!(matches!(
            net.fate(ProcessId(1), ProcessId(0), 0, &mut r),
            Fate::Deliver(_)
        ));
        net.set_link(ProcessId(0), ProcessId(1), false);
        assert!(matches!(
            net.fate(ProcessId(0), ProcessId(1), 0, &mut r),
            Fate::Deliver(_)
        ));
    }

    #[test]
    fn lossy_net_drops_and_duplicates_at_roughly_the_configured_rate() {
        let mut net = NetworkModel::new(NetConfig::lossy(0.3, 0.1));
        let mut r = rng();
        let trials = 10_000;
        for _ in 0..trials {
            let _ = net.fate(ProcessId(0), ProcessId(1), 0, &mut r);
        }
        let drop_rate = net.dropped as f64 / trials as f64;
        assert!((0.25..0.35).contains(&drop_rate), "drop rate {drop_rate}");
        // Duplicates are drawn from survivors (~70%), so ≈7%.
        let dup_rate = net.duplicated as f64 / trials as f64;
        assert!((0.04..0.10).contains(&dup_rate), "dup rate {dup_rate}");
    }

    #[test]
    fn same_seed_same_fates() {
        let run = || {
            let mut net = NetworkModel::new(NetConfig::lossy(0.2, 0.2));
            let mut r = StdRng::seed_from_u64(99);
            (0..100)
                .map(|_| net.fate(ProcessId(0), ProcessId(1), 16, &mut r))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
