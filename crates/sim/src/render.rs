//! ASCII timeline rendering of traces — the paper's run diagrams
//! (Figs. 1–3) regenerated from actual executions.
//!
//! One lane per process; operations are drawn as `[label...]` intervals,
//! crashes as `✗`, recoveries as `↻`. Pending operations (cut off by a
//! crash or the end of the run) trail off with `…`.
//!
//! ```text
//! t[µs]    0 ........ 10000 ........ 20000 ........ 30000
//! p0  ──[W(1)]────[W(2)…✗───↻────[W(3)]──────────
//! p1  ───────[R→1]──────────────[R→2]────────────
//! ```

use rmem_types::{OpKind, ProcessId};

use crate::trace::Trace;

/// Renders the trace as one timeline lane per process, `width` characters
/// wide (excluding the lane prefix).
pub fn render_timeline(trace: &Trace, n: usize, width: usize) -> String {
    let width = width.max(40);
    let end_time = trace
        .operations()
        .iter()
        .flat_map(|o| {
            [
                Some(o.invoked_at.as_micros()),
                o.completed_at.map(|t| t.as_micros()),
            ]
        })
        .flatten()
        .chain(trace.lifecycle_marks().iter().map(|(t, _, _)| *t))
        .max()
        .unwrap_or(1)
        .max(1);

    let col = |t: u64| -> usize { ((t as u128 * (width as u128 - 1)) / end_time as u128) as usize };

    let mut lanes: Vec<Vec<char>> = (0..n).map(|_| vec!['─'; width]).collect();

    // Operations.
    for op in trace.operations() {
        let lane = &mut lanes[op.op.pid.index()];
        let start = col(op.invoked_at.as_micros());
        let label = match (&op.result, op.kind) {
            (Some(r), OpKind::Read) => match r.read_value() {
                Some(v) => format!("R→{v}"),
                None => "R!".to_string(),
            },
            (Some(_), OpKind::Write) => format!(
                "W({})",
                op.operation
                    .write_value()
                    .map(|v| v.to_string())
                    .unwrap_or_default()
            ),
            (None, OpKind::Write) => format!(
                "W({})…",
                op.operation
                    .write_value()
                    .map(|v| v.to_string())
                    .unwrap_or_default()
            ),
            (None, OpKind::Read) => "R…".to_string(),
        };
        lane[start.min(width - 1)] = '[';
        let mut cursor = start + 1;
        for ch in label.chars() {
            if cursor >= width {
                break;
            }
            lane[cursor] = ch;
            cursor += 1;
        }
        if let Some(done) = op.completed_at {
            let end = col(done.as_micros()).max(cursor);
            if end < width {
                lane[end] = ']';
            }
        }
    }

    // Crashes and recoveries (drawn after ops so they stay visible).
    for (t, pid, is_crash) in trace.lifecycle_marks() {
        let lane = &mut lanes[pid.index()];
        let c = col(t).min(width - 1);
        lane[c] = if is_crash { '✗' } else { '↻' };
    }

    let mut out = String::new();
    out.push_str(&format!(
        "t[µs]  0 {} {}\n",
        ".".repeat(width.saturating_sub(20)),
        end_time
    ));
    for (i, lane) in lanes.iter().enumerate() {
        out.push_str(&format!("{:<4} ", ProcessId(i as u16).to_string()));
        out.extend(lane.iter());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::VirtualTime;
    use rmem_types::{Op, OpId, OpResult, Value};

    #[test]
    fn renders_ops_crashes_and_recoveries() {
        let mut trace = Trace::new();
        let w1 = OpId::new(ProcessId(0), 0);
        trace.record_invoke(VirtualTime(1_000), w1, Op::Write(Value::from_u32(1)));
        trace.record_complete(VirtualTime(2_000), w1, OpResult::Written);
        let w2 = OpId::new(ProcessId(0), 1);
        trace.record_invoke(VirtualTime(10_000), w2, Op::Write(Value::from_u32(2)));
        trace.record_crash(VirtualTime(11_000), ProcessId(0));
        trace.record_recover(VirtualTime(15_000), ProcessId(0));
        let r = OpId::new(ProcessId(1), 0);
        trace.record_invoke(VirtualTime(20_000), r, Op::Read);
        trace.record_complete(
            VirtualTime(21_000),
            r,
            OpResult::ReadValue(Value::from_u32(1)),
        );

        let art = render_timeline(&trace, 2, 80);
        assert!(art.contains("p0"), "{art}");
        assert!(art.contains("p1"));
        assert!(art.contains("W(1)"));
        // The crash mark may overwrite part of the pending label (marks
        // draw last), but the trailing ellipsis must survive.
        assert!(art.contains("W(2"), "{art}");
        assert!(art.contains('…'), "pending write must trail off: {art}");
        assert!(art.contains('✗'));
        assert!(art.contains('↻'));
        assert!(art.contains("R→1"));
        // Three lines: axis + two lanes.
        assert_eq!(art.lines().count(), 3);
    }

    #[test]
    fn empty_trace_renders_axis_only_lanes() {
        let trace = Trace::new();
        let art = render_timeline(&trace, 3, 50);
        assert_eq!(art.lines().count(), 4);
        assert!(art.lines().nth(1).unwrap().starts_with("p0"));
    }
}
