//! Simulation configuration: cluster size, network model, disk model.

use rmem_types::Micros;

/// Network latency/loss model.
///
/// One-way message delay is `base_delay + U(0, jitter) + len/bandwidth`.
/// The defaults calibrate to the paper's testbed (§I-B, §V): a 100 Mbps
/// LAN with ≈0.1 ms one-way transit. Loss and duplication probabilities
/// model the fair-lossy channel; they must be < 1 for fair-lossiness to
/// hold.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Fixed one-way delay component (paper: ≈100 µs).
    pub base_delay: Micros,
    /// Uniform jitter added on top (0 ⇒ fully deterministic delays).
    pub jitter: Micros,
    /// Nanoseconds per payload byte (100 Mbps ≈ 80 ns/byte).
    pub ns_per_byte: u64,
    /// Probability an individual message is dropped.
    pub drop_prob: f64,
    /// Probability an individual message is delivered twice.
    pub duplicate_prob: f64,
    /// Delay applied to self-addressed messages (loopback; near zero).
    pub self_delay: Micros,
    /// Sender-side serialization cost per message: the k-th message sent
    /// while handling one event departs `k × serialize_per_msg` later
    /// (models the NIC/UDP stack draining a broadcast sequentially — the
    /// reason the paper's write latency grows mildly with the cluster
    /// size in Fig. 6 top).
    pub serialize_per_msg: Micros,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            base_delay: Micros(100),
            jitter: Micros(0),
            ns_per_byte: 80,
            drop_prob: 0.0,
            duplicate_prob: 0.0,
            self_delay: Micros(1),
            serialize_per_msg: Micros(5),
        }
    }
}

impl NetConfig {
    /// A lossy variant of the default LAN (for fault-injection tests).
    pub fn lossy(drop_prob: f64, duplicate_prob: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&drop_prob),
            "drop_prob must be in [0,1)"
        );
        assert!(
            (0.0..1.0).contains(&duplicate_prob),
            "duplicate_prob must be in [0,1)"
        );
        NetConfig {
            drop_prob,
            duplicate_prob,
            jitter: Micros(50),
            ..NetConfig::default()
        }
    }
}

/// Stable-storage latency model.
///
/// A synchronous log takes `base_latency + len/byte rate`. The paper
/// reports logging a single byte at ≈2× the one-way message delay (§I-A),
/// i.e. ≈200 µs on its IDE disks; that is the default.
///
/// With [`coalesce`](DiskConfig::coalesce) the disk models **group
/// commit** (the real runtime's syncer): one fsync runs at a time, and
/// every store issued while it is in flight joins the *next* fsync —
/// they all complete at the same instant, one `base_latency` after the
/// in-flight commit finishes. This is what lets the deterministic
/// engine explore delayed-durability interleavings (an ack racing ahead
/// of a slow store on another node) reproducibly.
#[derive(Debug, Clone)]
pub struct DiskConfig {
    /// Fixed per-store latency (paper: ≈200 µs).
    pub base_latency: Micros,
    /// Uniform jitter added on top.
    pub jitter: Micros,
    /// Nanoseconds per stored byte (≈30 MB/s sequential IDE ≈ 33 ns/byte).
    pub ns_per_byte: u64,
    /// Model a single-headed group-committing disk instead of unlimited
    /// parallel stores: concurrent stores at one process serialize into
    /// commits and share fsyncs (see the type docs).
    pub coalesce: bool,
}

impl Default for DiskConfig {
    fn default() -> Self {
        DiskConfig {
            base_latency: Micros(200),
            jitter: Micros(0),
            ns_per_byte: 33,
            coalesce: false,
        }
    }
}

impl DiskConfig {
    /// A group-committing disk with the given per-commit latency (the
    /// sim analogue of the runner's syncer over a WAL).
    pub fn coalescing(base_latency: Micros) -> Self {
        DiskConfig {
            base_latency,
            coalesce: true,
            ..DiskConfig::default()
        }
    }
}

/// Top-level simulation parameters.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of processes.
    pub n: usize,
    /// Network model.
    pub net: NetConfig,
    /// Disk model.
    pub disk: DiskConfig,
    /// Per-process disk overrides (index = process id): `Some` replaces
    /// [`disk`](ClusterConfig::disk) for that process, so one node can
    /// run a slow or group-committing disk while the rest stay on the
    /// default — the shape of the delayed-durability races the ISSUE's
    /// suite explores.
    pub disk_overrides: Vec<Option<DiskConfig>>,
    /// Hard stop: no event later than this is processed (guards against
    /// livelock when a majority is permanently down).
    pub max_time: super::VirtualTime,
    /// Hard stop on the number of processed events.
    pub max_events: u64,
    /// Retransmission period automata are told to use.
    pub retransmit_after: Micros,
}

impl ClusterConfig {
    /// A cluster of `n` processes with default LAN/disk models.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "cluster must have at least one process");
        ClusterConfig {
            n,
            net: NetConfig::default(),
            disk: DiskConfig::default(),
            disk_overrides: vec![None; n],
            max_time: super::VirtualTime(60_000_000), // one virtual minute
            max_events: 50_000_000,
            retransmit_after: Micros(2_000),
        }
    }

    /// Replaces the network model.
    pub fn with_net(mut self, net: NetConfig) -> Self {
        self.net = net;
        self
    }

    /// Replaces the disk model.
    pub fn with_disk(mut self, disk: DiskConfig) -> Self {
        self.disk = disk;
        self
    }

    /// Gives process `pid` its own disk model (see
    /// [`disk_overrides`](ClusterConfig::disk_overrides)).
    ///
    /// # Panics
    ///
    /// Panics if `pid` is out of range.
    pub fn with_disk_at(mut self, pid: usize, disk: DiskConfig) -> Self {
        self.disk_overrides[pid] = Some(disk);
        self
    }

    /// The disk model process `pid` runs (its override or the default).
    pub fn disk_of(&self, pid: usize) -> &DiskConfig {
        self.disk_overrides
            .get(pid)
            .and_then(Option::as_ref)
            .unwrap_or(&self.disk)
    }

    /// Replaces the time limit.
    pub fn with_max_time(mut self, max_time: super::VirtualTime) -> Self {
        self.max_time = max_time;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_constants() {
        let c = ClusterConfig::new(5);
        assert_eq!(c.net.base_delay, Micros(100));
        assert_eq!(c.disk.base_latency, Micros(200));
        assert_eq!(c.n, 5);
    }

    #[test]
    fn builder_methods_replace_fields() {
        let c = ClusterConfig::new(3)
            .with_net(NetConfig::lossy(0.1, 0.05))
            .with_disk(DiskConfig {
                base_latency: Micros(500),
                jitter: Micros(0),
                ns_per_byte: 0,
                coalesce: false,
            })
            .with_max_time(crate::VirtualTime(1_000));
        assert_eq!(c.net.drop_prob, 0.1);
        assert_eq!(c.disk.base_latency, Micros(500));
        assert_eq!(c.max_time, crate::VirtualTime(1_000));
    }

    #[test]
    #[should_panic(expected = "at least one process")]
    fn zero_processes_panics() {
        let _ = ClusterConfig::new(0);
    }

    #[test]
    fn disk_overrides_replace_only_their_process() {
        let slow = DiskConfig {
            base_latency: Micros(5_000),
            ..DiskConfig::default()
        };
        let c = ClusterConfig::new(3).with_disk_at(1, slow);
        assert_eq!(c.disk_of(0).base_latency, Micros(200));
        assert_eq!(c.disk_of(1).base_latency, Micros(5_000));
        assert_eq!(c.disk_of(2).base_latency, Micros(200));
    }

    #[test]
    fn coalescing_constructor_sets_the_flag() {
        let d = DiskConfig::coalescing(Micros(300));
        assert!(d.coalesce);
        assert_eq!(d.base_latency, Micros(300));
    }

    #[test]
    #[should_panic(expected = "drop_prob")]
    fn certain_loss_is_rejected() {
        let _ = NetConfig::lossy(1.0, 0.0);
    }
}
