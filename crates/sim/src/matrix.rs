//! The **chaos matrix**: a seeded generator of combined fault plans —
//! node kill/recover windows, torn-WAL-tail recoveries, and client
//! crashes pinned to a write phase.
//!
//! The robustness suites all need the same adversary: "everything at
//! once, reproducibly". This module generates that adversary as *pure
//! data* ([`ChaosPlan`]), independent of any runtime, so one plan drives
//! both worlds:
//!
//! * the discrete-event simulator, via [`ChaosPlan::schedule`] (windows
//!   lower to [`PlannedEvent::Crash`]/[`PlannedEvent::Recover`]);
//! * the real-threaded cluster (`rmem-net`'s `FaultSchedule`, lowered by
//!   `rmem-kv`'s chaos harness), where torn tails and client write-phase
//!   crashes have physical meaning.
//!
//! Plans are majority-safe by construction: windows live in disjoint
//! time slots and each slot downs at most
//! [`MatrixSpec::max_concurrent_down`] processes, which is asserted to
//! leave a majority up — so every generated plan keeps the register
//! emulations live and *certifiable*, and a certification failure under
//! a plan is a real bug, not an availability artifact.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rmem_types::{Micros, ProcessId};

use crate::workload::{PlannedEvent, Schedule};

/// The write phase a planned client crash interrupts (mirrors the store
/// layer's crash points: nothing sent yet / rounds in flight / acked but
/// not yet tombstoned).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WritePhase {
    /// After the intent is journaled, before the first datagram.
    PreSend,
    /// While the write's quorum rounds are in flight.
    MidRound,
    /// After the quorum ack, before the client-side acknowledgment.
    PostQuorum,
}

impl WritePhase {
    /// All phases, in lifecycle order — plans cycle through these so
    /// every phase is covered whenever at least three client crashes are
    /// requested.
    pub const ALL: [WritePhase; 3] = [
        WritePhase::PreSend,
        WritePhase::MidRound,
        WritePhase::PostQuorum,
    ];
}

/// One node kill/recover window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultWindow {
    /// The process to kill.
    pub pid: ProcessId,
    /// Kill time (virtual µs from the run's start).
    pub start: Micros,
    /// How long the process stays down.
    pub down_for: Micros,
    /// Whether the recovery should find a torn write-ahead-log tail
    /// (garbage appended to the newest segment while the node is down).
    /// Runtimes whose disk for `pid` has no WAL treat this as a plain
    /// window.
    pub torn_tail: bool,
}

/// One planned client crash.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClientCrash {
    /// Which client (an opaque id the harness maps onto its clients).
    pub client: u16,
    /// When to crash it (virtual µs from the run's start).
    pub at: Micros,
    /// The write phase the crash interrupts.
    pub phase: WritePhase,
}

/// Specification of a seeded chaos plan.
#[derive(Debug, Clone)]
pub struct MatrixSpec {
    /// Seed for all randomness (same seed ⇒ same plan).
    pub seed: u64,
    /// Total processes; windows target `0..processes`.
    pub processes: usize,
    /// Kill/recover windows to plan (one time slot each).
    pub windows: usize,
    /// Max processes down at once. Must leave a majority up:
    /// `max_concurrent_down ≤ (processes - 1) / 2`.
    pub max_concurrent_down: usize,
    /// Fraction of windows whose recovery is from a torn WAL tail.
    pub torn_fraction: f64,
    /// Client crashes to plan.
    pub client_crashes: usize,
    /// Client-id universe for crashes (`0..clients`).
    pub clients: u16,
    /// Plan horizon (virtual µs); windows and crashes all land inside.
    pub horizon: Micros,
}

impl Default for MatrixSpec {
    fn default() -> Self {
        MatrixSpec {
            seed: 0,
            processes: 50,
            windows: 6,
            max_concurrent_down: 3,
            torn_fraction: 0.5,
            client_crashes: 6,
            clients: 6,
            horizon: Micros(3_000_000),
        }
    }
}

/// A generated, reproducible combined fault plan (see the [module
/// docs](self)).
#[derive(Debug, Clone)]
pub struct ChaosPlan {
    /// The generating seed (for labelling runs).
    pub seed: u64,
    /// Node kill/recover windows, in start order.
    pub windows: Vec<FaultWindow>,
    /// Client crashes, in time order.
    pub client_crashes: Vec<ClientCrash>,
}

impl ChaosPlan {
    /// Generates the plan for `spec`.
    ///
    /// # Panics
    ///
    /// Panics if the spec cannot keep a majority up
    /// (`max_concurrent_down > (processes - 1) / 2`) or has no processes.
    pub fn generate(spec: &MatrixSpec) -> ChaosPlan {
        assert!(spec.processes > 0, "a plan needs processes to fault");
        assert!(
            spec.max_concurrent_down <= (spec.processes - 1) / 2,
            "downing {} of {} processes would lose the majority",
            spec.max_concurrent_down,
            spec.processes
        );
        let mut rng = StdRng::seed_from_u64(spec.seed);
        let mut windows = Vec::new();
        if spec.windows > 0 && spec.max_concurrent_down > 0 {
            // One disjoint time slot per requested window: concurrency
            // inside a slot is bounded by max_concurrent_down, and
            // nothing crosses a slot border — majority-safe by
            // construction.
            let slot = spec.horizon.0 / spec.windows as u64;
            for w in 0..spec.windows {
                let slot_start = w as u64 * slot;
                let downed = rng.gen_range(1..=spec.max_concurrent_down);
                let mut pids: Vec<usize> = Vec::new();
                while pids.len() < downed {
                    let pid = rng.gen_range(0..spec.processes);
                    if !pids.contains(&pid) {
                        pids.push(pid);
                    }
                }
                for pid in pids {
                    let start = slot_start + rng.gen_range(0..slot / 4 + 1);
                    let down_for = rng.gen_range(slot / 4..slot / 2 + 1);
                    windows.push(FaultWindow {
                        pid: ProcessId(pid as u16),
                        start: Micros(start),
                        down_for: Micros(down_for),
                        torn_tail: rng.gen_bool(spec.torn_fraction),
                    });
                }
            }
        }
        windows.sort_by_key(|w| w.start);
        let mut client_crashes = Vec::new();
        for i in 0..spec.client_crashes {
            client_crashes.push(ClientCrash {
                client: rng.gen_range(0..spec.clients.max(1)),
                at: Micros(rng.gen_range(0..spec.horizon.0)),
                // Cycle the phases so all three are exercised whenever
                // three or more crashes are planned.
                phase: WritePhase::ALL[i % WritePhase::ALL.len()],
            });
        }
        client_crashes.sort_by_key(|c| c.at);
        ChaosPlan {
            seed: spec.seed,
            windows,
            client_crashes,
        }
    }

    /// The most processes ever down at one instant (a sanity readout for
    /// tests asserting majority-safety).
    pub fn peak_down(&self) -> usize {
        let mut edges: Vec<(u64, i64)> = Vec::new();
        for w in &self.windows {
            edges.push((w.start.0, 1));
            edges.push((w.start.0 + w.down_for.0, -1));
        }
        edges.sort();
        let mut down = 0i64;
        let mut peak = 0i64;
        for (_, delta) in edges {
            down += delta;
            peak = peak.max(down);
        }
        peak as usize
    }

    /// Lowers the node windows to a discrete-event [`Schedule`]
    /// (`Crash`/`Recover` pairs). Torn tails and write-phase client
    /// crashes have no simulator analogue — the simulator's stable
    /// storage never tears, and its clients are processes — so they are
    /// the real-runtime harness's to apply.
    pub fn schedule(&self) -> Schedule {
        let mut schedule = Schedule::new();
        for w in &self.windows {
            schedule = schedule
                .at(w.start.0, PlannedEvent::Crash(w.pid))
                .at(w.start.0 + w.down_for.0, PlannedEvent::Recover(w.pid));
        }
        schedule
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_plan() {
        let spec = MatrixSpec::default();
        let a = ChaosPlan::generate(&spec);
        let b = ChaosPlan::generate(&spec);
        assert_eq!(a.windows, b.windows);
        assert_eq!(a.client_crashes, b.client_crashes);
    }

    #[test]
    fn different_seeds_differ() {
        let a = ChaosPlan::generate(&MatrixSpec::default());
        let b = ChaosPlan::generate(&MatrixSpec {
            seed: 1,
            ..MatrixSpec::default()
        });
        assert_ne!(a.windows, b.windows);
    }

    #[test]
    fn plans_preserve_a_majority() {
        for seed in 0..20 {
            let spec = MatrixSpec {
                seed,
                processes: 9,
                windows: 8,
                max_concurrent_down: 4,
                ..MatrixSpec::default()
            };
            let plan = ChaosPlan::generate(&spec);
            assert!(
                plan.peak_down() <= 4,
                "seed {seed}: peak {}",
                plan.peak_down()
            );
        }
    }

    #[test]
    fn phases_all_covered_and_events_inside_horizon() {
        let spec = MatrixSpec {
            client_crashes: 7,
            ..MatrixSpec::default()
        };
        let plan = ChaosPlan::generate(&spec);
        for phase in WritePhase::ALL {
            assert!(
                plan.client_crashes.iter().any(|c| c.phase == phase),
                "{phase:?} must be exercised"
            );
        }
        for w in &plan.windows {
            assert!(w.start.0 + w.down_for.0 <= spec.horizon.0 + spec.horizon.0 / 2);
        }
        for c in &plan.client_crashes {
            assert!(c.at.0 < spec.horizon.0);
        }
    }

    #[test]
    fn majority_violating_spec_is_refused() {
        let spec = MatrixSpec {
            processes: 5,
            max_concurrent_down: 3,
            ..MatrixSpec::default()
        };
        assert!(std::panic::catch_unwind(|| ChaosPlan::generate(&spec)).is_err());
    }

    #[test]
    fn schedule_lowering_pairs_crash_with_recover() {
        let plan = ChaosPlan::generate(&MatrixSpec::default());
        let schedule = plan.schedule();
        let crashes = schedule
            .entries()
            .iter()
            .filter(|(_, e)| matches!(e, PlannedEvent::Crash(_)))
            .count();
        let recovers = schedule
            .entries()
            .iter()
            .filter(|(_, e)| matches!(e, PlannedEvent::Recover(_)))
            .count();
        assert_eq!(crashes, recovers);
        assert_eq!(crashes, plan.windows.len());
    }
}
