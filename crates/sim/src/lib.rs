//! Deterministic discrete-event simulator for the crash-recovery model.
//!
//! The paper evaluates its emulations on nine LAN workstations; this crate
//! is the corresponding *simulated* testbed, and more: because time,
//! message delays, log latencies, message loss and crashes are all under
//! the control of a seeded scheduler, it can
//!
//! * reproduce the paper's latency experiments exactly (δ ≈ 100 µs one-way
//!   network delay, λ ≈ 200 µs synchronous log — §I-B/§V-B), measured in
//!   *virtual* time with zero noise;
//! * inject crashes between any two events — including mid-operation, the
//!   situation the whole paper is about — and recover processes from their
//!   surviving [`MemStorage`](rmem_storage::MemStorage);
//! * record complete operation [histories](rmem_consistency::History) so
//!   the atomicity checkers can certify every run;
//! * count **causal logs** per operation by tracking store→send causality
//!   through the event graph (see [`trace`]), turning the paper's central
//!   complexity metric into a measured quantity.
//!
//! The simulated network is *fair-lossy* (§II): it may drop or duplicate
//! any message (configurably), but a message sent infinitely often to a
//! correct process is delivered infinitely often — which holds because
//! drops are independent coin flips with probability < 1 and the automata
//! retransmit.
//!
//! # Example
//!
//! ```
//! use rmem_sim::{ClusterConfig, Simulation};
//! use rmem_types::{Action, Automaton, AutomatonFactory, Input, ProcessId, StableSnapshot};
//!
//! // A do-nothing automaton, just to drive the engine.
//! struct Idle;
//! impl Automaton for Idle {
//!     fn on_input(&mut self, _input: Input, _out: &mut Vec<Action>) {}
//!     fn algorithm(&self) -> &'static str { "idle" }
//! }
//! struct IdleFactory;
//! impl AutomatonFactory for IdleFactory {
//!     fn fresh(&self, _me: ProcessId, _n: usize) -> Box<dyn Automaton> { Box::new(Idle) }
//!     fn recover(&self, _me: ProcessId, _n: usize, _inc: u64, _s: &dyn StableSnapshot) -> Box<dyn Automaton> {
//!         Box::new(Idle)
//!     }
//!     fn algorithm(&self) -> &'static str { "idle" }
//! }
//!
//! let mut sim = Simulation::new(ClusterConfig::new(3), std::sync::Arc::new(IdleFactory), 42);
//! let report = sim.run();
//! assert_eq!(report.trace.operations().len(), 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod engine;
pub mod event;
pub mod matrix;
pub mod network;
pub mod render;
pub mod stats;
pub mod time;
pub mod trace;
pub mod workload;

pub use config::{ClusterConfig, DiskConfig, NetConfig};
pub use engine::{SimReport, Simulation};
pub use matrix::{ChaosPlan, ClientCrash, FaultWindow, MatrixSpec, WritePhase};
pub use stats::LatencyStats;
pub use time::VirtualTime;
pub use trace::{OpRecord, Trace};
pub use workload::{KeyDistribution, PlannedEvent, Schedule};
