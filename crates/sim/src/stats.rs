//! Latency statistics over completed operations.

/// Summary statistics of a latency sample, in microseconds.
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyStats {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Minimum.
    pub min: u64,
    /// Maximum.
    pub max: u64,
    /// Median (50th percentile).
    pub p50: u64,
    /// 99th percentile.
    pub p99: u64,
}

impl LatencyStats {
    /// Computes statistics from a sample; returns `None` for an empty one.
    pub fn from_sample(mut sample: Vec<u64>) -> Option<LatencyStats> {
        if sample.is_empty() {
            return None;
        }
        sample.sort_unstable();
        let count = sample.len();
        let sum: u128 = sample.iter().map(|&v| v as u128).sum();
        let pct = |p: f64| -> u64 {
            let rank = ((count as f64 - 1.0) * p).round() as usize;
            sample[rank.min(count - 1)]
        };
        Some(LatencyStats {
            count,
            mean: sum as f64 / count as f64,
            min: sample[0],
            max: sample[count - 1],
            p50: pct(0.50),
            p99: pct(0.99),
        })
    }
}

impl std::fmt::Display for LatencyStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} mean={:.1}µs min={}µs p50={}µs p99={}µs max={}µs",
            self.count, self.mean, self.min, self.p50, self.p99, self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_sample_yields_none() {
        assert_eq!(LatencyStats::from_sample(vec![]), None);
    }

    #[test]
    fn single_sample() {
        let s = LatencyStats::from_sample(vec![42]).unwrap();
        assert_eq!(s.count, 1);
        assert_eq!(s.mean, 42.0);
        assert_eq!(s.min, 42);
        assert_eq!(s.max, 42);
        assert_eq!(s.p50, 42);
        assert_eq!(s.p99, 42);
    }

    #[test]
    fn known_distribution() {
        let s = LatencyStats::from_sample((1..=100).collect()).unwrap();
        assert_eq!(s.count, 100);
        assert_eq!(s.mean, 50.5);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 100);
        assert_eq!(s.p50, 51); // round(99 * 0.5) = 50 → sample[50]
        assert_eq!(s.p99, 99);
    }

    #[test]
    fn unsorted_input_is_handled() {
        let s = LatencyStats::from_sample(vec![30, 10, 20]).unwrap();
        assert_eq!(s.min, 10);
        assert_eq!(s.max, 30);
        assert_eq!(s.p50, 20);
    }

    #[test]
    fn display_is_informative() {
        let s = LatencyStats::from_sample(vec![5, 5, 5]).unwrap();
        assert!(s.to_string().contains("n=3"));
        assert!(s.to_string().contains("mean=5.0µs"));
    }
}
