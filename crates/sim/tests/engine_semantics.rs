//! Direct tests of the simulation engine's semantics, using small
//! purpose-built automatons (no register algorithms involved): crash
//! incarnation guards, partition directionality, quiescence detection,
//! and the causal-chain bookkeeping.

use std::sync::Arc;

use bytes::Bytes;
use rmem_sim::{ClusterConfig, PlannedEvent, Schedule, Simulation, VirtualTime};
use rmem_storage::StableStorage;
use rmem_types::{
    Action, Automaton, AutomatonFactory, Input, Message, Micros, ProcessId, RequestId,
    StableSnapshot, StoreToken, TimerToken,
};

/// An automaton that stores a record on `Start`, and after the store
/// completes sends an `SnReq` to process 1. Used to probe store/crash
/// interleavings and message delivery.
struct StoreThenSend {
    me: ProcessId,
}

impl Automaton for StoreThenSend {
    fn on_input(&mut self, input: Input, out: &mut Vec<Action>) {
        match input {
            Input::Start => {
                out.push(Action::Store {
                    token: StoreToken(1),
                    key: "probe".to_string(),
                    bytes: Bytes::from(vec![self.me.0 as u8]),
                });
            }
            Input::StoreDone(StoreToken(1)) => {
                out.push(Action::Send {
                    to: ProcessId(1),
                    msg: Message::SnReq {
                        req: RequestId::new(self.me, 7),
                    },
                });
            }
            _ => {}
        }
    }

    fn algorithm(&self) -> &'static str {
        "store-then-send"
    }
}

struct StoreThenSendFactory;

impl AutomatonFactory for StoreThenSendFactory {
    fn fresh(&self, me: ProcessId, _n: usize) -> Box<dyn Automaton> {
        Box::new(StoreThenSend { me })
    }

    fn recover(
        &self,
        me: ProcessId,
        _n: usize,
        _incarnation: u64,
        _stable: &dyn StableSnapshot,
    ) -> Box<dyn Automaton> {
        Box::new(StoreThenSend { me })
    }

    fn algorithm(&self) -> &'static str {
        "store-then-send"
    }
}

/// A store that is in flight when the process crashes never becomes
/// durable — and never triggers `StoreDone` for the next incarnation.
#[test]
fn in_flight_stores_die_with_the_crash() {
    // Stores take 200µs (default λ); crash p0 at t=100µs, mid-store.
    let schedule = Schedule::new().at(100, PlannedEvent::Crash(ProcessId(0)));
    let mut sim = Simulation::new(ClusterConfig::new(2), Arc::new(StoreThenSendFactory), 1)
        .with_schedule(schedule);
    let report = sim.run();
    assert_eq!(
        sim.storage(ProcessId(0)).retrieve("probe").unwrap(),
        None,
        "the in-flight store must be lost"
    );
    // p1's store (uninterrupted) landed.
    assert!(sim
        .storage(ProcessId(1))
        .retrieve("probe")
        .unwrap()
        .is_some());
    // p0 never sent its follow-up message (store never completed); p1 did.
    // p1's SnReq went to p1 itself (self-send).
    assert_eq!(report.trace.messages_sent, 1, "only p1's send happens");
}

/// Stores issued before the crash do not complete into the recovered
/// incarnation either (the recovered automaton re-stores on Start, so the
/// final record is the *second* incarnation's).
#[test]
fn recovered_incarnation_gets_no_stale_store_done() {
    let schedule = Schedule::new()
        .at(100, PlannedEvent::Crash(ProcessId(0)))
        .at(150, PlannedEvent::Recover(ProcessId(0)));
    let mut sim = Simulation::new(ClusterConfig::new(2), Arc::new(StoreThenSendFactory), 1)
        .with_schedule(schedule);
    let report = sim.run();
    // The recovered incarnation stored "probe" again on Start at t=150,
    // completing ≈t=350; both processes end with durable probes and each
    // sent exactly one message.
    assert!(sim
        .storage(ProcessId(0))
        .retrieve("probe")
        .unwrap()
        .is_some());
    assert_eq!(report.trace.messages_sent, 2);
}

/// Crashed receivers hear nothing, even for messages already in flight.
#[test]
fn messages_to_crashed_processes_vanish() {
    // p0's send departs ≈t=201 (after its 200µs store) and would arrive
    // at p1 ≈t=301; crash p1 at t=250 while the message is in flight.
    let schedule = Schedule::new().at(250, PlannedEvent::Crash(ProcessId(1)));
    let mut sim = Simulation::new(ClusterConfig::new(2), Arc::new(StoreThenSendFactory), 1)
        .with_schedule(schedule);
    let report = sim.run();
    // Two sends happened (p0→p1, p1→p1-self... p1's self-send at ~t=201
    // arrives ~t=202, before its crash).
    assert_eq!(report.trace.messages_sent, 2);
    assert_eq!(
        report.trace.messages_delivered, 1,
        "p0's message found p1 dead"
    );
}

/// Blocks are directional: blocking p0→p1 leaves p1→p0 intact.
#[test]
fn partitions_are_directional() {
    let schedule = Schedule::new()
        // Block p0's direction before anything is sent.
        .at(10, PlannedEvent::Block(ProcessId(0), ProcessId(1)));
    let mut sim = Simulation::new(ClusterConfig::new(2), Arc::new(StoreThenSendFactory), 1)
        .with_schedule(schedule);
    let report = sim.run();
    // p0's message to p1 dropped; p1's self-send unaffected.
    assert_eq!(report.trace.messages_sent, 2);
    assert_eq!(report.trace.messages_delivered, 1);
    assert_eq!(report.messages_dropped, 1);
}

/// An automaton that perpetually re-arms a timer and never reports ready
/// (like a recovery that cannot finish). The engine must still terminate
/// at `max_time` (the livelock guard) — note that *ready* automatons with
/// only timers pending are treated as quiescent and stopped early instead.
struct TimerLoop;

impl Automaton for TimerLoop {
    fn on_input(&mut self, input: Input, out: &mut Vec<Action>) {
        match input {
            Input::Start | Input::Timer(_) => {
                out.push(Action::SetTimer {
                    token: TimerToken(1),
                    after: Micros(1_000),
                });
            }
            _ => {}
        }
    }

    fn is_ready(&self) -> bool {
        false // a recovery that never completes
    }

    fn algorithm(&self) -> &'static str {
        "timer-loop"
    }
}

struct TimerLoopFactory;

impl AutomatonFactory for TimerLoopFactory {
    fn fresh(&self, _me: ProcessId, _n: usize) -> Box<dyn Automaton> {
        Box::new(TimerLoop)
    }

    fn recover(
        &self,
        _me: ProcessId,
        _n: usize,
        _incarnation: u64,
        _stable: &dyn StableSnapshot,
    ) -> Box<dyn Automaton> {
        Box::new(TimerLoop)
    }

    fn algorithm(&self) -> &'static str {
        "timer-loop"
    }
}

#[test]
fn max_time_stops_perpetual_timers() {
    let config = ClusterConfig::new(1).with_max_time(VirtualTime(50_000));
    let mut sim = Simulation::new(config, Arc::new(TimerLoopFactory), 1);
    let report = sim.run();
    assert!(!report.quiescent, "a never-ready timer loop cannot quiesce");
    assert!(report.final_time <= VirtualTime(50_000));
    // ~50 timer firings.
    assert!(
        (40..=60).contains(&report.events_processed),
        "{}",
        report.events_processed
    );
}

/// The flip side: a *ready*, idle automaton whose only pending events are
/// timers is quiescent — the engine stops instead of chasing
/// retransmission timers forever.
#[test]
fn ready_idle_timers_are_quiescent() {
    struct ReadyTimer;
    impl Automaton for ReadyTimer {
        fn on_input(&mut self, input: Input, out: &mut Vec<Action>) {
            if matches!(input, Input::Start) {
                out.push(Action::SetTimer {
                    token: TimerToken(1),
                    after: Micros(1_000),
                });
            }
        }
        fn algorithm(&self) -> &'static str {
            "ready-timer"
        }
    }
    struct F;
    impl AutomatonFactory for F {
        fn fresh(&self, _me: ProcessId, _n: usize) -> Box<dyn Automaton> {
            Box::new(ReadyTimer)
        }
        fn recover(
            &self,
            _me: ProcessId,
            _n: usize,
            _incarnation: u64,
            _stable: &dyn StableSnapshot,
        ) -> Box<dyn Automaton> {
            Box::new(ReadyTimer)
        }
        fn algorithm(&self) -> &'static str {
            "ready-timer"
        }
    }
    let mut sim = Simulation::new(ClusterConfig::new(2), Arc::new(F), 1);
    let report = sim.run();
    assert!(report.quiescent);
    // The quiescence check runs after each processed event, so exactly one
    // timer fires before the engine notices nothing meaningful remains.
    assert_eq!(
        report.events_processed, 1,
        "stop after the first idle timer"
    );
}

/// Timers set before a crash never fire in the next incarnation.
#[test]
fn timers_die_with_their_incarnation() {
    let config = ClusterConfig::new(1).with_max_time(VirtualTime(10_000));
    // Crash at 500 (timer armed at 0 for t=1000), recover at 600: the
    // recovered incarnation arms its own timer at 600 (fires 1600, 2600…).
    // If the stale timer fired, the recovered one would double-fire and
    // event counts would jump.
    let schedule = Schedule::new()
        .at(500, PlannedEvent::Crash(ProcessId(0)))
        .at(600, PlannedEvent::Recover(ProcessId(0)));
    let mut sim = Simulation::new(config, Arc::new(TimerLoopFactory), 1).with_schedule(schedule);
    let report = sim.run();
    // Events: crash + recover + the *discarded* pop of the stale pre-crash
    // timer (counted but not delivered) + timers at 1600, 2600, …, 9600
    // (9 of them) = 12. Had the stale timer actually fired, it would have
    // re-armed and added a 1000-spaced second train of firings.
    assert_eq!(
        report.events_processed,
        3 + 9,
        "stale timer fired (or one was lost)"
    );
}

/// The engine rejects overlapping invocations per process, keeping
/// histories well-formed without involving the automaton.
#[test]
fn overlapping_invocations_are_refused_by_the_engine() {
    use rmem_core::Persistent;
    use rmem_types::{Op, Value};
    let schedule = Schedule::new()
        .at(
            1_000,
            PlannedEvent::Invoke(ProcessId(0), Op::Write(Value::from_u32(1))),
        )
        // 100µs later the first write is still running (it needs ≈800µs).
        .at(1_100, PlannedEvent::Invoke(ProcessId(0), Op::Read));
    let mut sim =
        Simulation::new(ClusterConfig::new(3), Persistent::factory(), 3).with_schedule(schedule);
    let report = sim.run();
    assert_eq!(
        report.trace.operations().len(),
        1,
        "the overlapping read never started"
    );
    assert_eq!(report.trace.invokes_dropped, 1);
    assert!(report.trace.to_history().well_formed().is_ok());
}

/// The per-register operation table: overlapping invocations on
/// *distinct* registers of a shared memory run concurrently through one
/// process and all complete; each register's restriction of the history
/// stays well-formed and certifies.
#[test]
fn overlapping_invocations_on_distinct_registers_all_complete() {
    use rmem_core::{Persistent, SharedMemory};
    use rmem_types::{Op, RegisterId, Value};
    let mut schedule = Schedule::new();
    for r in 0..4u16 {
        // All four writes start within 40µs — far less than one
        // operation's two quorum round-trips — so they genuinely overlap.
        schedule = schedule.at(
            1_000 + r as u64 * 10,
            PlannedEvent::Invoke(
                ProcessId(0),
                Op::WriteAt(RegisterId(r), Value::from_u32(r as u32 + 1)),
            ),
        );
    }
    let mut sim = Simulation::new(
        ClusterConfig::new(3),
        SharedMemory::factory(Persistent::flavor()),
        5,
    )
    .with_schedule(schedule);
    let report = sim.run();
    assert_eq!(report.trace.invokes_dropped, 0, "no overlap was refused");
    let completed = report
        .trace
        .operations()
        .iter()
        .filter(|o| o.is_completed())
        .count();
    assert_eq!(completed, 4, "every concurrent register op completes");
    let history = report.trace.to_history();
    for (reg, outcome) in
        rmem_consistency::check_per_register(&history, rmem_consistency::Criterion::Persistent)
    {
        outcome.unwrap_or_else(|e| panic!("register {reg} not atomic: {e}"));
    }
}

/// Same-register overlap is still refused (per-register sequentiality).
#[test]
fn overlapping_invocations_on_the_same_register_are_refused() {
    use rmem_core::{Persistent, SharedMemory};
    use rmem_types::{Op, RegisterId, Value};
    let schedule = Schedule::new()
        .at(
            1_000,
            PlannedEvent::Invoke(ProcessId(0), Op::WriteAt(RegisterId(3), Value::from_u32(1))),
        )
        .at(
            1_100,
            PlannedEvent::Invoke(ProcessId(0), Op::ReadAt(RegisterId(3))),
        );
    let mut sim = Simulation::new(
        ClusterConfig::new(3),
        SharedMemory::factory(Persistent::flavor()),
        3,
    )
    .with_schedule(schedule);
    let report = sim.run();
    assert_eq!(report.trace.operations().len(), 1);
    assert_eq!(report.trace.invokes_dropped, 1);
}

/// An automaton probing the group-commit disk model: stores one record
/// on `Start`, then two more from a timer that fires while the first
/// commit is still in flight.
struct BurstStores;

impl Automaton for BurstStores {
    fn on_input(&mut self, input: Input, out: &mut Vec<Action>) {
        match input {
            Input::Start => {
                out.push(Action::Store {
                    token: StoreToken(1),
                    key: "a".to_string(),
                    bytes: Bytes::from_static(b"1"),
                });
                out.push(Action::SetTimer {
                    token: TimerToken(1),
                    after: Micros(100),
                });
            }
            Input::Timer(TimerToken(1)) => {
                for t in [2u64, 3] {
                    out.push(Action::Store {
                        token: StoreToken(t),
                        key: format!("k{t}"),
                        bytes: Bytes::from_static(b"x"),
                    });
                }
            }
            _ => {}
        }
    }

    fn algorithm(&self) -> &'static str {
        "burst-stores"
    }
}

struct BurstStoresFactory;

impl AutomatonFactory for BurstStoresFactory {
    fn fresh(&self, _me: ProcessId, _n: usize) -> Box<dyn Automaton> {
        Box::new(BurstStores)
    }

    fn recover(
        &self,
        _me: ProcessId,
        _n: usize,
        _boots: u64,
        _snapshot: &dyn StableSnapshot,
    ) -> Box<dyn Automaton> {
        Box::new(BurstStores)
    }

    fn algorithm(&self) -> &'static str {
        "burst-stores"
    }
}

/// The coalescing disk model: a store issued while a commit is in flight
/// waits for the disk (next group), and stores issued together share one
/// commit. Exact timeline with λ = 200µs, timer at 100µs:
/// store 1 commits at 200; stores 2 and 3 arrive at 100 mid-commit, form
/// the next group starting at 200, and both complete at 400.
#[test]
fn coalescing_disk_groups_and_serializes_commits() {
    let disk = rmem_sim::DiskConfig {
        base_latency: Micros(200),
        jitter: Micros(0),
        ns_per_byte: 0,
        coalesce: true,
    };
    let mut sim = Simulation::new(
        ClusterConfig::new(1)
            .with_disk(disk)
            .with_max_time(VirtualTime(10_000)),
        Arc::new(BurstStoresFactory),
        1,
    );
    let report = sim.run();
    assert_eq!(report.trace.stores_applied, 3);
    assert_eq!(
        report.trace.stores_coalesced, 1,
        "store 3 joins store 2's pending group"
    );
    assert_eq!(
        report.final_time,
        VirtualTime(400),
        "the grouped commit completes one λ after the first frees the disk"
    );

    // The same run without coalescing: unlimited parallel stores, the
    // timer's stores each pay their own λ from t=100.
    let mut sim = Simulation::new(
        ClusterConfig::new(1).with_max_time(VirtualTime(10_000)),
        Arc::new(BurstStoresFactory),
        1,
    );
    let report = sim.run();
    assert_eq!(report.trace.stores_coalesced, 0);
    assert_eq!(report.final_time, VirtualTime(300));
}

/// Delayed-durability interleavings stay deterministic and correct: one
/// node runs a 25× slower group-committing disk, concurrent writes on
/// distinct registers all complete (acks race ahead of the laggard's
/// stores), certification holds, and the whole run replays identically.
#[test]
fn slow_coalescing_disk_on_one_node_keeps_runs_atomic_and_deterministic() {
    use rmem_core::{Persistent, SharedMemory};
    use rmem_types::{Op, RegisterId, Value};
    let run = || {
        let mut schedule = Schedule::new();
        for r in 0..4u16 {
            schedule = schedule.at(
                1_000 + r as u64 * 10,
                PlannedEvent::Invoke(
                    ProcessId(0),
                    Op::WriteAt(RegisterId(r), Value::from_u32(r as u32 + 1)),
                ),
            );
            schedule = schedule.at(
                9_000 + r as u64 * 10,
                PlannedEvent::Invoke(ProcessId(1), Op::ReadAt(RegisterId(r))),
            );
        }
        let mut sim = Simulation::new(
            ClusterConfig::new(3).with_disk_at(2, rmem_sim::DiskConfig::coalescing(Micros(5_000))),
            SharedMemory::factory(Persistent::flavor()),
            17,
        )
        .with_schedule(schedule);
        let report = sim.run();
        let completed = report
            .trace
            .operations()
            .iter()
            .filter(|o| o.is_completed())
            .count();
        assert_eq!(
            completed, 8,
            "a slow minority disk must not block quorum operations"
        );
        let history = report.trace.to_history();
        for (reg, outcome) in
            rmem_consistency::check_per_register(&history, rmem_consistency::Criterion::Persistent)
        {
            outcome.unwrap_or_else(|e| panic!("register {reg} not atomic: {e}"));
        }
        assert!(
            report.trace.stores_coalesced > 0,
            "the laggard's stores must have shared commits"
        );
        (
            report.events_processed,
            report.trace.stores_applied,
            report.trace.stores_coalesced,
            report.final_time,
        )
    };
    assert_eq!(run(), run(), "same seed, same interleaving, same trace");
}

/// Deterministic tie-breaking: two events at the same instant execute in
/// insertion order, and the whole run replays identically.
#[test]
fn simultaneous_events_replay_identically() {
    let run = || {
        let schedule = Schedule::new()
            .at(100, PlannedEvent::Crash(ProcessId(0)))
            .at(100, PlannedEvent::Crash(ProcessId(1)))
            .at(200, PlannedEvent::Recover(ProcessId(1)))
            .at(200, PlannedEvent::Recover(ProcessId(0)));
        let mut sim = Simulation::new(
            ClusterConfig::new(2).with_max_time(VirtualTime(5_000)),
            Arc::new(StoreThenSendFactory),
            9,
        )
        .with_schedule(schedule);
        let report = sim.run();
        (
            report.events_processed,
            report.trace.messages_sent,
            report.final_time,
        )
    };
    assert_eq!(run(), run());
}

/// Recovery durations are measured for ready-gated automatons and absent
/// for instant ones.
#[test]
fn recovery_durations_are_recorded() {
    use rmem_core::{CrashStop, Transient};
    for (factory, expect_zero) in [(Transient::factory(), false), (CrashStop::factory(), true)] {
        let schedule = Schedule::new()
            .at(1_000, PlannedEvent::Crash(ProcessId(0)))
            .at(2_000, PlannedEvent::Recover(ProcessId(0)));
        let mut sim = Simulation::new(ClusterConfig::new(3), factory, 11).with_schedule(schedule);
        let report = sim.run();
        assert_eq!(report.trace.recovery_durations.len(), 1);
        let d = report.trace.recovery_durations[0];
        if expect_zero {
            assert_eq!(d, 0, "crash-stop recovery is free");
        } else {
            // Transient recovery = one λ-latency log.
            assert!((190..260).contains(&d), "transient recovery ≈ λ, got {d}");
        }
    }
}
