//! The three top-level verdicts: linearizability (crash-stop), persistent
//! atomicity and transient atomicity (crash-recovery).

use rmem_types::OpId;

use crate::history::History;
use crate::intervals::{extract, CompletionRule, IntervalOp};
use crate::linearize::linearize_register;

/// A successful verdict: the history satisfies the criterion, witnessed by
/// a legal sequential order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Verdict {
    /// Operation ids in a witnessing linearization order. Pending
    /// operations the completion dropped do not appear.
    pub witness: Vec<OpId>,
    /// Pending writes the witnessing completion chose to keep.
    pub kept_pending: Vec<OpId>,
}

/// A failed verdict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// The history is not even well-formed (§III-A); the criterion is not
    /// applicable.
    NotWellFormed(crate::history::WellFormedError),
    /// No completion of the history is equivalent to a legal sequential
    /// history preserving precedence.
    NotAtomic {
        /// Which rule failed.
        rule: &'static str,
    },
    /// `check_linearizable` was given a history containing crash or
    /// recovery events.
    CrashEventsPresent,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::NotWellFormed(e) => write!(f, "history not well-formed: {e}"),
            Violation::NotAtomic { rule } => write!(f, "no {rule} completion linearizes"),
            Violation::CrashEventsPresent => {
                write!(f, "linearizability applies to crash-free histories only")
            }
        }
    }
}

impl std::error::Error for Violation {}

fn check_with_rule(history: &History, rule: CompletionRule) -> Result<Verdict, Violation> {
    // Multi-register histories: linearizability is local, so check each
    // register's restriction independently and merge the witnesses (see
    // [`History::restrict_to_register`]). Well-formedness (§III-A) is
    // checked per restriction too: the paper states it for a single
    // object, and the runtimes enforce sequentiality per register (the
    // per-register operation table), so one process may legally have
    // operations on *distinct* registers in flight at once — each
    // register's restriction still sees a sequential process.
    let registers = history.registers();
    if registers.len() > 1 {
        let mut witness = Vec::new();
        let mut kept_pending = Vec::new();
        for reg in registers {
            let sub = history.restrict_to_register(reg);
            let v = check_with_rule(&sub, rule)?;
            witness.extend(v.witness);
            kept_pending.extend(v.kept_pending);
        }
        return Ok(Verdict {
            witness,
            kept_pending,
        });
    }
    history.well_formed().map_err(Violation::NotWellFormed)?;

    let intervals = extract(history, rule);
    let w = intervals.optional_writes.len();
    assert!(
        w < 20,
        "too many pending writes to enumerate completions ({w})"
    );

    // Enumerate keep/drop subsets of pending writes, smallest first: the
    // most common witness keeps nothing.
    for subset in 0u32..(1u32 << w) {
        let mut ops: Vec<IntervalOp> = intervals.fixed.clone();
        let mut kept = Vec::new();
        for (i, pw) in intervals.optional_writes.iter().enumerate() {
            if subset & (1 << i) != 0 {
                ops.push(pw.clone());
                kept.push(pw.op);
            }
        }
        if let Some(witness) = linearize_register(&ops) {
            return Ok(Verdict {
                witness,
                kept_pending: kept,
            });
        }
    }
    Err(Violation::NotAtomic {
        rule: match rule {
            CompletionRule::Persistent => "persistent-atomic",
            CompletionRule::Transient => "transient-atomic",
        },
    })
}

/// Checks **persistent atomicity** (§III-B): some completion — every
/// pending invocation dropped or answered before the same process's next
/// invocation — is equivalent to a legal sequential history preserving
/// precedence.
///
/// # Errors
///
/// Returns [`Violation`] if the history is malformed or no completion
/// linearizes.
pub fn check_persistent(history: &History) -> Result<Verdict, Violation> {
    check_with_rule(history, CompletionRule::Persistent)
}

/// Checks **transient atomicity** (§III-C): as persistent, but pending
/// replies may be postponed to just before the same process's next *write
/// reply* (weak completion).
///
/// # Errors
///
/// Returns [`Violation`] if the history is malformed or no weak completion
/// linearizes.
pub fn check_transient(history: &History) -> Result<Verdict, Violation> {
    check_with_rule(history, CompletionRule::Transient)
}

/// Per-register verdicts for a multi-register history — locality made
/// explicit.
///
/// [`check_persistent`]/[`check_transient`] already exploit locality
/// internally (a multi-register history satisfies the criterion iff every
/// per-register restriction does) but stop at the first violation. Layers
/// that name registers — the `rmem-kv` store maps keys onto registers and
/// wants checker output per *key* — need the full partition: this returns
/// the verdict of every register's restriction, keyed by register.
///
/// An empty map means the history addresses no register at all (vacuously
/// atomic).
pub fn check_per_register(
    history: &History,
    criterion: Criterion,
) -> std::collections::BTreeMap<rmem_types::RegisterId, Result<Verdict, Violation>> {
    let rule = CompletionRule::from(criterion);
    history
        .registers()
        .into_iter()
        .map(|reg| {
            let sub = history.restrict_to_register(reg);
            (reg, check_with_rule(&sub, rule))
        })
        .collect()
}

/// Which crash-recovery criterion to apply (for APIs parametric in the
/// criterion, e.g. [`check_per_register`]).
///
/// This is the caller-facing *name* of a criterion; each maps onto the
/// checker-internal completion rule
/// ([`CompletionRule`](crate::intervals::CompletionRule)) implementing it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Criterion {
    /// Persistent atomicity (§III-B).
    Persistent,
    /// Transient atomicity (§III-C).
    Transient,
}

impl Criterion {
    /// Human-readable criterion name.
    pub fn name(self) -> &'static str {
        match self {
            Criterion::Persistent => "persistent atomicity",
            Criterion::Transient => "transient atomicity",
        }
    }
}

impl From<Criterion> for CompletionRule {
    fn from(criterion: Criterion) -> CompletionRule {
        match criterion {
            Criterion::Persistent => CompletionRule::Persistent,
            Criterion::Transient => CompletionRule::Transient,
        }
    }
}

/// Checks plain linearizability for a crash-free history (the crash-stop
/// baseline's criterion).
///
/// # Errors
///
/// Returns [`Violation::CrashEventsPresent`] if the history contains crash
/// or recovery events, otherwise as [`check_persistent`].
pub fn check_linearizable(history: &History) -> Result<Verdict, Violation> {
    if history.crash_count() > 0
        || history
            .events()
            .iter()
            .any(|e| matches!(e, crate::history::Event::Recover { .. }))
    {
        return Err(Violation::CrashEventsPresent);
    }
    check_with_rule(history, CompletionRule::Persistent)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmem_types::{Op, OpResult, ProcessId, Value};

    fn p(i: u16) -> ProcessId {
        ProcessId(i)
    }

    fn v(x: u32) -> Value {
        Value::from_u32(x)
    }

    #[test]
    fn empty_history_satisfies_everything() {
        let h = History::new();
        assert!(check_persistent(&h).is_ok());
        assert!(check_transient(&h).is_ok());
        assert!(check_linearizable(&h).is_ok());
    }

    #[test]
    fn sequential_run_satisfies_everything() {
        let mut h = History::new();
        h.complete_write(p(0), v(1));
        h.complete_read(p(1), v(1));
        h.complete_write(p(0), v(2));
        h.complete_read(p(1), v(2));
        assert!(check_persistent(&h).is_ok());
        assert!(check_transient(&h).is_ok());
        assert!(check_linearizable(&h).is_ok());
    }

    #[test]
    fn linearizable_rejects_crashy_histories() {
        let mut h = History::new();
        h.crash(p(0));
        assert_eq!(check_linearizable(&h), Err(Violation::CrashEventsPresent));
    }

    /// Paper Fig. 1 (right): persistent-atomic run. Reads around the
    /// crashed write return v1 then v2 — the unfinished W(v2) is completed
    /// before the next invocation.
    #[test]
    fn fig1_persistent_run_passes_persistent() {
        let mut h = History::new();
        h.complete_write(p(1), v(1));
        let _w2 = h.invoke(p(1), Op::Write(v(2)));
        h.crash(p(1));
        let r1 = h.invoke(p(2), Op::Read);
        h.reply(r1, OpResult::ReadValue(v(2)));
        h.recover(p(1));
        let w3 = h.invoke(p(1), Op::Write(v(3)));
        let r2 = h.invoke(p(2), Op::Read);
        h.reply(r2, OpResult::ReadValue(v(3)));
        h.reply(w3, OpResult::Written);
        assert!(check_persistent(&h).is_ok());
        assert!(check_transient(&h).is_ok(), "persistent ⇒ transient");
    }

    /// Paper Fig. 1 (left): the transient-atomic run with the overlapping
    /// write: after recovery, during W(v3), a read still returns v1 (so
    /// W(v2) has not taken effect), and a later read returns v2?? — no:
    /// the figure shows R()→v1 then R()→v2 while W(v3) is in progress.
    /// Persistent atomicity forbids this (v2's write must land before
    /// W(v3) begins); transient atomicity allows it (W(v2)'s reply may be
    /// postponed into W(v3)'s interval).
    #[test]
    fn fig1_transient_run_passes_transient_but_not_persistent() {
        let mut h = History::new();
        h.complete_write(p(1), v(1)); // events 0,1
        let _w2 = h.invoke(p(1), Op::Write(v(2))); // 2 (pending)
        h.crash(p(1)); // 3
        h.recover(p(1)); // 4
        let w3 = h.invoke(p(1), Op::Write(v(3))); // 5
        let r1 = h.invoke(p(2), Op::Read); // 6
        h.reply(r1, OpResult::ReadValue(v(1))); // 7
        let r2 = h.invoke(p(2), Op::Read); // 8
        h.reply(r2, OpResult::ReadValue(v(2))); // 9
        h.reply(w3, OpResult::Written); // 10
                                        // Transient: W(v2) may linearize between the two reads (its reply
                                        // bound is W(v3)'s reply at event 10).
        let verdict = check_transient(&h).expect("transient must accept");
        assert_eq!(verdict.kept_pending.len(), 1);
        // Persistent: W(v2) must complete before event 5 — before both
        // reads — so R1 returning v1 is a new-old inversion.
        assert!(matches!(
            check_persistent(&h),
            Err(Violation::NotAtomic { .. })
        ));
    }

    /// Dropping an unread pending write must be allowed: a crashed write
    /// nobody observed simply vanishes.
    #[test]
    fn unobserved_pending_write_is_droppable() {
        let mut h = History::new();
        h.complete_write(p(0), v(1));
        let _w2 = h.invoke(p(0), Op::Write(v(2)));
        h.crash(p(0));
        h.recover(p(0));
        let r = h.invoke(p(0), Op::Read);
        h.reply(r, OpResult::ReadValue(v(1)));
        let verdict = check_persistent(&h).expect("must accept");
        assert!(verdict.kept_pending.is_empty());
    }

    /// A pending write that *was* read must be kept — and once read, a
    /// reversion to the older value is a violation in both criteria.
    #[test]
    fn observed_pending_write_cannot_revert() {
        let mut h = History::new();
        h.complete_write(p(0), v(1));
        let _w2 = h.invoke(p(0), Op::Write(v(2)));
        h.crash(p(0));
        let r1 = h.invoke(p(1), Op::Read);
        h.reply(r1, OpResult::ReadValue(v(2)));
        let r2 = h.invoke(p(1), Op::Read);
        h.reply(r2, OpResult::ReadValue(v(1)));
        assert!(check_persistent(&h).is_err());
        assert!(check_transient(&h).is_err());
    }

    /// Forgotten-value anomaly (§I-C issue 1): a completed write must
    /// never be lost, even if every process crashes.
    #[test]
    fn forgotten_value_is_a_violation() {
        let mut h = History::new();
        h.complete_write(p(0), v(1));
        for i in 0..3 {
            h.crash(p(i));
        }
        for i in 0..3 {
            h.recover(p(i));
        }
        let r = h.invoke(p(1), Op::Read);
        h.reply(r, OpResult::ReadValue(Value::bottom()));
        assert!(check_persistent(&h).is_err());
        assert!(check_transient(&h).is_err());
    }

    /// Confused-values anomaly (§I-C issue 2): two reads returning the two
    /// different values in an order violating precedence.
    #[test]
    fn confused_values_is_a_violation_everywhere() {
        let mut h = History::new();
        h.complete_write(p(0), v(1));
        h.complete_write(p(0), v(2));
        let r1 = h.invoke(p(1), Op::Read);
        h.reply(r1, OpResult::ReadValue(v(2)));
        let r2 = h.invoke(p(1), Op::Read);
        h.reply(r2, OpResult::ReadValue(v(1)));
        assert!(check_persistent(&h).is_err());
        assert!(check_transient(&h).is_err());
    }

    /// Run ρ4 of Theorem 2 (Fig. 3): reader reads v2, crashes, recovers,
    /// reads v1 — new-old inversion across the reader's crash. Both
    /// criteria must reject it (this is the run a log-free read cannot
    /// avoid).
    #[test]
    fn rho4_reader_inversion_is_rejected() {
        let mut h = History::new();
        h.complete_write(p(1), v(1));
        let w2 = h.invoke(p(1), Op::Write(v(2)));
        let r1 = h.invoke(p(2), Op::Read);
        h.reply(r1, OpResult::ReadValue(v(2)));
        h.crash(p(2));
        h.recover(p(2));
        let r2 = h.invoke(p(2), Op::Read);
        h.reply(r2, OpResult::ReadValue(v(1)));
        h.reply(w2, OpResult::Written);
        assert!(check_persistent(&h).is_err());
        assert!(check_transient(&h).is_err());
    }

    /// Runs ρ2/ρ3 individually are fine — it is only their fusion ρ4 that
    /// violates atomicity.
    #[test]
    fn rho2_and_rho3_are_individually_atomic() {
        // ρ2: reader crashes, recovers, reads v1 (write W(v2) still in
        // flight — reading the old value is allowed).
        let mut h2 = History::new();
        h2.complete_write(p(1), v(1));
        let w2 = h2.invoke(p(1), Op::Write(v(2)));
        h2.crash(p(2));
        h2.recover(p(2));
        let r = h2.invoke(p(2), Op::Read);
        h2.reply(r, OpResult::ReadValue(v(1)));
        h2.reply(w2, OpResult::Written);
        assert!(check_persistent(&h2).is_ok());

        // ρ3: reader reads v2 before crashing.
        let mut h3 = History::new();
        h3.complete_write(p(1), v(1));
        let w2 = h3.invoke(p(1), Op::Write(v(2)));
        let r = h3.invoke(p(2), Op::Read);
        h3.reply(r, OpResult::ReadValue(v(2)));
        h3.crash(p(2));
        h3.recover(p(2));
        h3.reply(w2, OpResult::Written);
        assert!(check_persistent(&h3).is_ok());
    }

    /// Malformed histories are reported as such, not as atomicity
    /// violations.
    #[test]
    fn malformed_history_is_flagged() {
        let mut h = History::new();
        h.reply(rmem_types::OpId::new(p(0), 3), OpResult::Written);
        assert!(matches!(
            check_persistent(&h),
            Err(Violation::NotWellFormed(_))
        ));
    }

    /// Rejected invocations are ignored by the checkers.
    #[test]
    fn rejected_invocations_do_not_affect_verdicts() {
        let mut h = History::new();
        h.complete_write(p(0), v(1));
        let r = h.invoke(p(0), Op::Read);
        h.reply(r, OpResult::Rejected(rmem_types::RejectReason::Busy));
        h.complete_read(p(1), v(1));
        assert!(check_persistent(&h).is_ok());
    }
}
