//! The **exactly-once criterion**: no logical write is ever applied with
//! two different effects.
//!
//! Detectable client recovery (see `rmem_kv`'s `KvClient::resolve`) lets
//! a crashed client re-issue an unresolved write **under the same
//! operation tag**. The register layer then legitimately carries several
//! *physical* writes for one *logical* operation — the original attempt
//! and its retries — and atomicity alone cannot tell a benign retry from
//! a corrupted one (a retry that re-used a tag for different content
//! would silently fork the logical write).
//!
//! [`check_exactly_once`] closes that gap: it scans every write
//! invocation of a history, extracts each one's logical identity and
//! *effect* through a caller-supplied closure (the store layer decodes
//! its payload codec there — this crate stays payload-agnostic), and
//! demands that **all physical writes sharing a tag have identical
//! effects**. Under that invariant duplicate applications are
//! observationally a re-write of the same value, so the history remains
//! certifiable by the ordinary atomicity checkers, and every retry
//! counts as the *same* logical write — applied exactly once as far as
//! any reader can tell.
//!
//! Pending (crashed) writes are held to the same rule: even an attempt
//! that never landed must carry its tag's one true effect, otherwise a
//! later recovery could land the fork.

use std::collections::BTreeMap;
use std::fmt;

use rmem_types::Op;

use crate::history::{Event, History};

/// Statistics of a passing [`check_exactly_once`] run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExactlyOnceReport {
    /// Physical write invocations carrying a tag.
    pub tagged_writes: u64,
    /// Distinct logical operations (distinct tags).
    pub logical_ops: u64,
    /// Extra physical writes beyond the first per tag — the retries a
    /// recovery re-issued (or a duplicate delivery repeated).
    pub retries: u64,
}

/// A logical write applied with two different effects: the tag `tag` was
/// carried by physical writes whose extracted effects differ.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DuplicateApplication<T> {
    /// The forked logical operation's tag.
    pub tag: T,
    /// How many physical writes carried the tag (including the first).
    pub writes: u64,
}

impl<T: fmt::Display> fmt::Display for DuplicateApplication<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "logical write {} applied with diverging effects across {} physical writes",
            self.tag, self.writes
        )
    }
}

impl<T: fmt::Display + fmt::Debug> std::error::Error for DuplicateApplication<T> {}

/// Checks the exactly-once criterion over a history (see the [module
/// docs](self)).
///
/// `extract` maps a write operation to `Some((tag, effect))` for tagged
/// writes and `None` for untagged legacy writes (which are exempt — they
/// have no cross-crash identity to protect). Reads never reach
/// `extract`.
///
/// # Errors
///
/// Returns the first [`DuplicateApplication`] in history order.
pub fn check_exactly_once<T, V>(
    history: &History,
    extract: impl Fn(&Op) -> Option<(T, V)>,
) -> Result<ExactlyOnceReport, DuplicateApplication<T>>
where
    T: Ord + Clone,
    V: Eq,
{
    let mut seen: BTreeMap<T, (V, u64)> = BTreeMap::new();
    let mut report = ExactlyOnceReport::default();
    for event in history.events() {
        let Event::Invoke { operation, .. } = event else {
            continue;
        };
        if operation.write_value().is_none() {
            continue;
        }
        let Some((tag, effect)) = extract(operation) else {
            continue;
        };
        report.tagged_writes += 1;
        match seen.get_mut(&tag) {
            None => {
                report.logical_ops += 1;
                seen.insert(tag, (effect, 1));
            }
            Some((first, count)) => {
                *count += 1;
                report.retries += 1;
                if *first != effect {
                    return Err(DuplicateApplication {
                        tag,
                        writes: *count,
                    });
                }
            }
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmem_types::{OpResult, OpTag, ProcessId, RegisterId, Value};

    /// Toy payload convention for the tests: `[client, seq, effect]`.
    fn tagged(client: u8, seq: u8, effect: u8) -> Value {
        Value::new(vec![client, seq, effect])
    }

    fn extract(op: &Op) -> Option<(OpTag, u8)> {
        let v = op.write_value()?;
        let bytes = v.bytes();
        if bytes.len() != 3 {
            return None;
        }
        Some((OpTag::new(bytes[0] as u16, bytes[1] as u64), bytes[2]))
    }

    #[test]
    fn retries_with_identical_effects_pass() {
        let mut h = History::new();
        let w1 = h.invoke(ProcessId(0), Op::WriteAt(RegisterId(1), tagged(1, 0, 9)));
        h.reply(w1, OpResult::Written);
        // The client crashes and its recovery re-issues the same tag.
        h.crash(ProcessId(0));
        h.recover(ProcessId(0));
        let w2 = h.invoke(ProcessId(0), Op::WriteAt(RegisterId(1), tagged(1, 0, 9)));
        h.reply(w2, OpResult::Written);
        let w3 = h.invoke(ProcessId(1), Op::WriteAt(RegisterId(1), tagged(2, 0, 5)));
        h.reply(w3, OpResult::Written);

        let report = check_exactly_once(&h, extract).unwrap();
        assert_eq!(report.tagged_writes, 3);
        assert_eq!(report.logical_ops, 2);
        assert_eq!(report.retries, 1);
    }

    #[test]
    fn diverging_retry_is_a_duplicate_application() {
        let mut h = History::new();
        let w1 = h.invoke(ProcessId(0), Op::WriteAt(RegisterId(1), tagged(1, 4, 9)));
        h.reply(w1, OpResult::Written);
        let w2 = h.invoke(ProcessId(0), Op::WriteAt(RegisterId(1), tagged(1, 4, 8)));
        h.reply(w2, OpResult::Written);
        let err = check_exactly_once(&h, extract).unwrap_err();
        assert_eq!(err.tag, OpTag::new(1, 4));
        assert_eq!(err.writes, 2);
        assert!(err.to_string().contains("c1#4"));
    }

    #[test]
    fn pending_writes_are_held_to_the_rule() {
        let mut h = History::new();
        let w1 = h.invoke(ProcessId(0), Op::WriteAt(RegisterId(1), tagged(3, 0, 1)));
        h.reply(w1, OpResult::Written);
        // A crashed, never-completed attempt forks the tag: violation,
        // because a recovery could land it.
        let _pending = h.invoke(ProcessId(1), Op::WriteAt(RegisterId(1), tagged(3, 0, 2)));
        h.crash(ProcessId(1));
        assert!(check_exactly_once(&h, extract).is_err());
    }

    #[test]
    fn untagged_writes_and_reads_are_exempt() {
        let mut h = History::new();
        let w = h.invoke(ProcessId(0), Op::WriteAt(RegisterId(1), Value::from_u32(7)));
        h.reply(w, OpResult::Written);
        let r = h.invoke(ProcessId(1), Op::ReadAt(RegisterId(1)));
        h.reply(r, OpResult::ReadValue(Value::from_u32(7)));
        let report = check_exactly_once(&h, extract).unwrap();
        assert_eq!(report, ExactlyOnceReport::default());
    }
}
