//! Histories: sequences of invocation, reply, crash and recovery events.
//!
//! This is the paper's §III-A formalism: a history is a sequence of events
//! of four kinds; crash and recovery events are associated with one
//! process; every invocation/reply is associated with one process (we deal
//! with a single register object, so the "object" component is implicit).

use std::collections::HashMap;

use rmem_types::{Op, OpId, OpResult, ProcessId};

/// One event of a history.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// A process invokes an operation.
    Invoke {
        /// Operation id (unique per history).
        op: OpId,
        /// What was invoked.
        operation: Op,
    },
    /// A process receives the reply to a previously invoked operation.
    Reply {
        /// The operation being answered.
        op: OpId,
        /// The reported result.
        result: OpResult,
    },
    /// A process crashes, losing volatile state.
    Crash {
        /// The crashing process.
        pid: ProcessId,
    },
    /// A previously crashed process recovers.
    Recover {
        /// The recovering process.
        pid: ProcessId,
    },
}

impl Event {
    /// The process this event is associated with.
    pub fn pid(&self) -> ProcessId {
        match self {
            Event::Invoke { op, .. } | Event::Reply { op, .. } => op.pid,
            Event::Crash { pid } | Event::Recover { pid } => *pid,
        }
    }
}

/// Why a history is not well-formed (§III-A's conditions (a)–(c) plus the
/// obvious matching rules).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WellFormedError {
    /// A reply appeared with no matching pending invocation.
    UnmatchedReply {
        /// The offending operation id.
        op: OpId,
    },
    /// A process invoked an operation while another was still pending.
    OverlappingInvocation {
        /// The offending operation id.
        op: OpId,
    },
    /// A process had an event while crashed that is not its recovery.
    EventWhileCrashed {
        /// The process in question.
        pid: ProcessId,
        /// Index of the offending event.
        index: usize,
    },
    /// A recovery appeared for a process that was not crashed.
    SpuriousRecovery {
        /// The process in question.
        pid: ProcessId,
        /// Index of the offending event.
        index: usize,
    },
    /// A crash appeared for a process that was already crashed.
    DoubleCrash {
        /// The process in question.
        pid: ProcessId,
        /// Index of the offending event.
        index: usize,
    },
    /// A reply arrived for an operation whose invocation was wiped by a
    /// crash — impossible in the model (the automaton died).
    ReplyAfterCrash {
        /// The offending operation id.
        op: OpId,
    },
    /// The same operation id was invoked twice.
    DuplicateOp {
        /// The offending operation id.
        op: OpId,
    },
}

impl std::fmt::Display for WellFormedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WellFormedError::UnmatchedReply { op } => {
                write!(f, "reply without invocation for {op}")
            }
            WellFormedError::OverlappingInvocation { op } => {
                write!(f, "invocation {op} while a previous operation is pending")
            }
            WellFormedError::EventWhileCrashed { pid, index } => {
                write!(f, "event #{index} at crashed process {pid}")
            }
            WellFormedError::SpuriousRecovery { pid, index } => {
                write!(f, "recovery #{index} of non-crashed process {pid}")
            }
            WellFormedError::DoubleCrash { pid, index } => {
                write!(f, "crash #{index} of already crashed process {pid}")
            }
            WellFormedError::ReplyAfterCrash { op } => {
                write!(f, "reply to {op}, whose invocation was lost to a crash")
            }
            WellFormedError::DuplicateOp { op } => write!(f, "operation id {op} invoked twice"),
        }
    }
}

impl std::error::Error for WellFormedError {}

/// A recorded history of one register object.
///
/// Events are held in global real-time order (the order the recording
/// harness observed them). Operation precedence — "op1 precedes op2 iff
/// op1's reply comes before op2's invocation" — is derived from event
/// indices in this sequence.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct History {
    events: Vec<Event>,
    next_counter: HashMap<ProcessId, u64>,
}

impl History {
    /// Creates an empty history.
    pub fn new() -> Self {
        History::default()
    }

    /// The recorded events, in real-time order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the history has no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Appends a raw event (used when converting simulator traces).
    pub fn push(&mut self, event: Event) {
        self.events.push(event);
    }

    // -- Builder conveniences -------------------------------------------

    /// Records an invocation by `pid`, auto-assigning the next per-process
    /// operation counter. Returns the operation id to pass to
    /// [`reply`](Self::reply).
    pub fn invoke(&mut self, pid: ProcessId, operation: Op) -> OpId {
        let counter = self.next_counter.entry(pid).or_insert(0);
        let op = OpId::new(pid, *counter);
        *counter += 1;
        self.events.push(Event::Invoke { op, operation });
        op
    }

    /// Records the reply to a previous invocation.
    pub fn reply(&mut self, op: OpId, result: OpResult) {
        self.events.push(Event::Reply { op, result });
    }

    /// Records a write invocation immediately followed by its reply.
    pub fn complete_write(&mut self, pid: ProcessId, value: rmem_types::Value) -> OpId {
        let op = self.invoke(pid, Op::Write(value));
        self.reply(op, OpResult::Written);
        op
    }

    /// Records a read invocation immediately followed by its reply.
    pub fn complete_read(&mut self, pid: ProcessId, value: rmem_types::Value) -> OpId {
        let op = self.invoke(pid, Op::Read);
        self.reply(op, OpResult::ReadValue(value));
        op
    }

    /// Records a crash of `pid`.
    pub fn crash(&mut self, pid: ProcessId) {
        self.events.push(Event::Crash { pid });
    }

    /// Records a recovery of `pid`.
    pub fn recover(&mut self, pid: ProcessId) {
        self.events.push(Event::Recover { pid });
    }

    // -- Queries ---------------------------------------------------------

    /// Checks the well-formedness conditions of §III-A.
    ///
    /// # Errors
    ///
    /// Returns the first [`WellFormedError`] encountered, scanning in event
    /// order.
    pub fn well_formed(&self) -> Result<(), WellFormedError> {
        #[derive(Clone, Copy, PartialEq)]
        enum PState {
            Idle,
            Pending(OpId),
            Crashed,
        }
        let mut state: HashMap<ProcessId, PState> = HashMap::new();
        let mut ever_invoked: HashMap<OpId, bool> = HashMap::new(); // op -> lost to crash
        for (index, ev) in self.events.iter().enumerate() {
            let pid = ev.pid();
            let st = state.entry(pid).or_insert(PState::Idle);
            match ev {
                Event::Invoke { op, .. } => {
                    if ever_invoked.contains_key(op) {
                        return Err(WellFormedError::DuplicateOp { op: *op });
                    }
                    match *st {
                        PState::Idle => {
                            ever_invoked.insert(*op, false);
                            *st = PState::Pending(*op);
                        }
                        PState::Pending(_) => {
                            return Err(WellFormedError::OverlappingInvocation { op: *op })
                        }
                        PState::Crashed => {
                            return Err(WellFormedError::EventWhileCrashed { pid, index })
                        }
                    }
                }
                Event::Reply { op, .. } => match *st {
                    PState::Pending(pending) if pending == *op => *st = PState::Idle,
                    PState::Crashed => {
                        return Err(WellFormedError::EventWhileCrashed { pid, index })
                    }
                    _ => {
                        return Err(if ever_invoked.get(op).copied().unwrap_or(false) {
                            WellFormedError::ReplyAfterCrash { op: *op }
                        } else {
                            WellFormedError::UnmatchedReply { op: *op }
                        })
                    }
                },
                Event::Crash { .. } => match *st {
                    PState::Crashed => return Err(WellFormedError::DoubleCrash { pid, index }),
                    PState::Pending(op) => {
                        // The pending invocation is permanently lost.
                        ever_invoked.insert(op, true);
                        *st = PState::Crashed;
                    }
                    PState::Idle => *st = PState::Crashed,
                },
                Event::Recover { .. } => match *st {
                    PState::Crashed => *st = PState::Idle,
                    _ => return Err(WellFormedError::SpuriousRecovery { pid, index }),
                },
            }
        }
        Ok(())
    }

    /// All operation ids that have an invocation but no reply.
    pub fn pending_ops(&self) -> Vec<OpId> {
        let mut pending: Vec<OpId> = Vec::new();
        let mut replied: std::collections::HashSet<OpId> = std::collections::HashSet::new();
        for ev in &self.events {
            match ev {
                Event::Invoke { op, .. } => pending.push(*op),
                Event::Reply { op, .. } => {
                    replied.insert(*op);
                }
                _ => {}
            }
        }
        pending.retain(|op| !replied.contains(op));
        pending
    }

    /// Restriction of the history to one process, preserving order.
    pub fn local(&self, pid: ProcessId) -> Vec<&Event> {
        self.events.iter().filter(|e| e.pid() == pid).collect()
    }

    /// Number of crash events.
    pub fn crash_count(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, Event::Crash { .. }))
            .count()
    }

    /// The registers addressed by this history's operations.
    pub fn registers(&self) -> std::collections::BTreeSet<rmem_types::RegisterId> {
        self.events
            .iter()
            .filter_map(|e| match e {
                Event::Invoke { operation, .. } => Some(operation.register()),
                _ => None,
            })
            .collect()
    }

    /// The restriction of this history to one register: its operations
    /// (normalized to the unaddressed forms) plus every crash/recovery
    /// event.
    ///
    /// By the *locality* of linearizability, a multi-register history is
    /// atomic iff each restriction is; the checkers partition
    /// multi-register histories this way. For the crash-recovery criteria
    /// the completion bounds are interpreted **per register**: a pending
    /// write may be completed up to the same process's next invocation
    /// (persistent) or next write reply (transient) *on the same
    /// register*. The paper defines the criteria for a single object
    /// (§III footnote); the per-register reading is the conservative
    /// lift — bounds never extend past an intervening same-register
    /// operation.
    pub fn restrict_to_register(&self, reg: rmem_types::RegisterId) -> History {
        let mut ops_in_reg: std::collections::HashSet<OpId> = std::collections::HashSet::new();
        let mut out = History::new();
        for ev in &self.events {
            match ev {
                Event::Invoke { op, operation } => {
                    if operation.register() == reg {
                        ops_in_reg.insert(*op);
                        out.push(Event::Invoke {
                            op: *op,
                            operation: operation.clone().normalized(),
                        });
                    }
                }
                Event::Reply { op, result } => {
                    if ops_in_reg.contains(op) {
                        out.push(Event::Reply {
                            op: *op,
                            result: result.clone(),
                        });
                    }
                }
                Event::Crash { pid } => out.push(Event::Crash { pid: *pid }),
                Event::Recover { pid } => out.push(Event::Recover { pid: *pid }),
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmem_types::Value;

    fn p(i: u16) -> ProcessId {
        ProcessId(i)
    }

    #[test]
    fn builder_produces_well_formed_history() {
        let mut h = History::new();
        let w = h.invoke(p(0), Op::Write(Value::from_u32(1)));
        h.reply(w, OpResult::Written);
        h.crash(p(0));
        h.recover(p(0));
        let r = h.invoke(p(0), Op::Read);
        h.reply(r, OpResult::ReadValue(Value::from_u32(1)));
        assert!(h.well_formed().is_ok());
        assert!(h.pending_ops().is_empty());
        assert_eq!(h.crash_count(), 1);
        assert_eq!(h.local(p(0)).len(), 6);
    }

    #[test]
    fn crash_mid_operation_leaves_it_pending() {
        let mut h = History::new();
        let _w = h.invoke(p(1), Op::Write(Value::from_u32(2)));
        h.crash(p(1));
        h.recover(p(1));
        let w2 = h.invoke(p(1), Op::Write(Value::from_u32(3)));
        h.reply(w2, OpResult::Written);
        assert!(h.well_formed().is_ok());
        assert_eq!(h.pending_ops(), vec![OpId::new(p(1), 0)]);
    }

    #[test]
    fn overlapping_invocations_rejected() {
        let mut h = History::new();
        let _a = h.invoke(p(0), Op::Read);
        let b = h.invoke(p(0), Op::Read);
        assert_eq!(
            h.well_formed(),
            Err(WellFormedError::OverlappingInvocation { op: b })
        );
    }

    #[test]
    fn unmatched_reply_rejected() {
        let mut h = History::new();
        h.reply(OpId::new(p(0), 0), OpResult::Written);
        assert!(matches!(
            h.well_formed(),
            Err(WellFormedError::UnmatchedReply { .. })
        ));
    }

    #[test]
    fn reply_after_crash_rejected() {
        let mut h = History::new();
        let w = h.invoke(p(0), Op::Write(Value::from_u32(1)));
        h.crash(p(0));
        h.recover(p(0));
        h.reply(w, OpResult::Written);
        assert_eq!(
            h.well_formed(),
            Err(WellFormedError::ReplyAfterCrash { op: w })
        );
    }

    #[test]
    fn event_while_crashed_rejected() {
        let mut h = History::new();
        h.crash(p(0));
        h.push(Event::Invoke {
            op: OpId::new(p(0), 0),
            operation: Op::Read,
        });
        assert!(matches!(
            h.well_formed(),
            Err(WellFormedError::EventWhileCrashed { .. })
        ));
    }

    #[test]
    fn spurious_recovery_rejected() {
        let mut h = History::new();
        h.recover(p(2));
        assert!(matches!(
            h.well_formed(),
            Err(WellFormedError::SpuriousRecovery { .. })
        ));
    }

    #[test]
    fn double_crash_rejected() {
        let mut h = History::new();
        h.crash(p(0));
        h.crash(p(0));
        assert!(matches!(
            h.well_formed(),
            Err(WellFormedError::DoubleCrash { .. })
        ));
    }

    #[test]
    fn duplicate_op_id_rejected() {
        let mut h = History::new();
        let op = OpId::new(p(0), 0);
        h.push(Event::Invoke {
            op,
            operation: Op::Read,
        });
        h.push(Event::Reply {
            op,
            result: OpResult::Written,
        });
        h.push(Event::Invoke {
            op,
            operation: Op::Read,
        });
        assert_eq!(h.well_formed(), Err(WellFormedError::DuplicateOp { op }));
    }

    #[test]
    fn crash_without_recovery_is_fine() {
        let mut h = History::new();
        let _ = h.invoke(p(0), Op::Read);
        h.crash(p(0));
        assert!(h.well_formed().is_ok());
    }
}
