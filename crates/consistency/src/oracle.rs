//! Brute-force linearizability oracle for cross-validating the search
//! checker on small histories.
//!
//! Enumerates every permutation of the operations and checks (a) interval
//! precedence and (b) register semantics directly. Exponential — intended
//! for property tests over ≤ 8 operations.

use rmem_types::{OpId, OpKind};

use crate::intervals::IntervalOp;

/// Maximum operation count the oracle accepts.
pub const MAX_ORACLE_OPS: usize = 9;

/// Returns a witness order if `ops` linearizes, by exhaustive permutation
/// search.
///
/// # Panics
///
/// Panics if `ops.len() > MAX_ORACLE_OPS`.
pub fn brute_force_linearize(ops: &[IntervalOp]) -> Option<Vec<OpId>> {
    assert!(
        ops.len() <= MAX_ORACLE_OPS,
        "oracle limited to {MAX_ORACLE_OPS} ops"
    );
    let n = ops.len();
    let mut perm: Vec<usize> = (0..n).collect();
    loop {
        if check_order(ops, &perm) {
            return Some(perm.iter().map(|&i| ops[i].op).collect());
        }
        if !next_permutation(&mut perm) {
            return None;
        }
    }
}

fn check_order(ops: &[IntervalOp], order: &[usize]) -> bool {
    // (a) precedence: if a's interval ends before b's begins, a must come
    // first.
    for (pos_a, &a) in order.iter().enumerate() {
        for &b in &order[pos_a + 1..] {
            // b comes after a in the candidate order; reject if b must
            // precede a.
            if ops[b].precedes(&ops[a]) {
                return false;
            }
        }
    }
    // (b) register semantics.
    let mut current: Option<&rmem_types::Value> = None;
    for &i in order {
        match ops[i].kind {
            OpKind::Write => current = ops[i].write_value.as_ref(),
            OpKind::Read => match (&ops[i].read_value, current) {
                (Some(rv), Some(cv)) => {
                    if rv != cv {
                        return false;
                    }
                }
                (Some(rv), None) => {
                    if !rv.is_bottom() {
                        return false;
                    }
                }
                (None, _) => {}
            },
        }
    }
    true
}

fn next_permutation(perm: &mut [usize]) -> bool {
    let n = perm.len();
    if n < 2 {
        return false;
    }
    let mut i = n - 1;
    while i > 0 && perm[i - 1] >= perm[i] {
        i -= 1;
    }
    if i == 0 {
        return false;
    }
    let mut j = n - 1;
    while perm[j] <= perm[i - 1] {
        j -= 1;
    }
    perm.swap(i - 1, j);
    perm[i..].reverse();
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linearize::linearize_register;
    use rmem_types::{ProcessId, Value};

    fn op(pid: u16, c: u64, kind: OpKind, val: u32, inv: usize, end: usize) -> IntervalOp {
        IntervalOp {
            op: OpId::new(ProcessId(pid), c),
            kind,
            write_value: (kind == OpKind::Write).then(|| Value::from_u32(val)),
            read_value: (kind == OpKind::Read).then(|| Value::from_u32(val)),
            inv,
            end,
            pending: false,
        }
    }

    #[test]
    fn oracle_agrees_with_checker_on_fixed_cases() {
        let cases: Vec<Vec<IntervalOp>> = vec![
            vec![],
            vec![
                op(0, 0, OpKind::Write, 1, 0, 1),
                op(1, 0, OpKind::Read, 1, 2, 3),
            ],
            vec![
                op(0, 0, OpKind::Write, 1, 0, 1),
                op(1, 0, OpKind::Read, 2, 2, 3),
            ],
            vec![
                op(0, 0, OpKind::Write, 1, 0, 3),
                op(1, 0, OpKind::Write, 2, 1, 2),
                op(2, 0, OpKind::Read, 1, 4, 5),
            ],
            vec![
                op(0, 0, OpKind::Write, 1, 0, 1),
                op(0, 1, OpKind::Write, 2, 2, 3),
                op(1, 0, OpKind::Read, 2, 4, 5),
                op(1, 1, OpKind::Read, 1, 6, 7),
            ],
        ];
        for ops in cases {
            let fast = linearize_register(&ops).is_some();
            let slow = brute_force_linearize(&ops).is_some();
            assert_eq!(fast, slow, "disagreement on {ops:?}");
        }
    }

    #[test]
    fn permutation_enumeration_is_complete() {
        let mut perm = vec![0usize, 1, 2];
        let mut count = 1;
        while next_permutation(&mut perm) {
            count += 1;
        }
        assert_eq!(count, 6);
    }

    #[test]
    #[should_panic(expected = "oracle limited")]
    fn oracle_rejects_large_inputs() {
        let ops: Vec<_> = (0..10)
            .map(|i| op(0, i as u64, OpKind::Write, 0, 2 * i, 2 * i + 1))
            .collect();
        let _ = brute_force_linearize(&ops);
    }
}
