//! Register linearizability search over operation intervals.
//!
//! This is the Wing–Gong search specialised to a single read/write
//! register, with the standard memoization on (set of linearized ops,
//! current register value): once a state is known to fail, it is never
//! explored again. Histories up to 128 operations are supported (the mask
//! is a `u128`); the memo keeps the search polynomial-ish in practice for
//! the history sizes our tests and benchmarks generate.

use std::collections::HashSet;

use rmem_types::{OpId, OpKind, Value};

use crate::intervals::IntervalOp;

/// Maximum number of operations the checker accepts.
pub const MAX_OPS: usize = 128;

/// Attempts to linearize `ops` (a complete set of interval operations on
/// one register with initial value ⊥).
///
/// Returns a witness order (operation ids in linearization order) if one
/// exists, `None` otherwise.
///
/// # Panics
///
/// Panics if `ops.len() > MAX_OPS`.
pub fn linearize_register(ops: &[IntervalOp]) -> Option<Vec<OpId>> {
    assert!(
        ops.len() <= MAX_OPS,
        "checker supports at most {MAX_OPS} operations, got {}",
        ops.len()
    );
    if ops.is_empty() {
        return Some(Vec::new());
    }

    let n = ops.len();
    let full: u128 = if n == 128 {
        u128::MAX
    } else {
        (1u128 << n) - 1
    };

    // `last_write` encodes the register value: usize::MAX = initial ⊥.
    const INITIAL: usize = usize::MAX;

    fn current_value(ops: &[IntervalOp], last_write: usize) -> Option<&Value> {
        if last_write == INITIAL {
            None
        } else {
            ops[last_write].write_value.as_ref()
        }
    }

    let mut failed: HashSet<(u128, usize)> = HashSet::new();
    let mut stack: Vec<usize> = Vec::with_capacity(n);

    fn dfs(
        ops: &[IntervalOp],
        done: u128,
        last_write: usize,
        full: u128,
        failed: &mut HashSet<(u128, usize)>,
        stack: &mut Vec<usize>,
    ) -> bool {
        if done == full {
            return true;
        }
        if failed.contains(&(done, last_write)) {
            return false;
        }

        // Frontier: the earliest end among un-linearized ops. Only ops
        // invoked before it may linearize next.
        let mut min_end = usize::MAX;
        for (i, op) in ops.iter().enumerate() {
            if done & (1 << i) == 0 {
                min_end = min_end.min(op.end);
            }
        }

        for (i, op) in ops.iter().enumerate() {
            if done & (1 << i) != 0 || op.inv > min_end {
                continue;
            }
            // Semantic admissibility.
            let (ok, next_last) = match op.kind {
                OpKind::Write => (true, i),
                OpKind::Read => {
                    let cur = current_value(ops, last_write);
                    let ok = match (&op.read_value, cur) {
                        (Some(rv), Some(cv)) => rv == cv,
                        (Some(rv), None) => rv.is_bottom(),
                        // A read with an unknown return value (shouldn't
                        // occur: pending reads are dropped) matches
                        // anything.
                        (None, _) => true,
                    };
                    (ok, last_write)
                }
            };
            if !ok {
                continue;
            }
            stack.push(i);
            if dfs(ops, done | (1 << i), next_last, full, failed, stack) {
                return true;
            }
            stack.pop();
        }

        failed.insert((done, last_write));
        false
    }

    if dfs(ops, 0, INITIAL, full, &mut failed, &mut stack) {
        Some(stack.iter().map(|&i| ops[i].op).collect())
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmem_types::ProcessId;

    fn p(i: u16) -> ProcessId {
        ProcessId(i)
    }

    fn write(pid: u16, counter: u64, v: u32, inv: usize, end: usize) -> IntervalOp {
        IntervalOp {
            op: OpId::new(p(pid), counter),
            kind: OpKind::Write,
            write_value: Some(Value::from_u32(v)),
            read_value: None,
            inv,
            end,
            pending: false,
        }
    }

    fn read(pid: u16, counter: u64, v: Option<u32>, inv: usize, end: usize) -> IntervalOp {
        IntervalOp {
            op: OpId::new(p(pid), counter),
            kind: OpKind::Read,
            write_value: None,
            read_value: Some(v.map(Value::from_u32).unwrap_or_else(Value::bottom)),
            inv,
            end,
            pending: false,
        }
    }

    #[test]
    fn empty_history_linearizes() {
        assert_eq!(linearize_register(&[]), Some(vec![]));
    }

    #[test]
    fn sequential_write_then_read() {
        let ops = [write(0, 0, 1, 0, 1), read(1, 0, Some(1), 2, 3)];
        let order = linearize_register(&ops).expect("linearizable");
        assert_eq!(order, vec![ops[0].op, ops[1].op]);
    }

    #[test]
    fn stale_read_after_write_completes_is_rejected() {
        // W(1) completes before R begins, yet R returns ⊥.
        let ops = [write(0, 0, 1, 0, 1), read(1, 0, None, 2, 3)];
        assert_eq!(linearize_register(&ops), None);
    }

    #[test]
    fn concurrent_read_may_return_old_or_new() {
        // W(1) overlaps R: both ⊥ and 1 are acceptable.
        for rv in [None, Some(1)] {
            let ops = [write(0, 0, 1, 0, 3), read(1, 0, rv, 1, 2)];
            assert!(linearize_register(&ops).is_some(), "rv={rv:?}");
        }
        // But a value never written is not.
        let ops = [write(0, 0, 1, 0, 3), read(1, 0, Some(7), 1, 2)];
        assert_eq!(linearize_register(&ops), None);
    }

    #[test]
    fn new_old_inversion_is_rejected() {
        // Two sequential reads concurrent with nothing: first returns the
        // new value, second returns the old one — the classic atomicity
        // violation.
        let ops = [
            write(0, 0, 1, 0, 1),
            write(0, 1, 2, 2, 3),
            read(1, 0, Some(2), 4, 5),
            read(1, 1, Some(1), 6, 7),
        ];
        assert_eq!(linearize_register(&ops), None);
    }

    #[test]
    fn read_your_own_write_is_required() {
        let ops = [write(0, 0, 5, 0, 1), read(0, 1, None, 2, 3)];
        assert_eq!(linearize_register(&ops), None);
    }

    #[test]
    fn interleaved_writers_with_consistent_reads() {
        // W_a(1) || W_b(2), then R=2, R=2: order a<b works.
        let ops = [
            write(0, 0, 1, 0, 3),
            write(1, 0, 2, 1, 2),
            read(2, 0, Some(2), 4, 5),
            read(2, 1, Some(2), 6, 7),
        ];
        assert!(linearize_register(&ops).is_some());
    }

    #[test]
    fn reads_disagreeing_on_concurrent_write_order_fail() {
        // W_a(1) || W_b(2) both complete, then R=1, R=2, R=1: the third
        // read inverts.
        let ops = [
            write(0, 0, 1, 0, 2),
            write(1, 0, 2, 1, 3),
            read(2, 0, Some(1), 4, 5),
            read(2, 1, Some(2), 6, 7),
            read(2, 2, Some(1), 8, 9),
        ];
        assert_eq!(linearize_register(&ops), None);
    }

    #[test]
    fn pending_write_with_open_interval_can_absorb_late_reads() {
        // Pending W(2) (interval open to MAX): a much later read may see 2.
        let ops = [
            write(0, 0, 1, 0, 1),
            IntervalOp {
                pending: true,
                ..write(0, 1, 2, 2, usize::MAX)
            },
            read(1, 0, Some(2), 10, 11),
        ];
        assert!(linearize_register(&ops).is_some());
    }

    #[test]
    fn duplicate_written_values_are_handled() {
        // Two writes of the same value; reads of that value always legal.
        let ops = [
            write(0, 0, 7, 0, 1),
            write(1, 0, 7, 2, 3),
            read(2, 0, Some(7), 4, 5),
        ];
        assert!(linearize_register(&ops).is_some());
    }

    #[test]
    fn witness_order_respects_precedence_and_semantics() {
        let ops = [
            write(0, 0, 1, 0, 1),
            write(1, 0, 2, 2, 3),
            read(2, 0, Some(2), 4, 5),
        ];
        let order = linearize_register(&ops).unwrap();
        assert_eq!(order.len(), 3);
        // W(1) must precede W(2) (real time); read comes last.
        let pos = |op: OpId| order.iter().position(|&o| o == op).unwrap();
        assert!(pos(ops[0].op) < pos(ops[1].op));
        assert!(pos(ops[1].op) < pos(ops[2].op));
    }

    #[test]
    #[should_panic(expected = "checker supports at most")]
    fn too_many_ops_panics() {
        let ops: Vec<_> = (0..129)
            .map(|i| write(0, i as u64, 0, 2 * i, 2 * i + 1))
            .collect();
        let _ = linearize_register(&ops);
    }
}
