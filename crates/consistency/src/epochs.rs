//! Cross-epoch register checking: stitching a register's pre- and
//! post-migration histories into one atomicity check.
//!
//! A live shard split (see `rmem-kv`'s epoch layer) relocates a logical
//! register: operations before the handoff address the *old* physical
//! register, operations after it address the *new* one. Each physical
//! register's history is trivially atomic on its own — the interesting
//! property is that the **logical** register stays atomic *across* the
//! handoff: the first value served at the new home must be the latest
//! value written at the old home (the tag-monotonic handoff), and nothing
//! written before the move may resurface after it.
//!
//! [`check_per_register_epochs`] makes that checkable with the machinery
//! this crate already has: relabel every operation on a moved register's
//! old id onto its new id ([`stitch_moves`]) — interleaving order is
//! preserved, only the address changes — and run the ordinary
//! per-register decision procedure on the result. A lost update (the
//! handoff copying a superseded value) or a new-old inversion across the
//! move then shows up as a plain atomicity violation of the stitched
//! register.
//!
//! The caller is responsible for the *decode* step (stripping migration
//! infrastructure, e.g. seal markers, and mapping store payloads to raw
//! values) — `rmem_kv::certify_per_key_epochs` does that for store runs.

use std::collections::BTreeMap;

use rmem_types::{Op, RegisterId};

use crate::atomicity::{check_per_register, Criterion, Verdict, Violation};
use crate::history::{Event, History};

/// Rewrites every operation on a moved register's old id onto its new id,
/// preserving event order. Registers absent from `moves` pass through.
///
/// `moves` maps old → new physical ids; one hop is applied (the epoch
/// layer never chains moves within one transition — a key moves at most
/// once per split).
pub fn stitch_moves(history: &History, moves: &BTreeMap<RegisterId, RegisterId>) -> History {
    let relabel = |reg: RegisterId| moves.get(&reg).copied().unwrap_or(reg);
    let mut out = History::new();
    for event in history.events() {
        match event {
            Event::Invoke { op, operation } => {
                let operation = match operation {
                    Op::WriteAt(reg, v) => Op::WriteAt(relabel(*reg), v.clone()),
                    Op::Write(v) => Op::WriteAt(relabel(RegisterId::ZERO), v.clone()),
                    Op::ReadAt(reg) => Op::ReadAt(relabel(*reg)),
                    Op::Read => Op::ReadAt(relabel(RegisterId::ZERO)),
                };
                out.push(Event::Invoke { op: *op, operation });
            }
            other => out.push(other.clone()),
        }
    }
    out
}

/// Per-register verdicts of a history containing live register moves:
/// each moved register's pre- and post-migration operations are stitched
/// into one logical history (keyed by the *new* id) and checked under
/// `criterion`; unmoved registers are checked as usual.
///
/// An empty map means the history addresses no register at all (vacuously
/// atomic).
pub fn check_per_register_epochs(
    history: &History,
    moves: &BTreeMap<RegisterId, RegisterId>,
    criterion: Criterion,
) -> BTreeMap<RegisterId, Result<Verdict, Violation>> {
    check_per_register(&stitch_moves(history, moves), criterion)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmem_types::{OpResult, ProcessId, Value};

    fn v(x: u32) -> Value {
        Value::from_u32(x)
    }

    const OLD: RegisterId = RegisterId(1);
    const NEW: RegisterId = RegisterId(5);

    fn moves() -> BTreeMap<RegisterId, RegisterId> {
        [(OLD, NEW)].into_iter().collect()
    }

    /// The tag-monotonic handoff, pinned: the new home serves exactly the
    /// old home's latest value, then moves on — one logical register,
    /// atomic across the move.
    #[test]
    fn monotonic_handoff_passes() {
        let mut h = History::new();
        let w1 = h.invoke(ProcessId(0), Op::WriteAt(OLD, v(1)));
        h.reply(w1, OpResult::Written);
        let r1 = h.invoke(ProcessId(1), Op::ReadAt(OLD));
        h.reply(r1, OpResult::ReadValue(v(1)));
        // Handoff: the first new-home read serves the old home's latest.
        let r2 = h.invoke(ProcessId(1), Op::ReadAt(NEW));
        h.reply(r2, OpResult::ReadValue(v(1)));
        let w2 = h.invoke(ProcessId(0), Op::WriteAt(NEW, v(2)));
        h.reply(w2, OpResult::Written);
        let r3 = h.invoke(ProcessId(1), Op::ReadAt(NEW));
        h.reply(r3, OpResult::ReadValue(v(2)));

        let verdicts = check_per_register_epochs(&h, &moves(), Criterion::Persistent);
        assert_eq!(verdicts.len(), 1, "one logical register after stitching");
        assert!(verdicts[&NEW].is_ok(), "{:?}", verdicts[&NEW]);
    }

    /// A deliberately corrupted handoff: the move resurrects a superseded
    /// value (the copy was not tag-monotonic — it carried v1 although v2
    /// had completed at the old home). The stitched check must fail.
    #[test]
    fn lost_update_across_the_move_fails() {
        let mut h = History::new();
        let w1 = h.invoke(ProcessId(0), Op::WriteAt(OLD, v(1)));
        h.reply(w1, OpResult::Written);
        let w2 = h.invoke(ProcessId(0), Op::WriteAt(OLD, v(2)));
        h.reply(w2, OpResult::Written);
        // New home serves the *older* value after the move: a new-old
        // inversion of the logical register.
        let r = h.invoke(ProcessId(1), Op::ReadAt(NEW));
        h.reply(r, OpResult::ReadValue(v(1)));

        let verdicts = check_per_register_epochs(&h, &moves(), Criterion::Transient);
        assert!(
            matches!(verdicts[&NEW], Err(Violation::NotAtomic { .. })),
            "the stale handoff must be a violation, got {:?}",
            verdicts[&NEW]
        );
    }

    /// A completed pre-move write must not vanish at the new home: a ⊥
    /// read after the move is the forgotten-value anomaly of the logical
    /// register.
    #[test]
    fn forgotten_value_across_the_move_fails() {
        let mut h = History::new();
        let w = h.invoke(ProcessId(0), Op::WriteAt(OLD, v(7)));
        h.reply(w, OpResult::Written);
        let r = h.invoke(ProcessId(1), Op::ReadAt(NEW));
        h.reply(r, OpResult::ReadValue(Value::bottom()));
        let verdicts = check_per_register_epochs(&h, &moves(), Criterion::Persistent);
        assert!(verdicts[&NEW].is_err());
    }

    /// Unmoved registers are untouched by the stitching and share the
    /// result map with stitched ones.
    #[test]
    fn unmoved_registers_check_alongside() {
        let mut h = History::new();
        let w = h.invoke(ProcessId(0), Op::WriteAt(RegisterId(9), v(3)));
        h.reply(w, OpResult::Written);
        let r = h.invoke(ProcessId(1), Op::ReadAt(RegisterId(9)));
        h.reply(r, OpResult::ReadValue(v(3)));
        let w2 = h.invoke(ProcessId(0), Op::WriteAt(OLD, v(1)));
        h.reply(w2, OpResult::Written);
        let verdicts = check_per_register_epochs(&h, &moves(), Criterion::Persistent);
        assert_eq!(verdicts.len(), 2);
        assert!(verdicts[&RegisterId(9)].is_ok());
        assert!(verdicts[&NEW].is_ok());
    }

    /// Crashes interleaved with the move keep their model semantics: a
    /// pending pre-move write may surface at the new home (kept by the
    /// completion) or vanish (dropped), both legal.
    #[test]
    fn pending_write_across_the_move_may_land_or_vanish() {
        // Kept: the pending write's value is served at the new home.
        let mut kept = History::new();
        let w1 = kept.invoke(ProcessId(0), Op::WriteAt(OLD, v(1)));
        kept.reply(w1, OpResult::Written);
        let _w2 = kept.invoke(ProcessId(0), Op::WriteAt(OLD, v(2)));
        kept.crash(ProcessId(0));
        kept.recover(ProcessId(0));
        let r = kept.invoke(ProcessId(1), Op::ReadAt(NEW));
        kept.reply(r, OpResult::ReadValue(v(2)));
        assert!(check_per_register_epochs(&kept, &moves(), Criterion::Persistent)[&NEW].is_ok());

        // Dropped: the new home still serves the last completed value.
        let mut dropped = History::new();
        let w1 = dropped.invoke(ProcessId(0), Op::WriteAt(OLD, v(1)));
        dropped.reply(w1, OpResult::Written);
        let _w2 = dropped.invoke(ProcessId(0), Op::WriteAt(OLD, v(2)));
        dropped.crash(ProcessId(0));
        dropped.recover(ProcessId(0));
        let r = dropped.invoke(ProcessId(1), Op::ReadAt(NEW));
        dropped.reply(r, OpResult::ReadValue(v(1)));
        assert!(check_per_register_epochs(&dropped, &moves(), Criterion::Persistent)[&NEW].is_ok());
    }

    /// Plain `Read`/`Write` (single-register shorthand) relabel through
    /// register 0 like any other address.
    #[test]
    fn shorthand_ops_relabel_through_zero() {
        let moves: BTreeMap<_, _> = [(RegisterId::ZERO, NEW)].into_iter().collect();
        let mut h = History::new();
        let w = h.invoke(ProcessId(0), Op::Write(v(4)));
        h.reply(w, OpResult::Written);
        let r = h.invoke(ProcessId(1), Op::ReadAt(NEW));
        h.reply(r, OpResult::ReadValue(v(4)));
        let verdicts = check_per_register_epochs(&h, &moves, Criterion::Persistent);
        assert_eq!(verdicts.len(), 1);
        assert!(verdicts[&NEW].is_ok());
    }
}
