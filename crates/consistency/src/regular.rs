//! Safe and regular register criteria (single-writer), for the weaker
//! emulations discussed in the paper's concluding remarks (§VI).
//!
//! These criteria are defined for crash-free, single-writer histories
//! ([Lamport 1986], recalled in §VI):
//!
//! * **safe** — a read *not concurrent with any write* returns the value
//!   of the last preceding write (⊥ if none); a concurrent read may return
//!   anything.
//! * **regular** — every read returns either the value of the last
//!   preceding write or the value of some write concurrent with the read.
//!
//! For crash-recovery histories the natural lift (mirroring persistent
//! atomicity) is: complete pending writes per the persistent rule, then
//! apply the crash-free criterion to the completed history. That is what
//! these checkers implement: pending writes become intervals bounded by the
//! writer's next invocation, and both the kept and dropped alternatives are
//! tried.

use rmem_types::{OpKind, ProcessId, Value};

use crate::history::History;
use crate::intervals::{extract, CompletionRule, IntervalOp};

/// Why a history fails the safe/regular check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegularViolation {
    /// The history is not well-formed.
    NotWellFormed(crate::history::WellFormedError),
    /// More than one process issued writes (criteria are single-writer).
    MultipleWriters {
        /// Two of the offending writers.
        writers: (ProcessId, ProcessId),
    },
    /// Some completion makes no read admissible.
    Violated {
        /// Which criterion failed.
        criterion: &'static str,
    },
}

impl std::fmt::Display for RegularViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegularViolation::NotWellFormed(e) => write!(f, "history not well-formed: {e}"),
            RegularViolation::MultipleWriters { writers } => {
                write!(
                    f,
                    "single-writer criterion, but {} and {} both wrote",
                    writers.0, writers.1
                )
            }
            RegularViolation::Violated { criterion } => {
                write!(f, "history is not {criterion}")
            }
        }
    }
}

impl std::error::Error for RegularViolation {}

fn single_writer(ops: &[&IntervalOp]) -> Result<(), RegularViolation> {
    let mut writer: Option<ProcessId> = None;
    for op in ops {
        if op.kind == OpKind::Write {
            match writer {
                None => writer = Some(op.op.pid),
                Some(w) if w != op.op.pid => {
                    return Err(RegularViolation::MultipleWriters {
                        writers: (w, op.op.pid),
                    })
                }
                _ => {}
            }
        }
    }
    Ok(())
}

/// In a single-writer history writes are totally ordered by invocation
/// index (the writer is sequential), so "the last write preceding a read"
/// is well defined.
fn check_reads(
    ops: &[IntervalOp],
    criterion: &'static str,
    concurrent_reads_unconstrained: bool,
) -> Result<(), RegularViolation> {
    let refs: Vec<&IntervalOp> = ops.iter().collect();
    single_writer(&refs)?;

    let mut writes: Vec<&IntervalOp> = ops.iter().filter(|o| o.kind == OpKind::Write).collect();
    writes.sort_by_key(|w| w.inv);

    for read in ops.iter().filter(|o| o.kind == OpKind::Read) {
        let Some(rv) = &read.read_value else { continue };
        // Last write whose interval ends before the read begins.
        let last_preceding: Option<&&IntervalOp> = writes.iter().rev().find(|w| w.precedes(read));
        let concurrent: Vec<&&IntervalOp> = writes
            .iter()
            .filter(|w| !w.precedes(read) && !read.precedes(w))
            .collect();

        if !concurrent.is_empty() && concurrent_reads_unconstrained {
            continue; // safe: anything goes for concurrent reads
        }

        let last_value: Option<&Value> = last_preceding.and_then(|w| w.write_value.as_ref());
        let matches_last = match last_value {
            Some(v) => rv == v,
            None => rv.is_bottom(),
        };
        let matches_concurrent = concurrent
            .iter()
            .any(|w| w.write_value.as_ref().is_some_and(|v| v == rv));
        if !(matches_last || matches_concurrent) {
            return Err(RegularViolation::Violated { criterion });
        }
    }
    Ok(())
}

fn check_with_completions(
    history: &History,
    criterion: &'static str,
    concurrent_unconstrained: bool,
) -> Result<(), RegularViolation> {
    history
        .well_formed()
        .map_err(RegularViolation::NotWellFormed)?;
    let intervals = extract(history, CompletionRule::Persistent);
    let w = intervals.optional_writes.len();
    assert!(w < 20, "too many pending writes to enumerate ({w})");
    let mut last_err = None;
    for subset in 0u32..(1u32 << w) {
        let mut ops = intervals.fixed.clone();
        for (i, pw) in intervals.optional_writes.iter().enumerate() {
            if subset & (1 << i) != 0 {
                ops.push(pw.clone());
            }
        }
        match check_reads(&ops, criterion, concurrent_unconstrained) {
            Ok(()) => return Ok(()),
            Err(e) => last_err = Some(e),
        }
    }
    Err(last_err.unwrap_or(RegularViolation::Violated { criterion }))
}

/// Checks the single-writer **regular** criterion (with the persistent
/// completion rule for pending writes).
///
/// # Errors
///
/// Returns [`RegularViolation`] if the history is malformed, multi-writer,
/// or some read returns neither the last preceding nor a concurrent value.
pub fn check_regular_swmr(history: &History) -> Result<(), RegularViolation> {
    check_with_completions(history, "regular", false)
}

/// Checks the single-writer **safe** criterion (with the persistent
/// completion rule for pending writes).
///
/// # Errors
///
/// Returns [`RegularViolation`] if the history is malformed, multi-writer,
/// or a write-free read returns a stale value.
pub fn check_safe_swmr(history: &History) -> Result<(), RegularViolation> {
    check_with_completions(history, "safe", true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmem_types::{Op, OpResult, Value};

    fn p(i: u16) -> ProcessId {
        ProcessId(i)
    }

    fn v(x: u32) -> Value {
        Value::from_u32(x)
    }

    #[test]
    fn sequential_reads_must_see_last_write() {
        let mut h = History::new();
        h.complete_write(p(0), v(1));
        h.complete_read(p(1), v(1));
        assert!(check_regular_swmr(&h).is_ok());
        assert!(check_safe_swmr(&h).is_ok());

        let mut bad = History::new();
        bad.complete_write(p(0), v(1));
        bad.complete_read(p(1), v(9));
        assert!(check_regular_swmr(&bad).is_err());
        assert!(check_safe_swmr(&bad).is_err());
    }

    #[test]
    fn concurrent_read_old_or_new_is_regular() {
        // W(2) concurrent with R: both 1 (old) and 2 (new) are regular.
        for rv in [1u32, 2] {
            let mut h = History::new();
            h.complete_write(p(0), v(1));
            let w = h.invoke(p(0), Op::Write(v(2)));
            let r = h.invoke(p(1), Op::Read);
            h.reply(r, OpResult::ReadValue(v(rv)));
            h.reply(w, OpResult::Written);
            assert!(check_regular_swmr(&h).is_ok(), "rv={rv}");
        }
        // But 7 (never written) is not even safe? — safe allows anything
        // for concurrent reads.
        let mut h = History::new();
        h.complete_write(p(0), v(1));
        let w = h.invoke(p(0), Op::Write(v(2)));
        let r = h.invoke(p(1), Op::Read);
        h.reply(r, OpResult::ReadValue(v(7)));
        h.reply(w, OpResult::Written);
        assert!(check_regular_swmr(&h).is_err());
        assert!(
            check_safe_swmr(&h).is_ok(),
            "safe tolerates garbage under concurrency"
        );
    }

    #[test]
    fn regular_allows_new_old_inversion_unlike_atomicity() {
        // Two reads during one write: new then old. Regular accepts,
        // atomic would not.
        let mut h = History::new();
        h.complete_write(p(0), v(1));
        let w = h.invoke(p(0), Op::Write(v(2)));
        let r1 = h.invoke(p(1), Op::Read);
        h.reply(r1, OpResult::ReadValue(v(2)));
        let r2 = h.invoke(p(1), Op::Read);
        h.reply(r2, OpResult::ReadValue(v(1)));
        h.reply(w, OpResult::Written);
        assert!(check_regular_swmr(&h).is_ok());
        assert!(crate::check_persistent(&h).is_err());
    }

    #[test]
    fn multi_writer_is_rejected() {
        let mut h = History::new();
        h.complete_write(p(0), v(1));
        h.complete_write(p(1), v(2));
        assert!(matches!(
            check_regular_swmr(&h),
            Err(RegularViolation::MultipleWriters { .. })
        ));
    }

    #[test]
    fn initial_bottom_read_is_fine() {
        let mut h = History::new();
        h.complete_read(p(1), Value::bottom());
        assert!(check_regular_swmr(&h).is_ok());
        assert!(check_safe_swmr(&h).is_ok());
    }

    #[test]
    fn pending_write_read_by_someone_is_regular_via_completion() {
        let mut h = History::new();
        h.complete_write(p(0), v(1));
        let _w2 = h.invoke(p(0), Op::Write(v(2)));
        h.crash(p(0));
        let r = h.invoke(p(1), Op::Read);
        h.reply(r, OpResult::ReadValue(v(2)));
        assert!(check_regular_swmr(&h).is_ok());
    }

    #[test]
    fn crashy_forgotten_value_violates_regularity() {
        let mut h = History::new();
        h.complete_write(p(0), v(1));
        h.crash(p(0));
        h.recover(p(0));
        let r = h.invoke(p(1), Op::Read);
        h.reply(r, OpResult::ReadValue(Value::bottom()));
        assert!(check_regular_swmr(&h).is_err());
    }
}
