//! Violation shrinking: reduce a failing history to a minimal
//! counterexample.
//!
//! When a 60-operation adversarial run fails a checker, the interesting
//! part is usually 3 operations and one crash. [`shrink`] removes
//! operations and crash/recovery pairs greedily while the violation
//! persists, yielding a far smaller history that still fails — the
//! distributed-systems equivalent of test-case minimization.

use rmem_types::OpId;

use crate::history::{Event, History};

/// Shrinks `history` while `is_violating` stays true. The result is
/// 1-minimal with respect to the performed removals: dropping any single
/// remaining operation or crash/recovery pair makes the violation
/// disappear (or the history malformed).
///
/// `is_violating` must return `true` for the input history; typical usage:
///
/// ```
/// use rmem_consistency::{check_persistent, shrink, History};
/// use rmem_types::{Op, OpResult, ProcessId, Value};
///
/// let mut h = History::new();
/// h.complete_write(ProcessId(0), Value::from_u32(1));
/// h.complete_write(ProcessId(0), Value::from_u32(2));
/// // Three reads; the middle one inverts.
/// h.complete_read(ProcessId(1), Value::from_u32(2));
/// h.complete_read(ProcessId(1), Value::from_u32(1));
/// h.complete_read(ProcessId(1), Value::from_u32(2));
/// assert!(check_persistent(&h).is_err());
///
/// let minimal = shrink(&h, |h| check_persistent(h).is_err());
/// assert!(check_persistent(&minimal).is_err());
/// assert!(minimal.len() < h.len());
/// ```
pub fn shrink(history: &History, is_violating: impl Fn(&History) -> bool) -> History {
    assert!(is_violating(history), "shrink requires a violating history");
    let mut current = history.clone();
    loop {
        let mut progressed = false;

        // Try removing whole operations (their invoke + reply events).
        let ops: Vec<OpId> = current
            .events()
            .iter()
            .filter_map(|e| match e {
                Event::Invoke { op, .. } => Some(*op),
                _ => None,
            })
            .collect();
        for op in ops {
            let candidate = without_op(&current, op);
            if candidate.well_formed().is_ok() && is_violating(&candidate) {
                current = candidate;
                progressed = true;
            }
        }

        // Try removing crash/recovery pairs (and trailing unmatched
        // crashes).
        loop {
            let mut removed_pair = false;
            let marks: Vec<usize> = current
                .events()
                .iter()
                .enumerate()
                .filter_map(|(i, e)| matches!(e, Event::Crash { .. }).then_some(i))
                .collect();
            for crash_idx in marks {
                let candidate = without_crash(&current, crash_idx);
                if candidate.well_formed().is_ok() && is_violating(&candidate) {
                    current = candidate;
                    progressed = true;
                    removed_pair = true;
                    break; // indices shifted; rescan
                }
            }
            if !removed_pair {
                break;
            }
        }

        if !progressed {
            return current;
        }
    }
}

/// The history with one operation's events removed.
fn without_op(history: &History, op: OpId) -> History {
    let mut out = History::new();
    for ev in history.events() {
        match ev {
            Event::Invoke { op: o, .. } | Event::Reply { op: o, .. } if *o == op => {}
            other => out.push(other.clone()),
        }
    }
    out
}

/// The history with the crash at `crash_idx` and its matching recovery
/// (the process's next recovery event, if any) removed.
fn without_crash(history: &History, crash_idx: usize) -> History {
    let events = history.events();
    let Event::Crash { pid } = &events[crash_idx] else {
        return history.clone();
    };
    let recovery_idx = events
        .iter()
        .enumerate()
        .skip(crash_idx + 1)
        .find_map(|(i, e)| matches!(e, Event::Recover { pid: p } if p == pid).then_some(i));
    let mut out = History::new();
    for (i, ev) in events.iter().enumerate() {
        if i == crash_idx || Some(i) == recovery_idx {
            continue;
        }
        out.push(ev.clone());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{check_persistent, check_transient};
    use rmem_types::{Op, OpResult, ProcessId, Value};

    fn p(i: u16) -> ProcessId {
        ProcessId(i)
    }

    fn v(x: u32) -> Value {
        Value::from_u32(x)
    }

    /// A big noisy history whose core violation is a 3-op new-old
    /// inversion: shrinking must strip the noise.
    #[test]
    fn shrinks_to_the_core_inversion() {
        let mut h = History::new();
        // Noise: unrelated consistent traffic.
        for round in 0..5u32 {
            h.complete_write(p(0), v(round + 10));
            h.complete_read(p(2), v(round + 10));
        }
        h.crash(p(2));
        h.recover(p(2));
        // The core violation.
        h.complete_write(p(0), v(1));
        h.complete_write(p(0), v(2));
        h.complete_read(p(1), v(2));
        h.complete_read(p(1), v(1)); // inversion
                                     // More noise after.
        h.complete_write(p(0), v(99));
        h.complete_read(p(2), v(99));
        assert!(check_persistent(&h).is_err());

        let minimal = shrink(&h, |h| check_persistent(h).is_err());
        assert!(check_persistent(&minimal).is_err());
        // Core: W(2)? Actually W(1), W(2), R(2), R(1) — but W(1) can be
        // dropped too (inversion works against any pair of writes where
        // the second read returns something stale). The shrinker should
        // land well below the original 30 events.
        assert!(
            minimal.len() <= 8,
            "expected a tiny core, got {} events: {minimal:?}",
            minimal.len()
        );
        assert_eq!(minimal.crash_count(), 0, "the crash was noise");
    }

    /// Crash/recovery pairs that are load-bearing stay.
    #[test]
    fn keeps_load_bearing_crashes() {
        let mut h = History::new();
        h.complete_write(p(0), v(1));
        // Unfinished write observed by a read, then a revert: the pending
        // write + observation is the violation; the crash makes the
        // history well-formed (without it, the writer's next op would
        // overlap).
        let _w2 = h.invoke(p(0), Op::Write(v(2)));
        h.crash(p(0));
        h.recover(p(0));
        let r1 = h.invoke(p(1), Op::Read);
        h.reply(r1, OpResult::ReadValue(v(2)));
        let r2 = h.invoke(p(1), Op::Read);
        h.reply(r2, OpResult::ReadValue(v(1)));
        // A later op by p0 forces the crash to stay (else overlapping
        // invocations).
        h.complete_read(p(0), v(1));
        assert!(check_persistent(&h).is_err());

        let minimal = shrink(&h, |h| check_persistent(h).is_err());
        assert!(check_persistent(&minimal).is_err());
        assert!(minimal.well_formed().is_ok());
    }

    /// Shrinking respects the criterion being checked: a transient
    /// violation shrinks under the transient checker.
    #[test]
    fn shrinks_transient_violations() {
        let mut h = History::new();
        h.complete_write(p(0), v(1));
        h.complete_read(p(2), v(1)); // noise
        h.complete_write(p(0), v(2));
        h.complete_read(p(1), v(2));
        h.complete_read(p(1), v(1)); // inversion
        assert!(check_transient(&h).is_err());
        let minimal = shrink(&h, |h| check_transient(h).is_err());
        assert!(check_transient(&minimal).is_err());
        assert!(minimal.len() < h.len());
    }

    #[test]
    #[should_panic(expected = "requires a violating history")]
    fn refuses_satisfying_histories() {
        let mut h = History::new();
        h.complete_write(p(0), v(1));
        let _ = shrink(&h, |h| check_persistent(h).is_err());
    }
}
