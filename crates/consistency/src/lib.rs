//! Consistency checkers for shared-memory histories in the crash-recovery
//! model.
//!
//! The paper's central definitional contribution (§III) is a pair of
//! correctness criteria extending atomicity (linearizability) to histories
//! containing *crash* and *recovery* events:
//!
//! * **Persistent atomicity** — a history is persistent atomic if it can be
//!   *completed* (every pending invocation either dropped, or given a reply
//!   placed before the same process's **next invocation**) into a history
//!   equivalent to a legal sequential one that preserves operation
//!   precedence.
//! * **Transient atomicity** — identical, except the inserted reply may be
//!   placed anywhere before the same process's **next write reply**
//!   ("weak completion", §III-C), which tolerates a crashed writer's
//!   unfinished write appearing to overlap its next write.
//!
//! This crate implements both checkers (plus plain linearizability for
//! crash-stop histories and the safe/regular criteria discussed in §VI) as
//! decision procedures over recorded [`History`] values, so the simulator
//! and integration tests can *certify* that the emulation algorithms meet
//! their criterion — and that the paper's lower-bound counterexamples
//! (runs ρ1–ρ4) really violate it.
//!
//! # Example
//!
//! ```
//! use rmem_consistency::{History, check_persistent, check_transient};
//! use rmem_types::{Op, OpResult, ProcessId, Value};
//!
//! // p0 writes 1; p1 reads 1 afterwards: atomic in any model.
//! let mut h = History::new();
//! let w = h.invoke(ProcessId(0), Op::Write(Value::from_u32(1)));
//! h.reply(w, OpResult::Written);
//! let r = h.invoke(ProcessId(1), Op::Read);
//! h.reply(r, OpResult::ReadValue(Value::from_u32(1)));
//!
//! assert!(check_persistent(&h).is_ok());
//! assert!(check_transient(&h).is_ok());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod atomicity;
pub mod epochs;
pub mod exactly_once;
pub mod freshness;
pub mod history;
pub mod intervals;
pub mod linearize;
pub mod oracle;
pub mod regular;
pub mod shrink;

pub use atomicity::{
    check_linearizable, check_per_register, check_persistent, check_transient, Criterion, Verdict,
    Violation,
};
pub use epochs::{check_per_register_epochs, stitch_moves};
pub use exactly_once::{check_exactly_once, DuplicateApplication, ExactlyOnceReport};
pub use freshness::{
    check_freshness, FreshnessKind, FreshnessOp, FreshnessReport, FreshnessViolation,
};
pub use history::{Event, History, WellFormedError};
pub use regular::{check_regular_swmr, check_safe_swmr};
pub use shrink::shrink;
