//! Translation of histories into operation intervals under a completion
//! rule.
//!
//! Both atomicity checkers reduce to the same question: *does some
//! completion of the history linearize?* Rather than enumerating reply
//! positions, we exploit a monotonicity fact: inserting a pending
//! operation's reply as **late as the completion rule allows** only
//! enlarges its interval, and a larger interval admits strictly more
//! linearizations. So each pending operation kept by a completion is
//! represented by the interval from its invocation to its *bound*:
//!
//! * persistent atomicity (§III-B): the next **invocation** by the same
//!   process — replies must land before it;
//! * transient atomicity (§III-C): the next **write reply** by the same
//!   process — the "weak completion" that lets an unfinished write overlap
//!   subsequent operations up to the next write's response.
//!
//! What still needs enumeration is the *keep or drop* choice for each
//! pending write (a pending read constrains without enabling anything, so
//! dropping it is always optimal and we do so eagerly — see
//! [`crate::atomicity`]).

use rmem_types::{Op, OpId, OpKind, OpResult, Value};

use crate::history::{Event, History};

/// The completion rule determining how far a pending operation's reply may
/// be postponed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompletionRule {
    /// Persistent atomicity: reply before the process's next invocation.
    Persistent,
    /// Transient atomicity: reply before the process's next write reply.
    Transient,
}

/// One operation as an interval over event indices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IntervalOp {
    /// The operation id.
    pub op: OpId,
    /// Read or write.
    pub kind: OpKind,
    /// For writes: the written value.
    pub write_value: Option<Value>,
    /// For completed reads: the returned value.
    pub read_value: Option<Value>,
    /// Event index of the invocation.
    pub inv: usize,
    /// Exclusive upper bound on the linearization interval: the reply's
    /// event index for completed operations, the completion-rule bound for
    /// pending ones (`usize::MAX` when unbounded).
    pub end: usize,
    /// Whether the operation was pending in the original history.
    pub pending: bool,
}

impl IntervalOp {
    /// Whether this op must be linearized before `other` (its interval
    /// ends before the other's begins).
    pub fn precedes(&self, other: &IntervalOp) -> bool {
        self.end < other.inv
    }
}

/// The intervals extracted from a history: completed operations plus the
/// kept-or-dropped choice space of pending writes.
#[derive(Debug, Clone)]
pub struct Intervals {
    /// Operations that are definitely part of every completion: completed
    /// reads and writes (rejected invocations are excluded — they never
    /// started an operation).
    pub fixed: Vec<IntervalOp>,
    /// Pending writes, each of which a completion may keep (with the
    /// rule's bound as interval end) or drop.
    pub optional_writes: Vec<IntervalOp>,
}

/// Extracts intervals from `history` under `rule`.
///
/// Pending reads are dropped eagerly (always sound, see module docs).
/// Operations that were rejected ([`OpResult::Rejected`]) never happened
/// and are excluded entirely.
pub fn extract(history: &History, rule: CompletionRule) -> Intervals {
    let events = history.events();

    // First pass: invocation/reply indices and metadata per op.
    struct Raw {
        op: OpId,
        operation: Op,
        inv: usize,
        reply: Option<(usize, OpResult)>,
    }
    let mut raws: Vec<Raw> = Vec::new();
    let mut index_of: std::collections::HashMap<OpId, usize> = std::collections::HashMap::new();
    for (i, ev) in events.iter().enumerate() {
        match ev {
            Event::Invoke { op, operation } => {
                index_of.insert(*op, raws.len());
                // Addressed forms are normalized defensively; multi-register
                // histories are partitioned *before* extraction (see
                // `atomicity::check_with_rule`).
                raws.push(Raw {
                    op: *op,
                    operation: operation.clone().normalized(),
                    inv: i,
                    reply: None,
                });
            }
            Event::Reply { op, result } => {
                if let Some(&ri) = index_of.get(op) {
                    raws[ri].reply = Some((i, result.clone()));
                }
            }
            _ => {}
        }
    }

    // Second pass: completion bounds for pending ops.
    let bound_for = |raw: &Raw| -> usize {
        let pid = raw.op.pid;
        match rule {
            CompletionRule::Persistent => {
                // Index of the next invocation by the same process.
                events
                    .iter()
                    .enumerate()
                    .skip(raw.inv + 1)
                    .find_map(|(i, ev)| match ev {
                        Event::Invoke { op, .. } if op.pid == pid => Some(i),
                        _ => None,
                    })
                    .unwrap_or(usize::MAX)
            }
            CompletionRule::Transient => {
                // Index of the next *write reply* by the same process.
                let mut write_ops: std::collections::HashSet<OpId> =
                    std::collections::HashSet::new();
                for ev in events {
                    if let Event::Invoke {
                        op,
                        operation: Op::Write(_),
                    } = ev
                    {
                        if op.pid == pid {
                            write_ops.insert(*op);
                        }
                    }
                }
                events
                    .iter()
                    .enumerate()
                    .skip(raw.inv + 1)
                    .find_map(|(i, ev)| match ev {
                        Event::Reply { op, .. } if write_ops.contains(op) => Some(i),
                        _ => None,
                    })
                    .unwrap_or(usize::MAX)
            }
        }
    };

    let mut fixed = Vec::new();
    let mut optional_writes = Vec::new();
    for raw in &raws {
        match (&raw.operation, &raw.reply) {
            // Rejected invocations never started an operation.
            (_, Some((_, OpResult::Rejected(_)))) => {}
            (Op::Write(v), Some((ri, _))) => fixed.push(IntervalOp {
                op: raw.op,
                kind: OpKind::Write,
                write_value: Some(v.clone()),
                read_value: None,
                inv: raw.inv,
                end: *ri,
                pending: false,
            }),
            (Op::Read, Some((ri, res))) => fixed.push(IntervalOp {
                op: raw.op,
                kind: OpKind::Read,
                write_value: None,
                read_value: res.read_value().cloned(),
                inv: raw.inv,
                end: *ri,
                pending: false,
            }),
            (Op::Write(v), None) => optional_writes.push(IntervalOp {
                op: raw.op,
                kind: OpKind::Write,
                write_value: Some(v.clone()),
                read_value: None,
                inv: raw.inv,
                end: bound_for(raw),
                pending: true,
            }),
            // Pending reads are dropped eagerly.
            (Op::Read, None) => {}
            // Normalized above.
            (Op::ReadAt(_) | Op::WriteAt(..), _) => unreachable!("operations are normalized"),
        }
    }

    Intervals {
        fixed,
        optional_writes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmem_types::ProcessId;

    fn p(i: u16) -> ProcessId {
        ProcessId(i)
    }

    /// The paper's Fig. 1 shape: p1 writes v1 (ok), starts v2, crashes,
    /// recovers, writes v3 (ok).
    fn fig1_history() -> History {
        let mut h = History::new();
        let w1 = h.invoke(p(1), Op::Write(Value::from_u32(1)));
        h.reply(w1, OpResult::Written);
        let _w2 = h.invoke(p(1), Op::Write(Value::from_u32(2))); // index 2
        h.crash(p(1)); // 3
        h.recover(p(1)); // 4
        let w3 = h.invoke(p(1), Op::Write(Value::from_u32(3))); // 5
        h.reply(w3, OpResult::Written); // 6
        h
    }

    #[test]
    fn persistent_bound_is_next_invocation() {
        let h = fig1_history();
        let iv = extract(&h, CompletionRule::Persistent);
        assert_eq!(iv.fixed.len(), 2);
        assert_eq!(iv.optional_writes.len(), 1);
        let w2 = &iv.optional_writes[0];
        assert!(w2.pending);
        // Bound = index of W(v3) invocation (event 5).
        assert_eq!(w2.end, 5);
    }

    #[test]
    fn transient_bound_is_next_write_reply() {
        let h = fig1_history();
        let iv = extract(&h, CompletionRule::Transient);
        let w2 = &iv.optional_writes[0];
        // Bound = index of W(v3) reply (event 6): the unfinished write may
        // overlap W(v3).
        assert_eq!(w2.end, 6);
    }

    #[test]
    fn unbounded_when_no_subsequent_activity() {
        let mut h = History::new();
        let _w = h.invoke(p(0), Op::Write(Value::from_u32(9)));
        h.crash(p(0));
        for rule in [CompletionRule::Persistent, CompletionRule::Transient] {
            let iv = extract(&h, rule);
            assert_eq!(iv.optional_writes[0].end, usize::MAX);
        }
    }

    #[test]
    fn transient_bound_skips_read_replies() {
        let mut h = History::new();
        let _w = h.invoke(p(0), Op::Write(Value::from_u32(1))); // 0 pending
        h.crash(p(0)); // 1
        h.recover(p(0)); // 2
        let r = h.invoke(p(0), Op::Read); // 3
        h.reply(r, OpResult::ReadValue(Value::bottom())); // 4
        let w2 = h.invoke(p(0), Op::Write(Value::from_u32(2))); // 5
        h.reply(w2, OpResult::Written); // 6
        let iv = extract(&h, CompletionRule::Transient);
        // The read reply at 4 does not bound the pending write; the write
        // reply at 6 does.
        assert_eq!(iv.optional_writes[0].end, 6);
        // Persistent bound is the read invocation at 3.
        let ivp = extract(&h, CompletionRule::Persistent);
        assert_eq!(ivp.optional_writes[0].end, 3);
    }

    #[test]
    fn pending_reads_are_dropped() {
        let mut h = History::new();
        let _r = h.invoke(p(0), Op::Read);
        h.crash(p(0));
        let iv = extract(&h, CompletionRule::Persistent);
        assert!(iv.fixed.is_empty());
        assert!(iv.optional_writes.is_empty());
    }

    #[test]
    fn rejected_operations_are_excluded() {
        let mut h = History::new();
        let r = h.invoke(p(0), Op::Read);
        h.reply(r, OpResult::Rejected(rmem_types::RejectReason::Busy));
        let iv = extract(&h, CompletionRule::Persistent);
        assert!(iv.fixed.is_empty());
    }

    #[test]
    fn precedes_uses_interval_order() {
        let a = IntervalOp {
            op: OpId::new(p(0), 0),
            kind: OpKind::Write,
            write_value: Some(Value::from_u32(1)),
            read_value: None,
            inv: 0,
            end: 1,
            pending: false,
        };
        let b = IntervalOp {
            op: OpId::new(p(1), 0),
            inv: 2,
            end: 3,
            ..a.clone()
        };
        let c = IntervalOp {
            op: OpId::new(p(2), 0),
            inv: 1,
            end: 4,
            ..a.clone()
        };
        assert!(a.precedes(&b));
        assert!(!a.precedes(&c)); // c starts at 1, a ends at 1: concurrent
        assert!(!b.precedes(&a));
    }
}
