//! The lease-freshness oracle: a targeted checker for zero-round reads.
//!
//! Tag leases let a client answer a read from local memory, with no
//! quorum round at all. The full atomicity checkers still adjudicate
//! such histories — a leased read is an ordinary two-sided interval —
//! but when a lease bug produces a violation, the generic checkers
//! report it as "no legal linearization", which names neither the lease
//! nor the stale value. This module checks the **freshness invariant**
//! directly:
//!
//! > **A leased read must never return a value older than any value
//! > returned after a completed write.**
//!
//! Operationally: order operations by real (or virtual) time, maintain
//! the *committed version frontier* — the highest version evidenced by
//! any operation completed so far (a write's own version, or the
//! version some read returned) — and demand that every leased read
//! returns at least the frontier as of its **invocation**. An unleased
//! read is frontier *evidence* but is never policed here (the
//! atomicity checkers own it); that split is what makes a failure
//! report name the lease machinery specifically.
//!
//! The check is sound for any monotone clock shared by all recorded
//! operations: virtual simulator time, or a single client machine's
//! monotonic clock. It is *one-directional* — passing it does not prove
//! atomicity (use the real checkers for that); failing it proves a
//! stale leased read with a concrete witness.

/// What one recorded operation did, version-wise.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FreshnessKind {
    /// A completed write that installed `version`.
    Write {
        /// The version (monotone per register: tag sequence number, or
        /// any caller-chosen order-isomorphic label) this write
        /// installed.
        version: u64,
    },
    /// A completed read that returned the value labelled `version`
    /// (`0` conventionally labels the initial ⊥).
    Read {
        /// The version of the value the read returned.
        version: u64,
        /// Whether the read was served by a client-held lease (zero
        /// rounds). Only leased reads are policed; unleased reads only
        /// feed the frontier.
        leased: bool,
    },
}

/// One completed operation on **one register**, on a clock shared by
/// every operation handed to [`check_freshness`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FreshnessOp {
    /// When the operation was invoked.
    pub invoked_at: u64,
    /// When it completed (must be ≥ `invoked_at`).
    pub completed_at: u64,
    /// What it did.
    pub kind: FreshnessKind,
}

/// A stale leased read: the concrete witness pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FreshnessViolation {
    /// The offending leased read.
    pub read: FreshnessOp,
    /// The version the read returned.
    pub returned: u64,
    /// The committed frontier as of the read's invocation — the version
    /// it was required to reach.
    pub frontier: u64,
}

impl std::fmt::Display for FreshnessViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "stale leased read: invoked at {} it returned version {}, but version {} \
             was already committed (evidenced by an operation completed before the \
             read began)",
            self.read.invoked_at, self.returned, self.frontier
        )
    }
}

/// What a passing [`check_freshness`] saw.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FreshnessReport {
    /// Operations examined.
    pub ops: usize,
    /// Leased reads policed against the frontier.
    pub leased_reads: usize,
    /// The final committed frontier.
    pub frontier: u64,
}

/// Checks every leased read in `ops` against the committed version
/// frontier as of its invocation. `ops` may be in any order; all
/// operations must concern **one** register (run the oracle per key).
///
/// # Errors
///
/// Returns the first (earliest-invoked) stale leased read as a
/// [`FreshnessViolation`].
pub fn check_freshness(ops: &[FreshnessOp]) -> Result<FreshnessReport, FreshnessViolation> {
    // Frontier evidence: (completion time, version), prefix-maxed after
    // sorting, so "highest version committed by time t" is one binary
    // search.
    let mut evidence: Vec<(u64, u64)> = ops
        .iter()
        .map(|op| {
            let version = match op.kind {
                FreshnessKind::Write { version } => version,
                FreshnessKind::Read { version, .. } => version,
            };
            (op.completed_at, version)
        })
        .collect();
    evidence.sort_unstable();
    let mut running = 0u64;
    for entry in &mut evidence {
        running = running.max(entry.1);
        entry.1 = running;
    }
    let frontier_at = |t: u64| -> u64 {
        // Highest version among operations completed at or before `t`.
        let idx = evidence.partition_point(|&(done, _)| done <= t);
        if idx == 0 {
            0
        } else {
            evidence[idx - 1].1
        }
    };

    let mut leased: Vec<&FreshnessOp> = ops
        .iter()
        .filter(|op| matches!(op.kind, FreshnessKind::Read { leased: true, .. }))
        .collect();
    leased.sort_unstable_by_key(|op| op.invoked_at);
    let mut policed = 0usize;
    for read in leased {
        let FreshnessKind::Read { version, .. } = read.kind else {
            unreachable!("filtered to reads");
        };
        let frontier = frontier_at(read.invoked_at);
        if version < frontier {
            return Err(FreshnessViolation {
                read: *read,
                returned: version,
                frontier,
            });
        }
        policed += 1;
    }
    Ok(FreshnessReport {
        ops: ops.len(),
        leased_reads: policed,
        frontier: evidence.last().map_or(0, |&(_, v)| v),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write(invoked_at: u64, completed_at: u64, version: u64) -> FreshnessOp {
        FreshnessOp {
            invoked_at,
            completed_at,
            kind: FreshnessKind::Write { version },
        }
    }

    fn read(invoked_at: u64, completed_at: u64, version: u64, leased: bool) -> FreshnessOp {
        FreshnessOp {
            invoked_at,
            completed_at,
            kind: FreshnessKind::Read { version, leased },
        }
    }

    #[test]
    fn fresh_leased_reads_pass() {
        let report = check_freshness(&[
            write(0, 10, 1),
            read(20, 20, 1, true),
            write(30, 40, 2),
            read(50, 50, 2, true),
        ])
        .expect("fresh");
        assert_eq!(report.leased_reads, 2);
        assert_eq!(report.frontier, 2);
    }

    #[test]
    fn a_leased_read_behind_a_completed_write_is_a_violation() {
        let err = check_freshness(&[
            write(0, 10, 1),
            write(20, 30, 2),
            // Invoked at 35, after the version-2 write completed — but
            // served version 1 from a lease that should be dead.
            read(35, 35, 1, true),
        ])
        .expect_err("stale");
        assert_eq!(err.returned, 1);
        assert_eq!(err.frontier, 2);
        assert!(err.to_string().contains("stale leased read"));
    }

    #[test]
    fn a_concurrent_leased_read_may_return_either_side() {
        // The write completes at 30; a leased read invoked at 25 —
        // concurrent with it — may still return version 1.
        check_freshness(&[write(0, 10, 1), write(20, 30, 2), read(25, 40, 1, true)])
            .expect("concurrent reads are not stale");
    }

    #[test]
    fn unleased_reads_feed_the_frontier_but_are_not_policed() {
        // The unleased read proves version 2 committed by t=30; the
        // later leased read must then reach it…
        let err = check_freshness(&[
            write(0, 10, 1),
            read(20, 30, 2, false),
            read(40, 40, 1, true),
        ])
        .expect_err("the unleased read's evidence binds");
        assert_eq!(err.frontier, 2);
        // …while a stale *unleased* read is out of scope here (the
        // atomicity checkers own it).
        check_freshness(&[write(0, 10, 1), write(20, 30, 2), read(40, 50, 1, false)])
            .expect("unleased reads are not policed");
    }

    #[test]
    fn empty_and_read_only_histories_pass() {
        assert_eq!(check_freshness(&[]).unwrap().leased_reads, 0);
        let report = check_freshness(&[read(0, 5, 0, true), read(6, 6, 0, true)]).expect("⊥ reads");
        assert_eq!(report.leased_reads, 2);
    }
}
