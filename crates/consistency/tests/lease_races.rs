//! Freshness sweep for tag leases: concurrent writers vs leased readers.
//!
//! A lease turns a read into **zero** rounds: the coordinator answers
//! from a client-held grant without sending a datagram. That is exactly
//! the mechanism most likely to smuggle a stale value past a completed
//! write, so these tests race writers against leased readers across many
//! seeds and adjudicate twice: the full criterion checkers certify every
//! history, and the [`check_freshness`] oracle polices every zero-round
//! read against the committed version frontier — **a leased read must
//! never return a value older than any value returned after a completed
//! write.**
//!
//! The writer writes *distinct, increasing* values so each read's result
//! names the exact version it observed; `rounds == 0` marks the leased
//! reads. A sweep that never produced a zero-round read would be testing
//! nothing, so the tests also demand the lease demonstrably fired — and
//! that contended reads still fell back to 1–2 rounds.

use std::sync::Arc;

use rmem_consistency::{
    check_freshness, check_persistent, check_transient, FreshnessKind, FreshnessOp,
};
use rmem_core::{Flavor, SharedMemory};
use rmem_sim::workload::ClosedLoop;
use rmem_sim::{ClusterConfig, Simulation, Trace};
use rmem_types::{AutomatonFactory, Micros, Op, OpKind, ProcessId, Value};

/// Virtual-time lease horizon. Long enough that a reader's think time
/// (40–90µs) fits many reads inside one grant; short enough that the
/// replica write fence (horizon + horizon/4) doesn't serialize the run.
const LEASE_MICROS: u64 = 1_500;

fn p(i: u16) -> ProcessId {
    ProcessId(i)
}

fn v(x: u32) -> Value {
    Value::from_u32(x)
}

/// A writer loop whose writes carry distinct increasing values `1..=n`,
/// so a value doubles as a version number for the freshness oracle.
fn versioned_writer(pid: ProcessId, n: u32, think: Micros) -> ClosedLoop {
    ClosedLoop {
        pid,
        ops: (1..=n).map(|i| Op::Write(v(i))).collect(),
        think,
        start_after: Micros(10),
    }
}

fn dump_trace_timeline(trace: &Trace) {
    eprintln!("--- trace timeline (virtual µs) ---");
    for o in trace.operations() {
        let end = o
            .completed_at
            .map(|t| t.as_micros().to_string())
            .unwrap_or_else(|| "pending".into());
        eprintln!(
            "  [{:>7}..{:>7}] {:?} {:?} rounds={} result={:?}",
            o.invoked_at.as_micros(),
            end,
            o.op,
            o.kind,
            o.rounds,
            o.result,
        );
    }
}

/// Lowers a completed trace into per-register freshness ops. The sweep
/// runs single-register workloads, so the whole trace is one oracle
/// call; the write's value *is* its version, a read's returned value
/// names the version it saw (⊥ → 0), and `rounds == 0` identifies the
/// leased reads.
fn freshness_ops(trace: &Trace) -> Vec<FreshnessOp> {
    trace
        .operations()
        .iter()
        .filter(|o| o.is_completed())
        .map(|o| {
            let kind = match (&o.operation, o.kind) {
                (Op::Write(value), _) => FreshnessKind::Write {
                    version: u64::from(value.as_u32().expect("writer writes u32 versions")),
                },
                (Op::Read, OpKind::Read) => FreshnessKind::Read {
                    version: o
                        .result
                        .as_ref()
                        .and_then(|r| r.read_value())
                        .and_then(Value::as_u32)
                        .map_or(0, u64::from),
                    leased: o.rounds == 0,
                },
                other => panic!("unexpected op/kind pair {other:?}"),
            };
            FreshnessOp {
                invoked_at: o.invoked_at.as_micros(),
                completed_at: o.completed_at.expect("filtered to completed").as_micros(),
                kind,
            }
        })
        .collect()
}

/// Writers vs leased readers across 12 seeds, for both crash-recovery
/// flavors: every history certifies under its criterion, every
/// zero-round read is fresh, and the sweep demonstrably exercises the
/// lease (zero rounds), the fast path (one round) and the contended
/// fallback (two rounds).
#[test]
fn leased_sweeps_certify_and_never_serve_stale_reads() {
    type Check = fn(rmem_consistency::History) -> Result<(), String>;
    let cases: Vec<(Arc<dyn AutomatonFactory>, &str, Check)> = vec![
        (
            SharedMemory::factory(Flavor::persistent().with_lease(LEASE_MICROS)),
            "persistent",
            |h| check_persistent(&h).map(|_| ()).map_err(|e| e.to_string()),
        ),
        (
            SharedMemory::factory(Flavor::transient().with_lease(LEASE_MICROS)),
            "transient",
            |h| check_transient(&h).map(|_| ()).map_err(|e| e.to_string()),
        ),
    ];
    for (factory, name, check) in cases {
        let mut leased_reads = 0u32;
        let mut fast_reads = 0u32;
        let mut fallback_reads = 0u32;
        let mut policed = 0usize;
        for seed in 0..12u64 {
            let mut sim = Simulation::new(ClusterConfig::new(3), factory.clone(), seed);
            // A writer installing versions 1..=12 races two readers. The
            // writer's think time leaves quiescent stretches where a read
            // earns a grant, and the next read lands inside the horizon —
            // while the write bursts force revocations and fallbacks.
            sim.add_closed_loop(versioned_writer(p(0), 12, Micros(60)));
            sim.add_closed_loop(ClosedLoop::reads(p(1), 24).with_think(Micros(40)));
            sim.add_closed_loop(ClosedLoop::reads(p(2), 24).with_think(Micros(90)));
            let report = sim.run();
            let completed = report
                .trace
                .operations()
                .iter()
                .filter(|o| o.is_completed())
                .count();
            assert_eq!(completed, 60, "{name}/seed {seed}: all ops complete");
            check(report.trace.to_history()).unwrap_or_else(|e| {
                dump_trace_timeline(&report.trace);
                panic!("{name}/seed {seed}: criterion violated: {e}")
            });
            let ops = freshness_ops(&report.trace);
            let fresh = check_freshness(&ops).unwrap_or_else(|violation| {
                dump_trace_timeline(&report.trace);
                panic!("{name}/seed {seed}: {violation}")
            });
            policed += fresh.leased_reads;
            for rounds in report.trace.rounds(OpKind::Read) {
                match rounds {
                    0 => leased_reads += 1,
                    1 => fast_reads += 1,
                    2 => fallback_reads += 1,
                    other => panic!("{name}/seed {seed}: impossible round count {other}"),
                }
            }
        }
        assert!(
            leased_reads > 0,
            "{name}: the sweep must produce zero-round leased reads — otherwise \
             the freshness oracle polices nothing"
        );
        assert_eq!(
            policed as u32, leased_reads,
            "{name}: every zero-round read must have been policed"
        );
        assert!(
            fast_reads > 0,
            "{name}: quiescent reads must still earn (and re-earn) grants via \
             the one-round fast path"
        );
        assert!(
            fallback_reads > 0,
            "{name}: contended reads must still fall back — if nothing ever \
             pays the write-back, the agreement gate is broken"
        );
    }
}

/// The oracle itself must bite on this workload shape: corrupting one
/// leased read in a passing trace to an older version is caught with a
/// witness naming the lease. Guards against the sweep green-washing
/// because the conversion dropped the `leased` bit or the versions.
#[test]
fn the_oracle_catches_a_corrupted_leased_read() {
    // Scan seeds until a run yields a leased read invoked after version 3
    // committed — the raw material for the corruption.
    let factory = SharedMemory::factory(Flavor::persistent().with_lease(LEASE_MICROS));
    let (mut ops, victim) = (0..12u64)
        .find_map(|seed| {
            let mut sim = Simulation::new(ClusterConfig::new(3), factory.clone(), seed);
            sim.add_closed_loop(versioned_writer(p(0), 12, Micros(60)));
            sim.add_closed_loop(ClosedLoop::reads(p(1), 24).with_think(Micros(40)));
            sim.add_closed_loop(ClosedLoop::reads(p(2), 24).with_think(Micros(90)));
            let ops = freshness_ops(&sim.run().trace);
            check_freshness(&ops).expect("the unmodified trace is fresh");
            let committed_3 = ops
                .iter()
                .filter(|o| match o.kind {
                    FreshnessKind::Write { version } => version >= 3,
                    FreshnessKind::Read { version, .. } => version >= 3,
                })
                .map(|o| o.completed_at)
                .min()
                .expect("the writer installs 12 versions");
            let victim = ops.iter().position(|o| {
                o.invoked_at > committed_3
                    && matches!(o.kind, FreshnessKind::Read { leased: true, .. })
            })?;
            Some((ops, victim))
        })
        .expect("some seed must produce a late leased read");
    // Claim the victim saw version 1: the oracle must name it.
    ops[victim].kind = FreshnessKind::Read {
        version: 1,
        leased: true,
    };
    let violation = check_freshness(&ops).expect_err("the stale read must be caught");
    assert_eq!(violation.returned, 1);
    assert!(violation.frontier >= 3);
}
