//! Direct checker tests on multi-register histories: locality-based
//! partitioning, per-register verdicts, and interactions between
//! registers sharing processes and crashes.

use rmem_consistency::{check_persistent, check_transient, History};
use rmem_types::{Op, OpResult, ProcessId, RegisterId, Value};

fn p(i: u16) -> ProcessId {
    ProcessId(i)
}

fn r(i: u16) -> RegisterId {
    RegisterId(i)
}

fn v(x: u32) -> Value {
    Value::from_u32(x)
}

fn write_at(h: &mut History, pid: ProcessId, reg: RegisterId, val: Value) {
    let op = h.invoke(pid, Op::WriteAt(reg, val));
    h.reply(op, OpResult::Written);
}

fn read_at(h: &mut History, pid: ProcessId, reg: RegisterId, val: Value) {
    let op = h.invoke(pid, Op::ReadAt(reg));
    h.reply(op, OpResult::ReadValue(val));
}

#[test]
fn consistent_multi_register_history_passes() {
    let mut h = History::new();
    write_at(&mut h, p(0), r(1), v(10));
    write_at(&mut h, p(1), r(2), v(20));
    read_at(&mut h, p(2), r(1), v(10));
    read_at(&mut h, p(2), r(2), v(20));
    read_at(&mut h, p(2), r(3), Value::bottom());
    assert!(check_persistent(&h).is_ok());
    assert!(check_transient(&h).is_ok());
}

#[test]
fn violation_in_one_register_fails_the_whole_memory() {
    let mut h = History::new();
    write_at(&mut h, p(0), r(1), v(10));
    read_at(&mut h, p(2), r(1), v(10)); // register 1 is fine
    write_at(&mut h, p(0), r(2), v(1));
    write_at(&mut h, p(0), r(2), v(2));
    read_at(&mut h, p(1), r(2), v(2));
    read_at(&mut h, p(1), r(2), v(1)); // register 2 inverts
    assert!(check_persistent(&h).is_err());
    assert!(check_transient(&h).is_err());
}

#[test]
fn registers_do_not_leak_values_into_each_other() {
    let mut h = History::new();
    write_at(&mut h, p(0), r(1), v(10));
    // A read of register 2 returning register 1's value is a violation
    // (register 2 was never written).
    read_at(&mut h, p(1), r(2), v(10));
    assert!(check_persistent(&h).is_err());
}

#[test]
fn same_value_in_two_registers_is_fine() {
    // Equal payloads in different registers must not confuse the
    // partitioning.
    let mut h = History::new();
    write_at(&mut h, p(0), r(1), v(7));
    write_at(&mut h, p(1), r(2), v(7));
    read_at(&mut h, p(2), r(1), v(7));
    read_at(&mut h, p(2), r(2), v(7));
    assert!(check_persistent(&h).is_ok());
}

#[test]
fn crash_events_apply_to_every_register_restriction() {
    // A writer crashes mid-write on register 2; its pending write may be
    // dropped there, while register 1 is untouched.
    let mut h = History::new();
    write_at(&mut h, p(0), r(1), v(1));
    let _w2 = h.invoke(p(0), Op::WriteAt(r(2), v(2)));
    h.crash(p(0));
    h.recover(p(0));
    read_at(&mut h, p(1), r(1), v(1));
    read_at(&mut h, p(1), r(2), Value::bottom());
    assert!(check_persistent(&h).is_ok());
}

#[test]
fn per_register_completion_bounds_are_independent() {
    // Transient weak completion: the pending write on register 2 may
    // stretch to the writer's next *register-2* write reply — a register-1
    // write in between does not bound it.
    let mut h = History::new();
    write_at(&mut h, p(0), r(2), v(1));
    let _pending = h.invoke(p(0), Op::WriteAt(r(2), v(2)));
    h.crash(p(0));
    h.recover(p(0));
    // An interposed register-1 write (completes normally).
    write_at(&mut h, p(0), r(1), v(99));
    // Now the register-2 follow-up write, with reads around it seeing the
    // resurrected v2 before w3's reply.
    let w3 = h.invoke(p(0), Op::WriteAt(r(2), v(3)));
    read_at(&mut h, p(1), r(2), v(1));
    read_at(&mut h, p(1), r(2), v(2));
    h.reply(w3, OpResult::Written);
    // Transient: v2 completes inside w3's window (register-2 bound).
    assert!(check_transient(&h).is_ok());
    // Persistent: v2 had to land before the *next invocation* — violated.
    assert!(check_persistent(&h).is_err());
}

#[test]
fn mixed_default_and_addressed_forms_partition_together() {
    let mut h = History::new();
    // Op::Write and Op::WriteAt(r0) are the same register.
    let w = h.invoke(p(0), Op::Write(v(1)));
    h.reply(w, OpResult::Written);
    write_at(&mut h, p(1), r(0), v(2));
    read_at(&mut h, p(2), r(0), v(2));
    let rr = h.invoke(p(2), Op::Read);
    h.reply(rr, OpResult::ReadValue(v(1))); // inversion within register 0
    assert!(check_persistent(&h).is_err());
}

#[test]
fn shrinking_works_on_multi_register_histories() {
    let mut h = History::new();
    // Noise on registers 1 and 3.
    for i in 0..4 {
        write_at(&mut h, p(0), r(1), v(100 + i));
        read_at(&mut h, p(2), r(1), v(100 + i));
    }
    write_at(&mut h, p(0), r(3), v(555));
    // Core violation on register 2.
    write_at(&mut h, p(0), r(2), v(1));
    write_at(&mut h, p(0), r(2), v(2));
    read_at(&mut h, p(1), r(2), v(2));
    read_at(&mut h, p(1), r(2), v(1));
    assert!(check_persistent(&h).is_err());
    let minimal = rmem_consistency::shrink(&h, |h| check_persistent(h).is_err());
    assert!(check_persistent(&minimal).is_err());
    assert!(
        minimal.registers().len() == 1,
        "only register 2 should remain: {minimal:?}"
    );
    assert!(minimal.len() <= 8);
}
