//! Regression oracle for the one-round read fast path.
//!
//! The fast path changes **when** a read may return (after one round, on
//! a unanimous quorum of durable tags) but not **what** the checkers must
//! accept: a fast-path read is still a two-sided interval of the history,
//! and the criteria are unchanged. What must never happen is the fast
//! path firing where it is unsafe — under contended tags, the write-back
//! has to run or the new-old inversion of Theorem 2 comes back. These
//! tests hammer exactly those races and let the checkers adjudicate: the
//! emulation keeps its criterion on every seed, the contended reads
//! demonstrably fall back (2 rounds), and the quiescent ones demonstrably
//! use the optimisation (1 round) — so a regression in either direction
//! fails loudly.

use std::sync::Arc;

use rmem_consistency::{check_persistent, check_transient};
use rmem_core::{Persistent, Transient};
use rmem_sim::workload::ClosedLoop;
use rmem_sim::{ClusterConfig, PlannedEvent, Schedule, Simulation};
use rmem_types::{AutomatonFactory, Micros, Op, OpKind, ProcessId, Value};

fn p(i: u16) -> ProcessId {
    ProcessId(i)
}

fn v(x: u32) -> Value {
    Value::from_u32(x)
}

/// Dump-on-failure: the trace-derived operation timeline (virtual-time
/// intervals, rounds, results) — the sim-side analogue of the real
/// runtime's flight-recorder dump, printed before a certification panic
/// so the violating interleaving survives into the CI log.
fn dump_trace_timeline(trace: &rmem_sim::Trace) {
    eprintln!("--- trace timeline (virtual µs) ---");
    for o in trace.operations() {
        let end = o
            .completed_at
            .map(|t| t.as_micros().to_string())
            .unwrap_or_else(|| "pending".into());
        eprintln!(
            "  [{:>7}..{:>7}] {:?} {:?} rounds={} result={:?}",
            o.invoked_at.as_micros(),
            end,
            o.op,
            o.kind,
            o.rounds,
            o.result,
        );
    }
}

/// Write/read races across many seeds: every run must keep its criterion,
/// and across the sweep both read paths must be exercised — the fallback
/// under contention and the fast path in the quiescent stretches.
#[test]
fn contended_runs_certify_and_exercise_both_read_paths() {
    type Check = fn(rmem_consistency::History) -> Result<(), String>;
    let cases: Vec<(Arc<dyn AutomatonFactory>, &str, Check)> = vec![
        (Persistent::factory(), "persistent", |h| {
            check_persistent(&h).map(|_| ()).map_err(|e| e.to_string())
        }),
        (Transient::factory(), "transient", |h| {
            check_transient(&h).map(|_| ()).map_err(|e| e.to_string())
        }),
    ];
    for (factory, name, check) in cases {
        let mut fast_reads = 0u32;
        let mut fallback_reads = 0u32;
        for seed in 0..12u64 {
            let mut sim = Simulation::new(ClusterConfig::new(3), factory.clone(), seed);
            // A writer hammering the register with barely any think time,
            // and two readers racing it: most reads land inside some
            // write's propagation window.
            sim.add_closed_loop(ClosedLoop::writes(p(0), v(1), 12).with_think(Micros(60)));
            sim.add_closed_loop(ClosedLoop::reads(p(1), 12).with_think(Micros(40)));
            sim.add_closed_loop(ClosedLoop::reads(p(2), 12).with_think(Micros(90)));
            let report = sim.run();
            let completed = report
                .trace
                .operations()
                .iter()
                .filter(|o| o.is_completed())
                .count();
            assert_eq!(completed, 36, "{name}/seed {seed}: all ops complete");
            check(report.trace.to_history()).unwrap_or_else(|e| {
                dump_trace_timeline(&report.trace);
                panic!("{name}/seed {seed}: criterion violated: {e}")
            });
            for rounds in report.trace.rounds(OpKind::Read) {
                match rounds {
                    1 => fast_reads += 1,
                    2 => fallback_reads += 1,
                    other => panic!("{name}/seed {seed}: impossible round count {other}"),
                }
            }
        }
        assert!(
            fallback_reads > 0,
            "{name}: the contended sweep must force fallbacks — if every read \
             fast-pathed, the agreement gate is broken"
        );
        assert!(
            fast_reads > 0,
            "{name}: the sweep must also exercise the fast path"
        );
    }
}

/// A pinned mid-propagation race: the read's quorum sees the racing
/// write's tag volatile at one replica — the fast path must not fire, the
/// read pays its write-back (2 rounds), and the history stays atomic.
#[test]
fn read_racing_a_write_propagation_pays_the_write_back() {
    let mut sim = Simulation::new(ClusterConfig::new(3), Persistent::factory(), 5).with_schedule(
        Schedule::new()
            .at(1_000, PlannedEvent::Invoke(p(0), Op::Write(v(7))))
            // The persistent write's query round + pre-log take ≈400µs;
            // the propagation broadcast lands at the replicas ≈1510µs and
            // their logs complete ≈1710µs. A read at 1450µs collects its
            // acks inside that window: one replica answers with the new
            // tag still volatile (durable = false) or the quorum
            // disagrees — either way the fast path must stand down.
            .at(1_450, PlannedEvent::Invoke(p(1), Op::Read)),
    );
    let report = sim.run();
    let ops = report.trace.operations();
    assert!(ops.iter().all(|o| o.is_completed()));
    let read = ops.iter().find(|o| o.kind == OpKind::Read).unwrap();
    assert_eq!(
        read.rounds, 2,
        "a read racing the propagation must fall back to the write-back"
    );
    check_persistent(&report.trace.to_history()).expect("the race must stay persistent atomic");
}

/// The flip side, same shape: a read well clear of any write completes in
/// one round — and the history is just as atomic. Together with the race
/// above this pins that the *condition* (unanimous durable tags), not the
/// timing, decides the path.
#[test]
fn quiescent_read_after_the_same_write_fast_paths() {
    let mut sim = Simulation::new(ClusterConfig::new(3), Persistent::factory(), 5).with_schedule(
        Schedule::new()
            .at(1_000, PlannedEvent::Invoke(p(0), Op::Write(v(7))))
            // 20ms later everything is durable everywhere.
            .at(21_000, PlannedEvent::Invoke(p(1), Op::Read)),
    );
    let report = sim.run();
    let read = report
        .trace
        .operations()
        .iter()
        .find(|o| o.kind == OpKind::Read)
        .unwrap();
    assert!(read.is_completed());
    assert_eq!(read.rounds, 1, "the quiescent read must take the fast path");
    assert_eq!(
        read.result.as_ref().unwrap().read_value().unwrap().as_u32(),
        Some(7)
    );
    check_persistent(&report.trace.to_history()).expect("persistent atomicity");
}
