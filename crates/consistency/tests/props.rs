//! Property tests cross-validating the Wing–Gong search checker against a
//! brute-force permutation oracle on randomly generated small interval
//! histories, plus random-history sanity properties of the atomicity
//! checkers.

use proptest::prelude::*;
use rmem_consistency::intervals::IntervalOp;
use rmem_consistency::linearize::linearize_register;
use rmem_consistency::oracle::brute_force_linearize;
use rmem_consistency::{check_persistent, check_transient, History};
use rmem_types::{Op, OpId, OpKind, OpResult, ProcessId, Value};

/// Random interval operations over a tiny value domain, with intervals
/// drawn over a small index space (overlap is common).
fn arb_interval_ops(max_ops: usize) -> impl Strategy<Value = Vec<IntervalOp>> {
    proptest::collection::vec(
        (
            0u16..3,         // pid
            prop::bool::ANY, // is write
            0u32..3,         // value
            0usize..12,      // inv
            1usize..6,       // duration
        ),
        0..=max_ops,
    )
    .prop_map(|raw| {
        raw.into_iter()
            .enumerate()
            .map(|(i, (pid, is_write, v, inv, dur))| {
                let kind = if is_write {
                    OpKind::Write
                } else {
                    OpKind::Read
                };
                IntervalOp {
                    op: OpId::new(ProcessId(pid), i as u64),
                    kind,
                    write_value: is_write.then(|| Value::from_u32(v)),
                    read_value: (!is_write).then(|| {
                        if v == 0 {
                            Value::bottom()
                        } else {
                            Value::from_u32(v)
                        }
                    }),
                    inv,
                    end: inv + dur,
                    pending: false,
                }
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// The search checker and the brute-force oracle agree on every small
    /// random interval history.
    #[test]
    fn checker_matches_oracle(ops in arb_interval_ops(6)) {
        let fast = linearize_register(&ops).is_some();
        let slow = brute_force_linearize(&ops).is_some();
        prop_assert_eq!(fast, slow, "disagreement on {:?}", ops);
    }

    /// A returned witness is itself a valid linearization: precedence and
    /// register semantics hold along it.
    #[test]
    fn witness_is_sound(ops in arb_interval_ops(6)) {
        if let Some(witness) = linearize_register(&ops) {
            prop_assert_eq!(witness.len(), ops.len());
            // Replay the witness.
            let pos: std::collections::HashMap<_, _> =
                witness.iter().enumerate().map(|(i, op)| (*op, i)).collect();
            for a in &ops {
                for b in &ops {
                    if a.op != b.op && a.precedes(b) {
                        prop_assert!(pos[&a.op] < pos[&b.op], "precedence violated");
                    }
                }
            }
            let mut current: Option<&Value> = None;
            for opid in &witness {
                let op = ops.iter().find(|o| o.op == *opid).unwrap();
                match op.kind {
                    OpKind::Write => current = op.write_value.as_ref(),
                    OpKind::Read => {
                        let rv = op.read_value.as_ref().unwrap();
                        match current {
                            Some(cv) => prop_assert_eq!(rv, cv),
                            None => prop_assert!(rv.is_bottom()),
                        }
                    }
                }
            }
        }
    }
}

/// Random *sequential* histories (each op completes before the next
/// starts, globally) where every read returns the latest written value:
/// always atomic under both criteria.
fn arb_legal_sequential_history() -> impl Strategy<Value = History> {
    proptest::collection::vec((0u16..3, prop::bool::ANY, 1u32..5), 0..10).prop_map(|steps| {
        let mut h = History::new();
        let mut current: Option<u32> = None;
        for (pid, is_write, v) in steps {
            if is_write {
                h.complete_write(ProcessId(pid), Value::from_u32(v));
                current = Some(v);
            } else {
                let val = current.map(Value::from_u32).unwrap_or_else(Value::bottom);
                h.complete_read(ProcessId(pid), val);
            }
        }
        h
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Legal sequential histories satisfy both criteria.
    #[test]
    fn legal_sequential_histories_pass(h in arb_legal_sequential_history()) {
        prop_assert!(check_persistent(&h).is_ok());
        prop_assert!(check_transient(&h).is_ok());
    }

    /// Persistent atomicity implies transient atomicity (the paper's
    /// containment, §III-C): any history accepted by the persistent
    /// checker is accepted by the transient checker.
    #[test]
    fn persistent_implies_transient(
        steps in proptest::collection::vec((0u16..3, 0u8..4, 1u32..4), 0..8)
    ) {
        // Generate histories with crashes and pending ops; the containment
        // must hold whether or not the history is atomic.
        let mut h = History::new();
        let mut crashed = [false; 3];
        let mut pending: [Option<OpId>; 3] = [None; 3];
        let mut latest = Value::bottom();
        for (pid, action, v) in steps {
            let p = ProcessId(pid);
            let i = pid as usize;
            match action {
                0 if !crashed[i] && pending[i].is_none() => {
                    let op = h.invoke(p, Op::Write(Value::from_u32(v)));
                    h.reply(op, OpResult::Written);
                    latest = Value::from_u32(v);
                }
                1 if !crashed[i] && pending[i].is_none() => {
                    let op = h.invoke(p, Op::Read);
                    h.reply(op, OpResult::ReadValue(latest.clone()));
                }
                2 if !crashed[i] => {
                    if pending[i].is_none() {
                        pending[i] = Some(h.invoke(p, Op::Write(Value::from_u32(v))));
                    }
                    h.crash(p);
                    crashed[i] = true;
                    pending[i] = None;
                }
                3 if crashed[i] => {
                    h.recover(p);
                    crashed[i] = false;
                }
                _ => {}
            }
        }
        if check_persistent(&h).is_ok() {
            prop_assert!(
                check_transient(&h).is_ok(),
                "persistent-atomic history rejected by transient checker: {:?}", h
            );
        }
    }
}
