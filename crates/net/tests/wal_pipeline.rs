//! End-to-end coverage of the asynchronous durability pipeline:
//!
//! * **no-stall** — a slow fsync on one register must not delay a round
//!   on another register hosted by the same node (the ISSUE's acceptance
//!   probe, pinned with a `FaultyStorage` commit delay);
//! * **halt-on-failure** — a node whose log fails crashes cleanly
//!   (observable `store_failures`, client sees `ProcessDown`, restart
//!   recovers);
//! * **WAL-backed cluster** — kill/recover on `DiskMode::Wal` over real
//!   UDP sockets, certified per register, with group-commit fsync
//!   accounting visible in the cluster's counters.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crossbeam::channel::unbounded;
use rmem_core::{SharedMemory, Transient};
use rmem_net::{ChannelTransport, DiskMode, LocalCluster};
use rmem_net::{ClientError, ProcessRunner};
use rmem_storage::{FaultPlan, FaultyStorage, MemStorage, StableStorage};
use rmem_types::{Op, OpResult, ProcessId, RegisterId, Value};

/// A store in flight on register i must not delay a read round on
/// register j: node 0's disk commits take 150 ms, yet reads of other
/// registers through node 0 stay fast while a write's store is pending.
#[test]
fn slow_fsync_on_one_register_does_not_stall_another() {
    let delay = Duration::from_millis(150);
    let board = rmem_net::channel::Switchboard::new(3);
    let factory = SharedMemory::factory(Transient::flavor());
    let runners: Vec<ProcessRunner> = (0..3u16)
        .map(|i| {
            let (tx, rx) = unbounded();
            let transport = Arc::new(ChannelTransport::new(ProcessId(i), 3, board.clone(), tx));
            let storage: Box<dyn StableStorage> = if i == 0 {
                Box::new(
                    FaultyStorage::new(MemStorage::new(), FaultPlan::None).with_commit_delay(delay),
                )
            } else {
                Box::new(MemStorage::new())
            };
            ProcessRunner::start(factory.as_ref(), storage, transport, rx)
        })
        .collect();

    let client = runners[0].client();
    // Warm register 1 so the read below has a value (and the write's
    // slow adoption at node 0 is already behind us).
    let c_warm = runners[1].client();
    c_warm
        .write_at(RegisterId(1), Value::from_u32(7))
        .expect("warm write");
    std::thread::sleep(Duration::from_millis(300));

    // Kick off a write on register 0 through node 0: its replica store
    // at node 0 stalls 150 ms on the syncer thread.
    let writer = {
        let c = client.clone();
        std::thread::spawn(move || c.write_at(RegisterId(0), Value::from_u32(1)))
    };
    // Give the write time to reach node 0's replica and start its slow
    // commit — but less than the commit itself takes.
    std::thread::sleep(Duration::from_millis(20));

    // The probe: a read of register 1 through the same node. With the
    // store inline in the event loop this would wait out the 150 ms
    // commit; with the durability pipeline it must not.
    let t0 = Instant::now();
    let v = client
        .read_at(RegisterId(1))
        .expect("read during slow store");
    let read_latency = t0.elapsed();
    assert_eq!(v.as_u32(), Some(7));
    assert!(
        read_latency < delay / 2,
        "a read on register 1 stalled {}ms behind register 0's fsync \
         (the event loop is blocking on the disk)",
        read_latency.as_millis()
    );
    writer.join().expect("writer thread").expect("write");
    for r in runners {
        r.stop();
    }
}

/// A node whose log fails halts cleanly: the failure is counted, clients
/// get `ProcessDown` (not a hang, not a lying ack), the rest of the
/// cluster keeps serving, and a restart with a healthy disk recovers.
#[test]
fn log_failure_halts_the_node_cleanly() {
    let board = rmem_net::channel::Switchboard::new(3);
    let factory = SharedMemory::factory(Transient::flavor());
    let shared_disk = rmem_net::cluster::SharedStorage::new();
    let runners: Vec<ProcessRunner> = (0..3u16)
        .map(|i| {
            let (tx, rx) = unbounded();
            let transport = Arc::new(ChannelTransport::new(ProcessId(i), 3, board.clone(), tx));
            let storage: Box<dyn StableStorage> = if i == 0 {
                // Node 0's disk dies on its 3rd store.
                Box::new(FaultyStorage::new(
                    shared_disk.clone(),
                    FaultPlan::fail_at(vec![3]),
                ))
            } else {
                Box::new(MemStorage::new())
            };
            ProcessRunner::start(factory.as_ref(), storage, transport, rx)
        })
        .collect();

    let client = runners[1].client().with_timeout(Duration::from_secs(2));
    // Each write stores at every replica; by the second or third write
    // node 0's log has failed and the node halted.
    let mut failures_seen = false;
    for i in 0..6u32 {
        let _ = client.write_at(RegisterId(0), Value::from_u32(i));
        if runners[0].store_failures() > 0 {
            failures_seen = true;
            break;
        }
    }
    assert!(failures_seen, "the injected log failure must be counted");
    // The halt is observable and clean.
    let deadline = Instant::now() + Duration::from_secs(5);
    while !runners[0].is_halted() && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(runners[0].is_halted(), "a failed log must halt the node");
    match runners[0]
        .client()
        .with_timeout(Duration::from_millis(500))
        .read_at(RegisterId(0))
    {
        Err(ClientError::ProcessDown) | Err(ClientError::TimedOut) => {}
        other => panic!("a halted node must refuse operations, got {other:?}"),
    }
    // A majority survives: the cluster still serves.
    let v = client
        .read_at(RegisterId(0))
        .expect("majority still serves");
    assert!(v.as_u32().is_some() || v.is_bottom());
    for r in runners {
        r.stop();
    }
}

/// Kill/recover over the WAL on real UDP sockets, certified per
/// register; the counters prove the WAL's fsync economy (commits ≤
/// stores, ≥1 real group) while every ack stayed behind its fsync.
#[test]
fn wal_backed_cluster_survives_kill_recover_certified() {
    let dir = std::env::temp_dir().join(format!(
        "rmem-walcluster-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let mut cluster = LocalCluster::udp_with_disk(
        3,
        SharedMemory::factory(Transient::flavor()),
        &dir,
        DiskMode::Wal,
    )
    .expect("cluster");

    let history = Mutex::new(rmem_consistency::History::new());
    let stop = AtomicBool::new(false);
    std::thread::scope(|scope| {
        let history = &history;
        let stop = &stop;
        let clients: Vec<_> = (0..2u16)
            .map(|i| {
                cluster
                    .client(ProcessId(i))
                    .with_timeout(Duration::from_secs(5))
            })
            .collect();
        let workers: Vec<_> = clients
            .into_iter()
            .enumerate()
            .map(|(t, client)| {
                scope.spawn(move || {
                    let hpid = ProcessId(100 + t as u16);
                    for i in 0..40u32 {
                        if stop.load(Ordering::Relaxed) {
                            break;
                        }
                        let reg = RegisterId((i % 4) as u16);
                        if i % 3 == 0 {
                            let op = history.lock().unwrap().invoke(hpid, Op::ReadAt(reg));
                            match client.read_at(reg) {
                                Ok(v) => history.lock().unwrap().reply(op, OpResult::ReadValue(v)),
                                Err(ClientError::Busy) => history
                                    .lock()
                                    .unwrap()
                                    .reply(op, OpResult::Rejected(rmem_types::RejectReason::Busy)),
                                Err(e) => panic!("read failed: {e}"),
                            }
                        } else {
                            let val = Value::from_u32((t as u32 + 1) << 16 | i);
                            let op = history
                                .lock()
                                .unwrap()
                                .invoke(hpid, Op::WriteAt(reg, val.clone()));
                            match client.write_at(reg, val) {
                                Ok(()) => history.lock().unwrap().reply(op, OpResult::Written),
                                Err(ClientError::Busy) => history
                                    .lock()
                                    .unwrap()
                                    .reply(op, OpResult::Rejected(rmem_types::RejectReason::Busy)),
                                Err(e) => panic!("write failed: {e}"),
                            }
                        }
                    }
                })
            })
            .collect();

        // Mid-run: kill node 2 (its WAL survives), let traffic continue
        // on the majority, then recover it from its log.
        std::thread::sleep(Duration::from_millis(60));
        cluster.kill(ProcessId(2));
        std::thread::sleep(Duration::from_millis(60));
        cluster.restart(ProcessId(2)).expect("restart from the WAL");
        for w in workers {
            w.join().expect("worker");
        }
        stop.store(true, Ordering::Relaxed);
    });

    // Certification: whatever the interleaving and the crash, every
    // register's history is transient-atomic.
    let h = history.lock().unwrap().clone();
    for (reg, outcome) in
        rmem_consistency::check_per_register(&h, rmem_consistency::Criterion::Transient)
    {
        outcome.unwrap_or_else(|e| {
            // Dump every node's flight recorder before dying: the event
            // timelines (rounds, queued stores, group commits) around the
            // violation are the evidence a rerun cannot reproduce.
            eprintln!("{}", cluster.dump_flight_recorders(120));
            // Plus the stitched view: the per-node rings aligned onto one
            // clock (offsets from matched send/recv pairs), so the
            // interleaving around the violation reads in causal order.
            eprintln!("{}", cluster.dump_stitched(Vec::new(), 5));
            panic!("register {reg} not atomic: {e}\n{h:?}")
        });
    }

    // The recovered node actually replayed its log.
    let v = cluster
        .client(ProcessId(2))
        .read_at(RegisterId(1))
        .expect("recovered node serves");
    assert!(v.as_u32().is_some() || v.is_bottom());

    // Fsync accounting: the WAL commits once per group, so commits never
    // exceed stores and the fsync count equals the commit count.
    for pid in ProcessId::all(3) {
        let c = cluster.storage_counters(pid);
        assert!(c.stores() > 0, "{pid}: traffic must have logged");
        assert!(
            c.commits() <= c.stores(),
            "{pid}: group commit cannot commit more often than it stores"
        );
        assert_eq!(
            c.fsyncs(),
            c.commits(),
            "{pid}: the WAL costs exactly one fsync per commit"
        );
    }
    cluster.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
