//! The observability acceptance pins:
//!
//! * an injected log failure halts the node **and** the flight recorder
//!   dump contains the guilty operation's full event timeline (OpStart,
//!   its rounds and queued store, no OpComplete, the Halt marker);
//! * `LocalCluster` exposes per-node registries and recorders whose
//!   contents cover the whole op path (admission → rounds → durability).

use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::unbounded;
use rmem_core::{SharedMemory, Transient};
use rmem_net::channel::{ChannelTransport, Switchboard};
use rmem_net::{LocalCluster, ProcessRunner};
use rmem_obs::EventKind;
use rmem_storage::{FaultPlan, FaultyStorage, MemStorage, StableStorage};
use rmem_types::{ProcessId, RegisterId, Value};

/// One process, quorum of one: every ack waits on the node's own log, so
/// the write in flight when the log dies is — deterministically — the
/// guilty operation. Its timeline must survive into the dump.
#[test]
fn halt_dump_contains_the_guilty_ops_timeline() {
    let board = Switchboard::new(1);
    let factory = SharedMemory::factory(Transient::flavor());
    let (tx, rx) = unbounded();
    let transport = Arc::new(ChannelTransport::new(ProcessId(0), 1, board, tx));
    let storage: Box<dyn StableStorage> = Box::new(FaultyStorage::new(
        MemStorage::new(),
        FaultPlan::fail_at(vec![4]),
    ));
    let runner = ProcessRunner::start(factory.as_ref(), storage, transport, rx);
    let client = runner.client().with_timeout(Duration::from_secs(2));

    // Write until the injected failure bites. Completed writes were
    // fully durable (quorum of one); the first failing write is the op
    // the halt caught in flight.
    let mut guilty = None;
    for i in 0..20u64 {
        match client.write_at(RegisterId(0), Value::from_u32(i as u32)) {
            Ok(()) => {}
            Err(_) => {
                guilty = Some(i);
                break;
            }
        }
    }
    let guilty = guilty.expect("the injected log failure must fail a write");
    let deadline = Instant::now() + Duration::from_secs(5);
    while !runner.is_halted() && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(runner.is_halted(), "a failed log must halt the node");

    let recorder = runner.flight_recorder();
    assert!(
        recorder
            .halt_reason()
            .is_some_and(|r| r.contains("stable storage failed")),
        "the halt must be recorded structurally, got {:?}",
        recorder.halt_reason()
    );
    let dump = recorder.dump();
    assert_eq!(
        dump.last().map(|e| e.kind),
        Some(EventKind::Halt),
        "the dump must end with the Halt event"
    );
    // The guilty op's timeline: admitted, its round went out, its store
    // was queued — and it never completed.
    let guilty_op = Some((0u16, guilty));
    assert!(
        dump.iter()
            .any(|e| e.kind == EventKind::OpStart && e.op == guilty_op),
        "dump must contain OpStart for the guilty op p0#{guilty}"
    );
    assert!(
        !dump
            .iter()
            .any(|e| e.kind == EventKind::OpComplete && e.op == guilty_op),
        "the guilty op p0#{guilty} must not have completed"
    );
    let started_at = dump
        .iter()
        .find(|e| e.kind == EventKind::OpStart && e.op == guilty_op)
        .map(|e| e.at_micros)
        .unwrap();
    assert!(
        dump.iter()
            .any(|e| e.kind == EventKind::RoundSent && e.at_micros >= started_at),
        "the guilty op's query round must be in the dump"
    );
    assert!(
        dump.iter()
            .any(|e| e.kind == EventKind::StoreQueued && e.at_micros >= started_at),
        "the store the log failed on must be in the dump"
    );
    // The rendered timeline names the guilty op — what lands on stderr.
    let text = recorder.dump_timeline(rmem_net::runner::HALT_DUMP_EVENTS);
    assert!(
        text.contains(&format!("op=p0#{guilty}")),
        "timeline:\n{text}"
    );
    assert!(text.contains("Halt"), "timeline:\n{text}");
    assert!(text.contains("halted: stable storage failed"));
}

/// The cluster surface: per-node metrics cover the op path, the storage
/// counters are bridged into the same snapshot, and every node's flight
/// recorder renders into one labelled dump.
#[test]
fn cluster_metrics_and_recorders_cover_the_op_path() {
    let mut cluster = LocalCluster::channel(3, SharedMemory::factory(Transient::flavor())).unwrap();
    let client = cluster.client(ProcessId(0));
    for i in 0..5u32 {
        client
            .write_at(RegisterId(1), Value::from_u32(i))
            .expect("write");
        client.read_at(RegisterId(1)).expect("read");
    }

    let m = cluster.metrics(ProcessId(0));
    assert_eq!(m.counter("runner.ops_started"), 10);
    assert_eq!(m.counter("runner.ops_completed"), 10);
    assert!(m.counter("runner.msgs_out") > 0);
    assert!(m.counter("runner.msgs_in") > 0);
    assert!(m.counter("runner.stores_queued") > 0);
    assert_eq!(
        m.counter("runner.stores_queued"),
        m.counter("runner.stores_durable"),
        "every queued store must have become durable"
    );
    assert!(m.counter("syncer.commits") > 0);
    // Latency histograms: one sample per completed op, wall-clock.
    assert_eq!(m.histogram("runner.op_micros").count, 10);
    // The storage layer's counters ride along as bridged gauges.
    assert!(m.gauge("storage.stores") > 0);
    assert_eq!(
        m.gauge("storage.stores"),
        cluster.storage_counters(ProcessId(0)).stores()
    );

    // The flight recorder saw the whole life of the ops.
    let dump = cluster.flight_recorder(ProcessId(0)).dump();
    for kind in [
        EventKind::OpStart,
        EventKind::RoundSent,
        EventKind::AckRecv,
        EventKind::StoreQueued,
        EventKind::GroupCommit,
        EventKind::StoreDurable,
        EventKind::OpComplete,
    ] {
        assert!(
            dump.iter().any(|e| e.kind == kind),
            "node 0's recorder must contain {kind:?}"
        );
    }
    let all = cluster.dump_flight_recorders(32);
    for pid in 0..3 {
        assert!(all.contains(&format!("--- flight recorder p{pid} ---")));
    }
    // The snapshot serializes (the bench artifact path).
    let json = m.to_json();
    assert!(json.contains("\"runner.ops_started\":10"));
    cluster.shutdown();
}
