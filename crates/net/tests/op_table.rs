//! Property tests of the runner's per-register operation table.
//!
//! Two properties, over randomized shapes of concurrency through **one**
//! runner's client:
//!
//! 1. operations on *distinct* registers all complete — no spurious
//!    `Busy`, no hang — and the recorded history certifies atomic per
//!    register (each concurrent thread is one logical client process, so
//!    every register's restriction is a well-formed sequential history);
//! 2. operations racing on the *same* register either complete or are
//!    refused `Busy` — never an error, never a hang — and at least one in
//!    every race wins.

use std::sync::{Arc, Mutex};

use proptest::prelude::*;
use rmem_consistency::{check_per_register, Criterion, History};
use rmem_core::{SharedMemory, Transient};
use rmem_net::{ClientError, LocalCluster};
use rmem_types::{Op, OpResult, ProcessId, RegisterId, Value};

fn cluster() -> LocalCluster {
    LocalCluster::channel(3, SharedMemory::factory(Transient::flavor())).unwrap()
}

proptest! {
    // Each case spins a real-threaded 3-process cluster; keep the case
    // count modest so the sweep stays CI-sized.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Concurrent operations on distinct registers through one runner all
    /// complete and the run certifies atomic per register.
    #[test]
    fn distinct_register_ops_all_complete_and_certify(
        // How many ops (1..=3) each of 2..=6 registers issues.
        per_register in proptest::collection::vec(1usize..=3, 2..=6),
    ) {
        let mut cluster = cluster();
        let client = cluster.client(ProcessId(0));
        let history = Arc::new(Mutex::new(History::new()));
        std::thread::scope(|scope| {
            for (r, &ops) in per_register.iter().enumerate() {
                let client = client.clone();
                let history = history.clone();
                // One logical client process per register thread.
                let pid = ProcessId(r as u16);
                let reg = RegisterId(r as u16);
                scope.spawn(move || {
                    for i in 0..ops {
                        let value = Value::from_u32((r * 100 + i) as u32);
                        let op = history
                            .lock()
                            .unwrap()
                            .invoke(pid, Op::WriteAt(reg, value.clone()));
                        client.write_at(reg, value).expect("write must complete");
                        history.lock().unwrap().reply(op, OpResult::Written);
                    }
                    let op = history.lock().unwrap().invoke(pid, Op::ReadAt(reg));
                    let v = client.read_at(reg).expect("read must complete");
                    // A panicking assert: scope propagates panics, while a
                    // returned Err would be silently dropped.
                    assert_eq!(
                        v.as_u32(),
                        Some((r * 100 + ops - 1) as u32),
                        "the read must return the thread's last write"
                    );
                    history
                        .lock()
                        .unwrap()
                        .reply(op, OpResult::ReadValue(v));
                });
            }
        });
        let history = Arc::try_unwrap(history).unwrap().into_inner().unwrap();
        prop_assert_eq!(
            history.pending_ops().len(),
            0,
            "every operation got its reply"
        );
        for (reg, outcome) in check_per_register(&history, Criterion::Transient) {
            prop_assert!(
                outcome.is_ok(),
                "register {} not atomic: {:?}",
                reg,
                outcome.err()
            );
        }
        cluster.shutdown();
    }

    /// Races on one register: every outcome is Ok or Busy (never a hang,
    /// never a transport error) and someone always wins.
    #[test]
    fn same_register_races_yield_busy_never_hangs(
        threads in 2usize..=5,
        reg in 0u16..4,
    ) {
        let mut cluster = cluster();
        let client = cluster.client(ProcessId(0));
        let reg = RegisterId(reg);
        let outcomes: Vec<Result<(), ClientError>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|i| {
                    let client = client.clone();
                    scope.spawn(move || {
                        client.write_at(reg, Value::from_u32(i as u32))
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for outcome in &outcomes {
            prop_assert!(
                matches!(outcome, Ok(()) | Err(ClientError::Busy)),
                "a same-register race may only succeed or be Busy, got {:?}",
                outcome
            );
        }
        prop_assert!(
            outcomes.iter().any(Result::is_ok),
            "at least one racer must win"
        );
        // The register is idle again afterwards: a fresh op completes.
        prop_assert!(client.read_at(reg).is_ok(), "the register must not wedge");
        cluster.shutdown();
    }
}
