//! Property tests of the pipelined client's in-flight op table.
//!
//! The table is the reactor's core bookkeeping: a generation-tagged slot
//! per submitted op, acks routed back by token. Three properties, over
//! randomized ack schedules (reordered, duplicated, dropped):
//!
//! 1. every ack lands in **its own** slot — a claim returns exactly the
//!    result routed under that ticket's token, whatever order acks
//!    arrive in;
//! 2. an ack for a reclaimed slot (cancelled, or already claimed) is
//!    **counted** (`late_acks`) and **dropped** — never delivered to the
//!    slot's new tenant;
//! 3. after every ticket is settled (claimed or cancelled) the table
//!    holds zero in-flight slots and reuses them without growing — no
//!    slot leaks.
//!
//! A fourth, end-to-end property drives a real cluster through
//! [`PipelinedClient::wait_all`] and asserts the same zero-leak
//! invariant against live completions.

use proptest::prelude::*;
use proptest::TestCaseError;
use rmem_core::{SharedMemory, Transient};
use rmem_net::{Claimed, InFlightTable, LocalCluster, PipelinedClient, Routed};
use rmem_types::{OpResult, RegisterId, Value};

/// The op's identity baked into its result, so a misdelivery (ack i
/// claimed by ticket j) is detectable.
fn ack(i: usize) -> OpResult {
    OpResult::ReadValue(Value::from_u32(i as u32))
}

fn check_any_schedule(copies: Vec<usize>, shuffle: Vec<usize>) -> Result<(), TestCaseError> {
    let n = copies.len();
    let mut table = InFlightTable::new();
    let tickets: Vec<_> = (0..n)
        .map(|i| table.begin(0, RegisterId(i as u16), None))
        .collect();
    prop_assert_eq!(table.in_flight(), n);

    // Build the ack stream (op i appears `copies[i]` times), then
    // shuffle it deterministically from the random swap indices.
    let mut stream: Vec<usize> = (0..n)
        .flat_map(|i| std::iter::repeat_n(i, copies[i]))
        .collect();
    for (k, &r) in shuffle.iter().enumerate() {
        if !stream.is_empty() {
            let a = k % stream.len();
            let b = r % stream.len();
            stream.swap(a, b);
        }
    }

    let mut first_ack_routed = vec![false; n];
    let mut expected_late = 0u64;
    for &i in &stream {
        let routed = table.route(tickets[i].token(), ack(i), 1, None);
        if first_ack_routed[i] {
            prop_assert_eq!(routed, Routed::Duplicate);
            expected_late += 1;
        } else {
            prop_assert_eq!(routed, Routed::Delivered);
            first_ack_routed[i] = true;
        }
    }
    prop_assert_eq!(table.late_acks(), expected_late);

    // Claim everything: acked ops return exactly their own result,
    // dropped ones are still pending and get cancelled.
    for (i, &ticket) in tickets.iter().enumerate() {
        match table.claim(ticket) {
            Claimed::Ready(result, rounds, _) => {
                prop_assert!(
                    first_ack_routed[i],
                    "op {} never acked yet claimed Ready",
                    i
                );
                prop_assert_eq!(result, ack(i), "op {} claimed a foreign result", i);
                prop_assert_eq!(rounds, 1);
            }
            Claimed::Pending => {
                prop_assert!(
                    !first_ack_routed[i],
                    "op {}'s ack was routed but not claimable",
                    i
                );
                prop_assert!(table.cancel(ticket), "a pending op must be cancellable");
            }
            Claimed::Gone => prop_assert!(false, "op {} vanished before being settled", i),
        }
    }
    prop_assert_eq!(
        table.in_flight(),
        0,
        "settled table must hold no in-flight slots"
    );

    // Zero slot leaks: a second wave of the same size reuses every
    // slot instead of growing the table.
    let cap = table.capacity();
    let second: Vec<_> = (0..n)
        .map(|i| table.begin(0, RegisterId(i as u16), None))
        .collect();
    prop_assert_eq!(
        table.capacity(),
        cap,
        "a settled table must reuse its slots"
    );
    for t in second {
        table.cancel(t);
    }
    Ok(())
}

fn check_reclaimed_slots(n: usize, cancel_mask: Vec<bool>) -> Result<(), TestCaseError> {
    let mut table = InFlightTable::new();
    let first: Vec<_> = (0..n)
        .map(|i| table.begin(0, RegisterId(i as u16), None))
        .collect();
    // Reclaim a random subset (the "abandoned" ops).
    let abandoned: Vec<usize> = (0..n).filter(|&i| cancel_mask[i]).collect();
    for &i in &abandoned {
        prop_assert!(table.cancel(first[i]));
    }
    // New tenants: these reuse the reclaimed slots (LIFO free list),
    // bumping their generation.
    let second: Vec<_> = abandoned
        .iter()
        .map(|&i| table.begin(0, RegisterId((n + i) as u16), None))
        .collect();

    // The zombie acks arrive now. Every one must be Late.
    for &i in &abandoned {
        prop_assert_eq!(
            table.route(first[i].token(), ack(usize::MAX - i), 9, None),
            Routed::Late,
            "a reclaimed slot's old token must route Late"
        );
        prop_assert!(
            matches!(table.claim(first[i]), Claimed::Gone),
            "a cancelled ticket must claim Gone"
        );
    }
    prop_assert_eq!(table.late_acks(), abandoned.len() as u64);

    // The new tenants are untouched: still pending, and their own
    // acks still deliver.
    for (k, &t) in second.iter().enumerate() {
        prop_assert!(matches!(table.claim(t), Claimed::Pending));
        prop_assert_eq!(
            table.route(t.token(), ack(1000 + k), 2, None),
            Routed::Delivered
        );
        match table.claim(t) {
            Claimed::Ready(result, 2, None) => prop_assert_eq!(result, ack(1000 + k)),
            other => prop_assert!(false, "new tenant claim failed: {:?}", other),
        }
    }
    // Survivors of the first wave still deliver too.
    for i in (0..n).filter(|&i| !cancel_mask[i]) {
        prop_assert_eq!(
            table.route(first[i].token(), ack(i), 1, None),
            Routed::Delivered
        );
        match table.claim(first[i]) {
            Claimed::Ready(result, 1, None) => prop_assert_eq!(result, ack(i)),
            other => prop_assert!(false, "survivor claim failed: {:?}", other),
        }
    }
    prop_assert_eq!(table.in_flight(), 0);
    Ok(())
}

fn check_live_bursts(regs: usize, rounds: usize) -> Result<(), TestCaseError> {
    let mut cluster = LocalCluster::channel(3, SharedMemory::factory(Transient::flavor())).unwrap();
    let fan = PipelinedClient::fan(&cluster.clients());
    for round in 0..rounds {
        let writes: Vec<_> = (0..regs)
            .map(|r| {
                fan.submit_write(
                    r % fan.nodes(),
                    RegisterId(r as u16),
                    Value::from_u32((round * 100 + r) as u32),
                )
                .expect("submit must succeed on a live cluster")
            })
            .collect();
        for outcome in fan.wait_all(&writes) {
            let (result, _) = outcome.expect("pipelined write must complete");
            prop_assert_eq!(result, OpResult::Written);
        }
        let reads: Vec<_> = (0..regs)
            .map(|r| {
                fan.submit_read((r + 1) % fan.nodes(), RegisterId(r as u16))
                    .expect("submit must succeed on a live cluster")
            })
            .collect();
        for (r, outcome) in fan.wait_all(&reads).into_iter().enumerate() {
            let (result, _) = outcome.expect("pipelined read must complete");
            match result {
                OpResult::ReadValue(v) => prop_assert_eq!(
                    v.as_u32(),
                    Some((round * 100 + r) as u32),
                    "read {} must observe the pipelined write",
                    r
                ),
                other => prop_assert!(false, "read returned {:?}", other),
            }
        }
        prop_assert_eq!(fan.in_flight(), 0, "wait_all must leave no slot occupied");
    }
    prop_assert_eq!(
        fan.late_acks(),
        0,
        "no op was abandoned, so no ack may be late"
    );
    cluster.shutdown();
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Reordered + duplicated + dropped acks: every first ack routes to
    /// its own slot, every extra ack is counted late, every claim
    /// returns its own op's result. `copies[i]` is how many times op i's
    /// ack arrives (0 = dropped, 1 = normal, 2+ = duplicated); `shuffle`
    /// drives the swap-shuffle of the resulting ack stream.
    #[test]
    fn acks_route_to_their_own_slots_under_any_schedule(
        copies in proptest::collection::vec(0usize..=3, 4..=24),
        shuffle in proptest::collection::vec(any::<usize>(), 72..=72),
    ) {
        check_any_schedule(copies, shuffle)?;
    }

    /// An ack that arrives after its slot was reclaimed — and whose slot
    /// now hosts a new op — is dropped and counted, never delivered to
    /// the new tenant.
    #[test]
    fn late_acks_to_reclaimed_slots_never_misdeliver(
        n in 1usize..=16,
        cancel_mask in proptest::collection::vec(any::<bool>(), 16..=16),
    ) {
        check_reclaimed_slots(n, cancel_mask)?;
    }
}

proptest! {
    // Each case spins a real-threaded 3-process cluster; keep the sweep
    // CI-sized.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// End-to-end: a randomized burst of pipelined writes+reads over
    /// distinct registers all complete through `wait_all`, reads observe
    /// the pipelined writes, and the shared table ends the burst with
    /// zero in-flight slots and zero late acks.
    #[test]
    fn pipelined_bursts_settle_with_zero_slot_leaks(
        regs in 2usize..=12,
        rounds in 1usize..=3,
    ) {
        check_live_bursts(regs, rounds)?;
    }
}
