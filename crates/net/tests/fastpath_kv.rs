//! Real-runtime fast-path coverage: mixed readers and writers on real
//! threads through `LocalCluster`, with per-register atomicity checked by
//! `rmem_consistency::check_per_register` and the observed read-round
//! counts proving the one-round fast path fires on quiescent registers
//! while contended reads still fall back.

use std::sync::Mutex;

use proptest::prelude::*;
use rmem_core::{SharedMemory, Transient};
use rmem_net::LocalCluster;
use rmem_types::{Op, OpResult, ProcessId, RegisterId, Value};

/// One generated client stream: which register each operation touches and
/// whether it writes.
#[derive(Debug, Clone)]
struct ClientPlan {
    node: u16,
    ops: Vec<(u16, bool)>,
}

fn arb_plans() -> impl Strategy<Value = Vec<ClientPlan>> {
    // 3 clients × up to 8 ops over 3 registers; bias toward reads so the
    // fast path gets real traffic.
    proptest::collection::vec(
        (
            0u16..3,
            // ~30% writes (the weight draw < 3 of 10 means write).
            proptest::collection::vec((0u16..3, 0u32..10), 3..8),
        ),
        2..4,
    )
    .prop_map(|clients| {
        clients
            .into_iter()
            .map(|(node, ops)| ClientPlan {
                node,
                ops: ops.into_iter().map(|(reg, w)| (reg, w < 3)).collect(),
            })
            .collect()
    })
}

proptest! {
    // Real threads and sockets: keep the sweep small.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Whatever the interleaving, the per-register histories stay atomic
    /// and the read-round accounting stays sane (every read is 1 or 2
    /// rounds; rejected ops never count).
    #[test]
    fn mixed_threads_stay_atomic_with_the_fast_path(plans in arb_plans(), seed in 0u32..1000) {
        let cluster = LocalCluster::channel(3, SharedMemory::factory(Transient::flavor()))
            .expect("cluster");
        let history = Mutex::new(rmem_consistency::History::new());
        let rounds: Mutex<Vec<u32>> = Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            for (ci, plan) in plans.iter().enumerate() {
                let client = cluster.client(ProcessId(plan.node));
                let history = &history;
                let rounds = &rounds;
                // Each thread is its own logical client process in the
                // history: operations through one *node* may be recorded
                // slightly out of order across threads (the history lock
                // is not atomic with the runner), but each thread itself
                // is strictly sequential.
                let hpid = ProcessId(100 + ci as u16);
                scope.spawn(move || {
                    for (oi, &(reg, is_write)) in plan.ops.iter().enumerate() {
                        let reg = RegisterId(reg);
                        // Values are unique per (client, op) so the checker
                        // has discriminating power.
                        let val = Value::from_u32((seed + ci as u32) << 8 | oi as u32);
                        if is_write {
                            let op = history
                                .lock()
                                .unwrap()
                                .invoke(hpid, Op::WriteAt(reg, val.clone()));
                            match client.write_at(reg, val) {
                                Ok(()) => {
                                    history.lock().unwrap().reply(op, OpResult::Written);
                                }
                                Err(rmem_net::ClientError::Busy) => {
                                    // Same-register overlap through one node:
                                    // a legal refusal — the checkers ignore
                                    // rejected invocations.
                                    history.lock().unwrap().reply(
                                        op,
                                        OpResult::Rejected(rmem_types::RejectReason::Busy),
                                    );
                                }
                                Err(e) => panic!("write failed: {e}"),
                            }
                        } else {
                            let op = history
                                .lock()
                                .unwrap()
                                .invoke(hpid, Op::ReadAt(reg));
                            match client.read_at_counted(reg) {
                                Ok((v, r)) => {
                                    history
                                        .lock()
                                        .unwrap()
                                        .reply(op, OpResult::ReadValue(v));
                                    rounds.lock().unwrap().push(r);
                                }
                                Err(rmem_net::ClientError::Busy) => {
                                    history.lock().unwrap().reply(
                                        op,
                                        OpResult::Rejected(rmem_types::RejectReason::Busy),
                                    );
                                }
                                Err(e) => panic!("read failed: {e}"),
                            }
                        }
                    }
                });
            }
        });
        let h = history.lock().unwrap().clone();
        for (reg, outcome) in
            rmem_consistency::check_per_register(&h, rmem_consistency::Criterion::Transient)
        {
            outcome.unwrap_or_else(|e| panic!("register {reg} not atomic: {e}\n{h:?}"));
        }
        let rounds = rounds.lock().unwrap();
        prop_assert!(
            rounds.iter().all(|&r| r == 1 || r == 2),
            "impossible round counts: {rounds:?}"
        );
        drop(cluster);
    }
}

/// Quiescent keys read in one round: after the writes settle, a pure read
/// phase must observe a mean round count well below the legacy 2.0 — this
/// is the ISSUE's end-to-end acceptance probe on the real runtime.
#[test]
fn quiescent_read_rounds_drop_below_two() {
    let mut cluster =
        LocalCluster::channel(3, SharedMemory::factory(Transient::flavor())).expect("cluster");
    let client = cluster.client(ProcessId(0));
    for reg in 0..8u16 {
        client
            .write_at(RegisterId(reg), Value::from_u32(reg as u32 + 1))
            .expect("seed write");
    }
    // Let the third replica's adoption settle so the registers are truly
    // quiescent (a write returns at 2 of 3 acks).
    std::thread::sleep(std::time::Duration::from_millis(50));
    let mut total = 0u32;
    let mut count = 0u32;
    for pass in 0..3 {
        for reg in 0..8u16 {
            let (v, rounds) = cluster
                .client(ProcessId((pass % 3) as u16))
                .read_at_counted(RegisterId(reg))
                .expect("read");
            assert_eq!(v.as_u32(), Some(reg as u32 + 1));
            total += rounds;
            count += 1;
        }
    }
    let mean = f64::from(total) / f64::from(count);
    assert!(
        mean < 2.0,
        "quiescent reads must beat the legacy 2 rounds, observed mean {mean:.2}"
    );
    // On a settled channel cluster the overwhelming majority is 1 round.
    assert!(
        mean < 1.3,
        "quiescent reads should be almost all fast-path, observed mean {mean:.2}"
    );
    cluster.shutdown();
}
