//! TCP transport: persistent, length-prefixed framed connections with
//! lazy reconnect.
//!
//! TCP removes the UDP datagram ceiling (values larger than 64 KB work),
//! at the cost of connection management. Delivery remains fair-lossy from
//! the automata's point of view: a broken connection simply drops the
//! in-flight message and the next send reconnects.
//!
//! Frame format: 2-byte sender id once per connection (handshake), then
//! per message a 4-byte big-endian length followed by the codec bytes.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use crossbeam::channel::Sender;
use parking_lot::Mutex;
use rmem_types::{codec, Message, ProcessId};

use crate::error::NetError;
use crate::transport::{Inbound, Transport};

/// Maximum frame body accepted (1 MiB — far above any register payload in
/// the experiments).
pub const MAX_FRAME: usize = 1 << 20;

/// A TCP [`Transport`] endpoint.
pub struct TcpTransport {
    me: ProcessId,
    peers: Vec<SocketAddr>,
    outgoing: Vec<Mutex<Option<TcpStream>>>,
    stop: Arc<AtomicBool>,
    acceptor: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl std::fmt::Debug for TcpTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpTransport")
            .field("me", &self.me)
            .field("peers", &self.peers.len())
            .finish()
    }
}

fn read_exact_or_none(stream: &mut TcpStream, buf: &mut [u8]) -> Option<()> {
    stream.read_exact(buf).ok()
}

impl TcpTransport {
    /// Binds the listener for `me` at `peers[me]` and starts accepting
    /// inbound connections, pushing decoded messages into `inbox`.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Bind`] if the listener cannot be bound.
    pub fn bind(
        me: ProcessId,
        peers: Vec<SocketAddr>,
        inbox: Sender<Inbound>,
    ) -> Result<Self, NetError> {
        let addr = peers[me.index()];
        let listener = TcpListener::bind(addr).map_err(|e| NetError::Bind {
            addr: addr.to_string(),
            source: Arc::new(e),
        })?;
        listener.set_nonblocking(true).map_err(|e| NetError::Bind {
            addr: addr.to_string(),
            source: Arc::new(e),
        })?;
        let stop = Arc::new(AtomicBool::new(false));

        let accept_stop = stop.clone();
        let acceptor = std::thread::Builder::new()
            .name(format!("tcp-accept-{me}"))
            .spawn(move || {
                while !accept_stop.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((mut stream, _)) => {
                            let inbox = inbox.clone();
                            let conn_stop = accept_stop.clone();
                            let _ = stream.set_nonblocking(false);
                            let _ = stream
                                .set_read_timeout(Some(std::time::Duration::from_millis(100)));
                            std::thread::spawn(move || {
                                // Handshake: sender id.
                                let mut id = [0u8; 2];
                                let from = loop {
                                    if conn_stop.load(Ordering::Relaxed) {
                                        return;
                                    }
                                    match stream.read_exact(&mut id) {
                                        Ok(()) => break ProcessId(u16::from_be_bytes(id)),
                                        Err(e)
                                            if e.kind() == std::io::ErrorKind::WouldBlock
                                                || e.kind() == std::io::ErrorKind::TimedOut =>
                                        {
                                            continue
                                        }
                                        Err(_) => return,
                                    }
                                };
                                let mut len_buf = [0u8; 4];
                                loop {
                                    if conn_stop.load(Ordering::Relaxed) {
                                        return;
                                    }
                                    match stream.read_exact(&mut len_buf) {
                                        Ok(()) => {}
                                        Err(e)
                                            if e.kind() == std::io::ErrorKind::WouldBlock
                                                || e.kind() == std::io::ErrorKind::TimedOut =>
                                        {
                                            continue
                                        }
                                        Err(_) => return,
                                    }
                                    let len = u32::from_be_bytes(len_buf) as usize;
                                    if len > MAX_FRAME {
                                        return; // poisoned stream: drop connection
                                    }
                                    let mut body = vec![0u8; len];
                                    if read_exact_or_none(&mut stream, &mut body).is_none() {
                                        return;
                                    }
                                    if let Ok((msg, trace)) = codec::decode_message_traced(&body) {
                                        if inbox.send(Inbound { from, msg, trace }).is_err() {
                                            return;
                                        }
                                    }
                                }
                            });
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(std::time::Duration::from_millis(10));
                        }
                        Err(_) => std::thread::sleep(std::time::Duration::from_millis(10)),
                    }
                }
            })
            .expect("spawning the TCP acceptor thread");

        let outgoing = (0..peers.len()).map(|_| Mutex::new(None)).collect();
        Ok(TcpTransport {
            me,
            peers,
            outgoing,
            stop,
            acceptor: Mutex::new(Some(acceptor)),
        })
    }

    /// Convenience: loopback addresses for an `n`-process cluster starting
    /// at `base_port`.
    pub fn loopback_peers(n: usize, base_port: u16) -> Vec<SocketAddr> {
        (0..n)
            .map(|i| SocketAddr::from(([127, 0, 0, 1], base_port + i as u16)))
            .collect()
    }

    fn connect(&self, to: ProcessId) -> Option<TcpStream> {
        let addr = self.peers.get(to.index())?;
        let stream =
            TcpStream::connect_timeout(addr, std::time::Duration::from_millis(250)).ok()?;
        let mut s = stream;
        s.write_all(&self.me.0.to_be_bytes()).ok()?;
        Some(s)
    }
}

impl Transport for TcpTransport {
    fn local(&self) -> ProcessId {
        self.me
    }

    fn cluster_size(&self) -> usize {
        self.peers.len()
    }

    fn send(&self, to: ProcessId, msg: &Message) -> Result<(), NetError> {
        self.send_traced(to, msg, None)
    }

    fn send_traced(
        &self,
        to: ProcessId,
        msg: &Message,
        trace: Option<rmem_types::TraceId>,
    ) -> Result<(), NetError> {
        if to.index() >= self.peers.len() {
            return Err(NetError::UnknownPeer { pid: to });
        }
        let body = codec::encode_message_traced(msg, trace);
        if body.len() > MAX_FRAME {
            return Err(NetError::TooLarge {
                size: body.len(),
                limit: MAX_FRAME,
            });
        }
        let mut frame = Vec::with_capacity(4 + body.len());
        frame.extend_from_slice(&(body.len() as u32).to_be_bytes());
        frame.extend_from_slice(&body);

        let mut slot = self.outgoing[to.index()].lock();
        if slot.is_none() {
            *slot = self.connect(to);
        }
        if let Some(stream) = slot.as_mut() {
            if stream.write_all(&frame).is_err() {
                // Broken pipe: drop the connection; this message is lost
                // (fair-lossy), the next send reconnects.
                *slot = None;
            }
        }
        Ok(())
    }

    fn max_payload(&self) -> Option<usize> {
        Some(MAX_FRAME)
    }

    fn shutdown(&self) {
        self.stop.store(true, Ordering::Relaxed);
        for slot in &self.outgoing {
            *slot.lock() = None;
        }
        if let Some(h) = self.acceptor.lock().take() {
            let _ = h.join();
        }
    }
}

impl Drop for TcpTransport {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel::unbounded;
    use rmem_types::{RequestId, Timestamp, Value};

    fn free_base(n: usize) -> u16 {
        let probe = TcpListener::bind("127.0.0.1:0").unwrap();
        let port = probe.local_addr().unwrap().port();
        drop(probe);
        assert!(port as usize + n < u16::MAX as usize);
        port
    }

    #[test]
    fn roundtrip_and_large_payloads() {
        let base = free_base(2);
        let peers = TcpTransport::loopback_peers(2, base);
        let (tx0, _rx0) = unbounded();
        let (tx1, rx1) = unbounded();
        let t0 = TcpTransport::bind(ProcessId(0), peers.clone(), tx0).unwrap();
        let t1 = TcpTransport::bind(ProcessId(1), peers, tx1).unwrap();
        // Larger than any UDP datagram: TCP carries it fine.
        let msg = Message::Write {
            req: RequestId::new(ProcessId(0), 1),
            ts: Timestamp::new(1, ProcessId(0)),
            value: Value::new(vec![0xAB; 100_000]),
        };
        t0.send(ProcessId(1), &msg).unwrap();
        let got = rx1
            .recv_timeout(std::time::Duration::from_secs(5))
            .expect("delivery");
        assert_eq!(got.msg, msg);
        assert_eq!(got.from, ProcessId(0));
        t0.shutdown();
        t1.shutdown();
    }

    #[test]
    fn send_to_down_peer_is_loss_not_error() {
        let base = free_base(2);
        let peers = TcpTransport::loopback_peers(2, base);
        let (tx0, _rx0) = unbounded();
        let t0 = TcpTransport::bind(ProcessId(0), peers, tx0).unwrap();
        // Peer 1 never bound.
        let msg = Message::SnReq {
            req: RequestId::new(ProcessId(0), 1),
        };
        assert!(t0.send(ProcessId(1), &msg).is_ok());
        t0.shutdown();
    }
}
