//! Real asynchronous-network runtime for the register automata.
//!
//! The paper's measurements ran C processes over UDP on a LAN (§V-A). This
//! crate is the equivalent runtime for our automata: the *same*
//! [`rmem_types::Automaton`] implementations that run under the
//! deterministic simulator are hosted here on real sockets, real threads,
//! real timers and a real `fsync`-per-store disk log.
//!
//! * [`Transport`] — pluggable datagram delivery with fair-lossy
//!   semantics (errors drop the message; the automata retransmit).
//!   Implementations: [`UdpTransport`] (socket per process, exactly the
//!   paper's setup), [`TcpTransport`] (persistent length-prefixed framed
//!   connections, reconnect on demand), and [`ChannelTransport`]
//!   (in-memory, for fast tests).
//! * [`ProcessRunner`] — hosts one automaton: an event loop consuming
//!   network messages, client invocations, timer expiries and completed
//!   commits. Stable stores run on a per-node **syncer thread** that
//!   group-commits whatever queued while the previous fsync ran; the
//!   loop is never blocked on the disk, yet nothing is acknowledged
//!   before the fsync covering it returns (**ack-after-durable** — the
//!   real content of the paper's §V-A synchronous-log note).
//! * [`LocalCluster`] — spins up `n` runners on loopback for examples,
//!   tests and the real-mode benchmark, with a choice of disk backend
//!   ([`DiskMode`]: per-slot files vs the group-commit WAL).
//!
//! # Example
//!
//! ```no_run
//! use rmem_core::Transient;
//! use rmem_net::LocalCluster;
//! use rmem_types::Value;
//!
//! let mut cluster = LocalCluster::channel(3, Transient::factory())?;
//! cluster.client(rmem_types::ProcessId(0)).write(Value::from_u32(42))?;
//! let v = cluster.client(rmem_types::ProcessId(1)).read()?;
//! assert_eq!(v.as_u32(), Some(42));
//! cluster.shutdown();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod channel;
pub mod cluster;
pub mod control;
pub mod error;
pub mod faults;
pub mod pipeline;
pub mod runner;
mod syncer;
pub mod tcp;
pub mod transport;
pub mod udp;

pub use channel::ChannelTransport;
pub use cluster::{DiskMode, LocalCluster};
pub use control::{handle_command, send_command, ControlServer};
pub use error::{ClientError, NetError};
pub use faults::{FaultEvent, FaultSchedule};
pub use pipeline::{AnyCompletion, Claimed, InFlightTable, PipelinedClient, Routed, Ticket};
pub use runner::{Client, ProcessRunner, TraceCtx};
pub use tcp::TcpTransport;
pub use transport::{Inbound, Transport};
pub use udp::UdpTransport;
