//! Hosting one automaton on real threads, sockets, timers and disk.
//!
//! Durability runs on its own pipeline: the event loop forwards
//! [`Action::Store`] to the node's [`syncer`](crate::syncer) thread and
//! keeps serving network messages, timers and other registers'
//! operations while the fsync is in flight; the syncer group-commits
//! whatever queued and posts `StoreDone` back through the loop only
//! after the covering fsync returned (*ack-after-durable*, the real form
//! of the paper's §V-A invariant). A log failure halts the node — the
//! crash-recovery model's prescription for a process that can no longer
//! trust its stable storage — observable via
//! [`ProcessRunner::store_failures`] / [`ProcessRunner::is_halted`].

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, Sender};
use rmem_obs::{pack_wire_aux, EventKind, FlightEvent, FlightRecorder, ObsHandle};
use rmem_storage::records::KEY_WRITTEN;
use rmem_storage::{SnapshotView, StableStorage};
use rmem_types::{
    Action, Automaton, AutomatonFactory, Input, Op, OpId, OpResult, ProcessId, RegisterId,
    RejectReason, RequestId, TimerToken, TraceId,
};
use std::sync::Arc;

use crate::error::ClientError;
use crate::pipeline::{Pipeline, PipelinedClient, Target};
use crate::syncer::{StoreOutcome, StoreRequest, Syncer};
use crate::transport::{Inbound, Transport};

/// Infrastructure slot counting process boots. Not one of the algorithm's
/// logs: it exists so a recovered incarnation gets a fresh request-nonce
/// space (see [`AutomatonFactory::recover`]), the moral equivalent of an
/// OS-assigned ephemeral port.
pub const KEY_BOOT_COUNT: &str = "_boot_count";

/// How many trailing flight-recorder events a halting node dumps to
/// stderr alongside its halt reason.
pub const HALT_DUMP_EVENTS: usize = 64;

/// What the runner posts back for one submitted operation: the
/// submission's slot token, the result, and the quorum round-trips it
/// took. Every operation of one client family shares one completion
/// channel; the token routes the completion to its slot (see
/// [`crate::pipeline::InFlightTable`]).
pub(crate) type Completion = (u64, OpResult, u32, Option<rmem_types::LeaseGrant>);

pub(crate) enum RunnerEvent {
    Invoke {
        operation: Op,
        reply: Sender<Completion>,
        token: u64,
        trace: Option<TraceId>,
    },
    Shutdown,
}

/// Stamps a flight event with a trace op id when one is known.
fn stamp(ev: FlightEvent, trace: Option<TraceId>) -> FlightEvent {
    match trace {
        Some(t) => ev.with_op(t.client, t.op),
        None => ev,
    }
}

/// A client family's **trace context**: the shared identity under which a
/// [`Client`] (and every clone created from the same context) stamps its
/// operations. Holds the family id, the per-op counter, and the client
/// ring that `ClientSend`/`ClientRecv` events land in.
pub struct TraceCtx {
    client: u16,
    counter: AtomicU64,
    ring: Arc<FlightRecorder>,
}

impl std::fmt::Debug for TraceCtx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceCtx")
            .field("client", &(self.client & !TraceId::CLIENT_BIT))
            .finish()
    }
}

impl TraceCtx {
    /// A fresh family recording into `ring` (typically the kv client's
    /// own flight recorder).
    pub fn new(ring: Arc<FlightRecorder>) -> Self {
        TraceCtx {
            client: TraceId::fresh_client(),
            counter: AtomicU64::new(0),
            ring,
        }
    }

    /// The family id (client bit set) — the `pid` of this family's ring
    /// in a stitch.
    pub fn client_id(&self) -> u16 {
        self.client
    }

    /// The ring the family's client-side events land in.
    pub fn ring(&self) -> &Arc<FlightRecorder> {
        &self.ring
    }

    /// Allocates the next op id and records its `ClientSend`.
    pub(crate) fn begin(&self, reg: RegisterId, node: ProcessId) -> TraceId {
        let id = TraceId {
            client: self.client,
            op: self.counter.fetch_add(1, Ordering::Relaxed),
        };
        self.ring.record(
            FlightEvent::new(EventKind::ClientSend)
                .with_op(id.client, id.op)
                .with_register(reg.0)
                .with_aux(u64::from(node.0)),
        );
        id
    }

    /// Records the op's `ClientRecv` (only called for completions — a
    /// timed-out or rejected attempt leaves an unpaired `ClientSend`,
    /// which the stitcher ignores).
    pub(crate) fn finish(&self, id: TraceId, reg: RegisterId, node: ProcessId) {
        self.ring.record(
            FlightEvent::new(EventKind::ClientRecv)
                .with_op(id.client, id.op)
                .with_register(reg.0)
                .with_aux(u64::from(node.0)),
        );
    }
}

/// Remembers which trace op each in-flight replica request belongs to, so
/// the ack (sent later, possibly from the durability pipeline) can be
/// stamped and wire-propagated too. Bounded: oldest entries are evicted
/// first — a replica only ever has a handful of requests between arrival
/// and ack.
struct ReqTraces {
    map: HashMap<RequestId, TraceId>,
    order: std::collections::VecDeque<RequestId>,
    cap: usize,
}

impl ReqTraces {
    fn new(cap: usize) -> Self {
        ReqTraces {
            map: HashMap::new(),
            order: std::collections::VecDeque::new(),
            cap,
        }
    }

    /// Remembers `req → trace`. Returns `true` when the bound forced the
    /// oldest remembered request out (its ack, if it ever comes, will go
    /// unstamped) — callers surface that in `runner.trace_evictions`
    /// rather than letting the drop happen silently.
    fn insert(&mut self, req: RequestId, trace: TraceId) -> bool {
        if self.map.insert(req, trace).is_none() {
            self.order.push_back(req);
            if self.order.len() > self.cap {
                if let Some(old) = self.order.pop_front() {
                    self.map.remove(&old);
                    return true;
                }
            }
        }
        false
    }

    fn get(&self, req: &RequestId) -> Option<TraceId> {
        self.map.get(req).copied()
    }
}

/// The runner's **operation table**: every client operation currently in
/// flight at this process, keyed by operation id with a per-register busy
/// index.
///
/// The paper's model (§III-A) makes *each process of the emulation*
/// sequential — and each register of a shared memory is its own
/// independent emulation (`rmem_core::SharedMemoryAutomaton` hosts one
/// register automaton per id, unaware of the others). The table enforces
/// sequentiality exactly at that granularity: a second operation on a
/// register with one already in flight is rejected `Busy`, while
/// operations on distinct registers — independent shards hosted by this
/// node — proceed concurrently through the one event loop.
/// What the table remembers per in-flight operation: its register, the
/// client family's completion channel and the submission's slot token,
/// when it was admitted (feeds `runner.op_micros`), and the trace
/// context it arrived under (stamps every flight event the operation
/// triggers).
type InFlight = (
    RegisterId,
    Sender<Completion>,
    u64,
    Instant,
    Option<TraceId>,
);

/// What [`OpTable::complete`] hands back: the completion channel, the
/// slot token, the admission time and the trace context.
type Completed = (Sender<Completion>, u64, Instant, Option<TraceId>);

#[derive(Default)]
struct OpTable {
    in_flight: HashMap<OpId, InFlight>,
    by_register: HashMap<RegisterId, OpId>,
}

impl OpTable {
    /// Whether `reg` already has an operation in flight.
    fn is_busy(&self, reg: RegisterId) -> bool {
        self.by_register.contains_key(&reg)
    }

    /// Admits `op` on `reg`. Callers must have checked [`is_busy`] first.
    ///
    /// [`is_busy`]: OpTable::is_busy
    fn admit(
        &mut self,
        op: OpId,
        reg: RegisterId,
        reply: Sender<Completion>,
        token: u64,
        trace: Option<TraceId>,
    ) {
        debug_assert!(!self.is_busy(reg), "admitting onto a busy register");
        self.by_register.insert(reg, op);
        self.in_flight
            .insert(op, (reg, reply, token, Instant::now(), trace));
    }

    /// The trace context of the operation in flight on `reg`, if any.
    /// Because the table admits at most one operation per register, the
    /// register names the operation a coordinator round belongs to.
    fn trace_of(&self, reg: RegisterId) -> Option<TraceId> {
        self.by_register
            .get(&reg)
            .and_then(|op| self.in_flight.get(op))
            .and_then(|(_, _, _, _, trace)| *trace)
    }

    /// Completes `op` if it is in flight, returning its completion
    /// channel, slot token, admission time and trace context.
    fn complete(&mut self, op: OpId) -> Option<Completed> {
        let (reg, reply, token, started, trace) = self.in_flight.remove(&op)?;
        self.by_register.remove(&reg);
        Some((reply, token, started, trace))
    }

    /// Fails every in-flight operation with `Rejected(Shutdown)`. Called
    /// on every event-loop exit path — orderly shutdown and both halt
    /// flavors — so pipelined waiters learn promptly that their
    /// emulation will never complete, instead of burning their full
    /// patience window (the crash-recovery model's "crashed with the
    /// operation pending").
    fn drain_shutdown(&mut self) {
        for (_op, (_reg, reply, token, _started, _trace)) in self.in_flight.drain() {
            let _ = reply.send((token, OpResult::Rejected(RejectReason::Shutdown), 0, None));
        }
        self.by_register.clear();
    }
}

/// A handle for issuing operations to a running process.
///
/// Cheap to clone; operations block until the emulation completes them (or
/// the configured patience runs out — emulations cannot terminate without
/// a live majority, so patience is a liveness hedge, not a correctness
/// knob).
#[derive(Clone)]
pub struct Client {
    pipe: Arc<Pipeline>,
    timeout: Duration,
    trace: Option<Arc<TraceCtx>>,
}

impl std::fmt::Debug for Client {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Client")
            .field("me", &self.pipe.target(0).me)
            .field("timeout", &self.timeout)
            .field("max_payload", &self.pipe.target(0).max_payload)
            .field("traced", &self.trace.is_some())
            .finish()
    }
}

impl Client {
    /// Replaces the patience window (default 10 s).
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }

    /// Attaches (or with `None`, detaches) a trace context: every
    /// operation through this client is issued under a fresh [`TraceId`]
    /// from the context, bracketed by `ClientSend`/`ClientRecv` events in
    /// the context's ring, and the runner stamps and wire-propagates the
    /// id through every hop the operation touches.
    pub fn with_trace(mut self, ctx: Option<Arc<TraceCtx>>) -> Self {
        self.trace = ctx;
        self
    }

    /// The transport's frame ceiling for encoded messages, if any (e.g.
    /// `Some(64 998)` for UDP). `None` means unbounded.
    pub fn max_payload(&self) -> Option<usize> {
        self.pipe.target(0).max_payload
    }

    /// The largest value a write through this client can carry, if the
    /// transport is bounded: the frame ceiling minus the fixed wire
    /// overhead of a value-carrying protocol message.
    pub fn max_value_len(&self) -> Option<usize> {
        self.max_payload()
            .map(|limit| limit.saturating_sub(rmem_types::codec::VALUE_MSG_OVERHEAD))
    }

    /// A pipelined handle sharing this client's reactor (same node, same
    /// patience, same trace context): `submit` returns immediately, so
    /// one thread can keep many operations in flight. The blocking calls
    /// on this `Client` are exactly the depth-1 shim over the same
    /// machinery.
    pub fn pipelined(&self) -> PipelinedClient {
        PipelinedClient::from_parts(self.pipe.clone(), self.timeout, self.trace.clone())
    }

    /// The shared reactor behind this client.
    pub(crate) fn pipe(&self) -> &Arc<Pipeline> {
        &self.pipe
    }

    /// The configured patience window.
    pub(crate) fn patience(&self) -> Duration {
        self.timeout
    }

    /// The attached trace context, if any.
    pub(crate) fn trace_ctx(&self) -> Option<Arc<TraceCtx>> {
        self.trace.clone()
    }

    fn invoke(&self, operation: Op) -> Result<(OpResult, u32), ClientError> {
        self.invoke_leased(operation)
            .map(|(result, rounds, _)| (result, rounds))
    }

    fn invoke_leased(
        &self,
        operation: Op,
    ) -> Result<(OpResult, u32, Option<rmem_types::LeaseGrant>), ClientError> {
        let ticket = self.pipe.submit(0, operation, self.trace.as_deref())?;
        self.pipe.wait(ticket, self.timeout, self.trace.as_deref())
    }

    /// Writes `value` to the emulated register, blocking until the write
    /// terminates.
    ///
    /// # Errors
    ///
    /// [`ClientError::Busy`] if an operation is already in flight *on the
    /// same register* (operations on distinct registers run concurrently),
    /// [`ClientError::TooLarge`] if the value cannot fit the transport
    /// frame, [`ClientError::ProcessDown`] / [`ClientError::TimedOut`] as
    /// their names say.
    pub fn write(&self, value: rmem_types::Value) -> Result<(), ClientError> {
        self.invoke(Op::Write(value)).map(|_| ())
    }

    /// Reads the emulated register, blocking until the read terminates.
    ///
    /// # Errors
    ///
    /// As for [`write`](Self::write).
    pub fn read(&self) -> Result<rmem_types::Value, ClientError> {
        match self.invoke(Op::Read)? {
            (OpResult::ReadValue(v), _) => Ok(v),
            // A Written result for a read cannot happen; treat as down.
            _ => Err(ClientError::ProcessDown),
        }
    }

    /// Writes `value` to register `reg` of a shared memory (the hosted
    /// automaton must be a `SharedMemory`; a single-register automaton
    /// serves only [`RegisterId::ZERO`](rmem_types::RegisterId::ZERO)).
    ///
    /// # Errors
    ///
    /// As for [`write`](Self::write).
    pub fn write_at(
        &self,
        reg: rmem_types::RegisterId,
        value: rmem_types::Value,
    ) -> Result<(), ClientError> {
        self.invoke(Op::WriteAt(reg, value)).map(|_| ())
    }

    /// Reads register `reg` of a shared memory.
    ///
    /// # Errors
    ///
    /// As for [`write`](Self::write).
    pub fn read_at(&self, reg: rmem_types::RegisterId) -> Result<rmem_types::Value, ClientError> {
        self.read_at_counted(reg).map(|(v, _)| v)
    }

    /// As [`read_at`](Self::read_at), additionally reporting how many
    /// quorum round-trips the read performed: 1 when the register
    /// emulation's fast path (or single-round flavor) answered from the
    /// query round alone, 2 when it paid the write-back round. The store
    /// layers aggregate these into their per-operation round statistics.
    ///
    /// # Errors
    ///
    /// As for [`write`](Self::write).
    pub fn read_at_counted(
        &self,
        reg: rmem_types::RegisterId,
    ) -> Result<(rmem_types::Value, u32), ClientError> {
        match self.invoke(Op::ReadAt(reg))? {
            (OpResult::ReadValue(v), rounds) => Ok((v, rounds)),
            _ => Err(ClientError::ProcessDown),
        }
    }

    /// As [`read_at_counted`](Self::read_at_counted), additionally
    /// surfacing the tag-lease grant a leasing flavor's fast path may
    /// have minted: `rounds` can then be 0 (the emulation served the
    /// read from a live coordinator lease, no datagrams at all), and a
    /// `Some` grant tells the caller it may cache the returned value
    /// under the granted tag until the lease expires (see
    /// [`LeaseGrant`](rmem_types::LeaseGrant) for the clock contract).
    /// Non-leasing flavors always report `None`.
    ///
    /// # Errors
    ///
    /// As for [`write`](Self::write).
    pub fn read_at_leased(
        &self,
        reg: rmem_types::RegisterId,
    ) -> Result<(rmem_types::Value, u32, Option<rmem_types::LeaseGrant>), ClientError> {
        match self.invoke_leased(Op::ReadAt(reg))? {
            (OpResult::ReadValue(v), rounds, lease) => Ok((v, rounds, lease)),
            _ => Err(ClientError::ProcessDown),
        }
    }

    /// As [`write_at`](Self::write_at), additionally reporting the quorum
    /// round-trips the write performed (2 with the query round, 1 for the
    /// single-writer regular flavor).
    ///
    /// # Errors
    ///
    /// As for [`write`](Self::write).
    pub fn write_at_counted(
        &self,
        reg: rmem_types::RegisterId,
        value: rmem_types::Value,
    ) -> Result<u32, ClientError> {
        self.invoke(Op::WriteAt(reg, value))
            .map(|(_, rounds)| rounds)
    }
}

/// One hosted process: an automaton, a transport, a timer heap, an
/// event-loop thread and a syncer thread owning the stable storage.
pub struct ProcessRunner {
    me: ProcessId,
    tx: Sender<RunnerEvent>,
    handle: Option<std::thread::JoinHandle<Box<dyn StableStorage>>>,
    transport: Arc<dyn Transport>,
    store_failures: Arc<AtomicU64>,
    obs: ObsHandle,
}

impl std::fmt::Debug for ProcessRunner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProcessRunner")
            .field("me", &self.me)
            .finish()
    }
}

impl ProcessRunner {
    /// Starts a process: decides fresh-boot vs recovery from the
    /// `_boot_count` slot in `storage`, builds the automaton accordingly
    /// and spins up the event loop.
    ///
    /// `inbox` must be the receiver side of the channel the transport
    /// pushes into.
    pub fn start(
        factory: &dyn AutomatonFactory,
        storage: Box<dyn StableStorage>,
        transport: Arc<dyn Transport>,
        inbox: Receiver<Inbound>,
    ) -> Self {
        Self::start_with_obs(factory, storage, transport, inbox, ObsHandle::new())
    }

    /// As [`start`](Self::start), with an explicit observability handle —
    /// how [`LocalCluster`](crate::LocalCluster) gives each node a
    /// registry and flight recorder that survive kill/restart (the handle
    /// outlives the incarnation, so an experiment's metrics accumulate).
    pub fn start_with_obs(
        factory: &dyn AutomatonFactory,
        mut storage: Box<dyn StableStorage>,
        transport: Arc<dyn Transport>,
        inbox: Receiver<Inbound>,
        obs: ObsHandle,
    ) -> Self {
        let me = transport.local();
        let n = transport.cluster_size();

        let boot_count = storage
            .retrieve(KEY_BOOT_COUNT)
            .ok()
            .flatten()
            .and_then(|b| b.as_ref().try_into().ok().map(u64::from_be_bytes))
            .unwrap_or(0);
        // A process that has durably adopted anything before has run
        // before: treat it as recovering even if the boot counter is
        // missing (e.g. pre-upgrade data).
        let has_history = boot_count > 0 || storage.retrieve(KEY_WRITTEN).ok().flatten().is_some();
        let automaton = if has_history {
            factory.recover(me, n, boot_count, &SnapshotView::new(storage.as_ref()))
        } else {
            factory.fresh(me, n)
        };
        let _ = storage.store(
            KEY_BOOT_COUNT,
            bytes::Bytes::from((boot_count + 1).to_be_bytes().to_vec()),
        );

        let (tx, rx) = unbounded::<RunnerEvent>();
        let loop_transport = transport.clone();
        let store_failures = Arc::new(AtomicU64::new(0));
        let loop_failures = store_failures.clone();
        let loop_obs = obs.clone();
        let handle = std::thread::Builder::new()
            .name(format!("rmem-proc-{me}"))
            .spawn(move || {
                run_loop(
                    automaton,
                    storage,
                    loop_transport,
                    rx,
                    inbox,
                    me,
                    boot_count,
                    loop_failures,
                    loop_obs,
                )
            })
            .expect("spawning the process event loop");

        ProcessRunner {
            me,
            tx,
            handle: Some(handle),
            transport,
            store_failures,
            obs,
        }
    }

    /// This process's id.
    pub fn id(&self) -> ProcessId {
        self.me
    }

    /// How many stable-storage commits have failed on this node. Per the
    /// crash-recovery model the first failure halts the node, so this is
    /// effectively a halted-because-of-disk flag that health checks and
    /// tests can poll without joining the thread.
    pub fn store_failures(&self) -> u64 {
        self.store_failures.load(Ordering::Relaxed)
    }

    /// Whether the event loop has exited — either an orderly shutdown or
    /// the clean halt a log failure forces.
    pub fn is_halted(&self) -> bool {
        self.handle.as_ref().is_none_or(|h| h.is_finished())
    }

    /// This node's observability handle (registry + flight recorder).
    pub fn obs(&self) -> &ObsHandle {
        &self.obs
    }

    /// This node's flight recorder — dump it after a failure to see the
    /// event trail that led there.
    pub fn flight_recorder(&self) -> Arc<FlightRecorder> {
        self.obs.flight.clone()
    }

    /// A point-in-time copy of this node's metrics.
    pub fn metrics(&self) -> rmem_obs::MetricsSnapshot {
        self.obs.metrics.snapshot()
    }

    /// A client handle for this process. Each call builds a fresh
    /// reactor (in-flight table + completion channel); clones of the
    /// returned client — and pipelined handles derived from it — share
    /// it.
    pub fn client(&self) -> Client {
        Client {
            pipe: Arc::new(Pipeline::new(vec![Target {
                tx: self.tx.clone(),
                me: self.me,
                max_payload: self.transport.max_payload(),
            }])),
            timeout: Duration::from_secs(10),
            trace: None,
        }
    }

    /// Stops the process (gracefully for the thread; abruptly from the
    /// protocol's point of view — like a crash, nothing is flushed beyond
    /// what was already stored). Returns the storage so a later incarnation
    /// can recover from it.
    pub fn stop(mut self) -> Box<dyn StableStorage> {
        let _ = self.tx.send(RunnerEvent::Shutdown);
        self.transport.shutdown();
        let handle = self.handle.take().expect("stop called once");
        handle.join().expect("process loop panicked")
    }
}

impl Drop for ProcessRunner {
    fn drop(&mut self) {
        if let Some(handle) = self.handle.take() {
            let _ = self.tx.send(RunnerEvent::Shutdown);
            self.transport.shutdown();
            let _ = handle.join();
        }
    }
}

/// The runner-side metric handles, resolved once per incarnation.
struct LoopMetrics {
    ops_started: Arc<rmem_obs::Counter>,
    ops_completed: Arc<rmem_obs::Counter>,
    msgs_in: Arc<rmem_obs::Counter>,
    msgs_out: Arc<rmem_obs::Counter>,
    stores_queued: Arc<rmem_obs::Counter>,
    stores_durable: Arc<rmem_obs::Counter>,
    timer_fires: Arc<rmem_obs::Counter>,
    trace_evictions: Arc<rmem_obs::Counter>,
    op_micros: Arc<rmem_obs::Histogram>,
}

impl LoopMetrics {
    fn resolve(obs: &ObsHandle) -> Self {
        LoopMetrics {
            ops_started: obs.metrics.counter("runner.ops_started"),
            ops_completed: obs.metrics.counter("runner.ops_completed"),
            msgs_in: obs.metrics.counter("runner.msgs_in"),
            msgs_out: obs.metrics.counter("runner.msgs_out"),
            stores_queued: obs.metrics.counter("runner.stores_queued"),
            stores_durable: obs.metrics.counter("runner.stores_durable"),
            timer_fires: obs.metrics.counter("runner.timer_fires"),
            trace_evictions: obs.metrics.counter("runner.trace_evictions"),
            op_micros: obs.metrics.histogram("runner.op_micros"),
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn run_loop(
    mut automaton: Box<dyn Automaton>,
    storage: Box<dyn StableStorage>,
    transport: Arc<dyn Transport>,
    control: Receiver<RunnerEvent>,
    inbox: Receiver<Inbound>,
    me: ProcessId,
    boot_count: u64,
    store_failures: Arc<AtomicU64>,
    obs: ObsHandle,
) -> Box<dyn StableStorage> {
    let mut timers: BinaryHeap<Reverse<(Instant, u64)>> = BinaryHeap::new();
    let mut timer_tokens: std::collections::HashMap<u64, TimerToken> =
        std::collections::HashMap::new();
    let mut timer_seq = 0u64;
    let mut pending = OpTable::default();
    let mut op_counter = boot_count << 32;
    // Trace plumbing: which client op each in-flight replica request and
    // each queued store belongs to (both maps are drained as requests are
    // acked and stores commit; ReqTraces additionally evicts by age).
    let mut req_traces = ReqTraces::new(4096);
    let mut token_traces: HashMap<u64, TraceId> = HashMap::new();
    let mx = LoopMetrics::resolve(&obs);
    let flight = obs.flight.clone();

    // The durability pipeline: stores leave the loop through the syncer's
    // queue and come back as StoreDone only after their group's fsync.
    let (store_done_tx, store_done_rx) = unbounded::<StoreOutcome>();
    let syncer = Syncer::spawn_with_obs(me, storage, store_done_tx, store_failures, obs.clone());

    // Process one input and the actions it triggers. Stores are
    // asynchronous (paper's automaton contract): they are queued for the
    // syncer and the loop moves on — the matching StoreDone re-enters
    // through `store_done_rx` after the covering fsync returns, so an
    // fsync in flight on one register never stalls another register's
    // round.
    let step = |automaton: &mut Box<dyn Automaton>,
                syncer: &Syncer,
                timers: &mut BinaryHeap<Reverse<(Instant, u64)>>,
                timer_tokens: &mut std::collections::HashMap<u64, TimerToken>,
                timer_seq: &mut u64,
                pending: &mut OpTable,
                req_traces: &mut ReqTraces,
                token_traces: &mut HashMap<u64, TraceId>,
                ctx_trace: Option<TraceId>,
                input: Input| {
        let mut actions = Vec::new();
        automaton.on_input(input, &mut actions);
        for action in actions {
            match action {
                Action::Send { to, msg } => {
                    mx.msgs_out.inc();
                    let req = msg.request_id();
                    // Requests belong to the operation in flight on the
                    // register (robust across retransmits from timers);
                    // acks to the request that asked for them.
                    let trace = if msg.is_request() {
                        let trace = pending.trace_of(req.reg);
                        flight.record(stamp(
                            FlightEvent::new(EventKind::RoundSent)
                                .with_register(req.reg.0)
                                .with_aux(pack_wire_aux(to.0, req.nonce, false)),
                            trace,
                        ));
                        trace
                    } else {
                        let trace = req_traces.get(&req);
                        let durable = match &msg {
                            rmem_types::Message::ReadAck { durable, .. } => *durable,
                            _ => true,
                        };
                        flight.record(stamp(
                            FlightEvent::new(EventKind::AckSent)
                                .with_register(req.reg.0)
                                .with_aux(pack_wire_aux(to.0, req.nonce, durable)),
                            trace,
                        ));
                        trace
                    };
                    // Fair-lossy: a failed send is a lost message.
                    let _ = transport.send_traced(to, &msg, trace);
                }
                Action::Store { token, key, bytes } => {
                    mx.stores_queued.inc();
                    flight.record(stamp(
                        FlightEvent::new(EventKind::StoreQueued).with_aux(token.0),
                        ctx_trace,
                    ));
                    if let Some(trace) = ctx_trace {
                        token_traces.insert(token.0, trace);
                    }
                    syncer.submit(StoreRequest { token, key, bytes });
                }
                Action::SetTimer { token, after } => {
                    let seq = *timer_seq;
                    *timer_seq += 1;
                    timer_tokens.insert(seq, token);
                    timers.push(Reverse((Instant::now() + Duration::from(after), seq)));
                }
                Action::Complete {
                    op,
                    result,
                    rounds,
                    lease,
                } => {
                    if let Some((reply, token, started, trace)) = pending.complete(op) {
                        mx.ops_completed.inc();
                        if obs.metrics.is_enabled() {
                            mx.op_micros.record(started.elapsed().as_micros() as u64);
                        }
                        let ev =
                            FlightEvent::new(EventKind::OpComplete).with_aux(u64::from(rounds));
                        flight.record(match trace {
                            Some(t) => ev.with_op(t.client, t.op),
                            None => ev.with_op(op.pid.0, op.counter),
                        });
                        let _ = reply.send((token, result, rounds, lease));
                    }
                }
            }
        }
    };

    step(
        &mut automaton,
        &syncer,
        &mut timers,
        &mut timer_tokens,
        &mut timer_seq,
        &mut pending,
        &mut req_traces,
        &mut token_traces,
        None,
        Input::Start,
    );

    loop {
        // Fire due timers first.
        let now = Instant::now();
        while let Some(Reverse((deadline, seq))) = timers.peek().copied() {
            if deadline > now {
                break;
            }
            timers.pop();
            if let Some(token) = timer_tokens.remove(&seq) {
                mx.timer_fires.inc();
                step(
                    &mut automaton,
                    &syncer,
                    &mut timers,
                    &mut timer_tokens,
                    &mut timer_seq,
                    &mut pending,
                    &mut req_traces,
                    &mut token_traces,
                    None,
                    Input::Timer(token),
                );
            }
        }
        let patience = timers
            .peek()
            .map(|Reverse((deadline, _))| deadline.saturating_duration_since(Instant::now()))
            .unwrap_or(Duration::from_millis(100));

        // Drain the network first (bounded batch), then completed
        // commits, then the control channel, then sleep until the next
        // timer.
        crossbeam::channel::select! {
            recv(inbox) -> net => if let Ok(Inbound { from, msg, trace }) = net {
                // (An Err means the transport is gone; the control channel
                // decides shutdown.)
                mx.msgs_in.inc();
                let req = msg.request_id();
                if msg.is_request() {
                    flight.record(stamp(
                        FlightEvent::new(EventKind::ReqRecv)
                            .with_register(req.reg.0)
                            .with_aux(pack_wire_aux(from.0, req.nonce, false)),
                        trace,
                    ));
                    if let Some(trace) = trace {
                        // Remember the op so the ack (possibly sent later,
                        // from the durability pipeline) carries it too.
                        if req_traces.insert(req, trace) {
                            mx.trace_evictions.inc();
                        }
                    }
                } else {
                    // An ack round-trip closing: the `durable` attestation
                    // matters for the read fast path, so it rides along.
                    let durable = match &msg {
                        rmem_types::Message::ReadAck { durable, .. } => *durable,
                        _ => true,
                    };
                    flight.record(stamp(
                        FlightEvent::new(EventKind::AckRecv)
                            .with_register(req.reg.0)
                            .with_aux(pack_wire_aux(from.0, req.nonce, durable)),
                        trace,
                    ));
                }
                step(
                    &mut automaton,
                    &syncer,
                    &mut timers,
                    &mut timer_tokens,
                    &mut timer_seq,
                    &mut pending,
                    &mut req_traces,
                    &mut token_traces,
                    trace,
                    Input::Message { from, msg },
                );
            },
            recv(store_done_rx) -> done => match done {
                Ok(StoreOutcome::Done(token)) => {
                    mx.stores_durable.inc();
                    let trace = token_traces.remove(&token.0);
                    flight.record(stamp(
                        FlightEvent::new(EventKind::StoreDurable).with_aux(token.0),
                        trace,
                    ));
                    step(
                        &mut automaton,
                        &syncer,
                        &mut timers,
                        &mut timer_tokens,
                        &mut timer_seq,
                        &mut pending,
                        &mut req_traces,
                        &mut token_traces,
                        trace,
                        Input::StoreDone(token),
                    );
                }
                Ok(StoreOutcome::Failed(e)) => {
                    // The log failed: per the crash-recovery model the
                    // process crashes rather than run ahead of its stable
                    // storage. Halt cleanly — in-flight operations see
                    // ProcessDown, the disk survives for a restart — and
                    // leave a postmortem: the structured Halt event plus
                    // the tail of the flight recorder.
                    let reason = format!("stable storage failed: {e}");
                    flight.halt(&reason);
                    eprintln!(
                        "rmem[{me}]: {reason}; halting the node\n\
                         rmem[{me}]: last events before the halt:\n{}",
                        flight.dump_timeline(HALT_DUMP_EVENTS)
                    );
                    break;
                }
                Err(_) => {
                    // Syncer gone without a verdict: same terminal state,
                    // same postmortem.
                    let reason = "syncer exited without a verdict".to_string();
                    flight.halt(&reason);
                    eprintln!(
                        "rmem[{me}]: {reason}; halting the node\n\
                         rmem[{me}]: last events before the halt:\n{}",
                        flight.dump_timeline(HALT_DUMP_EVENTS)
                    );
                    break;
                }
            },
            recv(control) -> ctl => match ctl {
                Ok(RunnerEvent::Invoke { operation, reply, token, trace }) => {
                    let reg = operation.register();
                    if pending.is_busy(reg) {
                        let _ =
                            reply.send((token, OpResult::Rejected(RejectReason::Busy), 0, None));
                    } else {
                        let op = OpId::new(me, op_counter);
                        op_counter += 1;
                        mx.ops_started.inc();
                        let ev = FlightEvent::new(EventKind::OpStart).with_register(reg.0);
                        flight.record(match trace {
                            Some(t) => ev.with_op(t.client, t.op),
                            None => ev.with_op(op.pid.0, op.counter),
                        });
                        pending.admit(op, reg, reply, token, trace);
                        step(
                            &mut automaton,
                            &syncer,
                            &mut timers,
                            &mut timer_tokens,
                            &mut timer_seq,
                            &mut pending,
                            &mut req_traces,
                            &mut token_traces,
                            trace,
                            Input::Invoke { op, operation },
                        );
                    }
                }
                Ok(RunnerEvent::Shutdown) | Err(_) => break,
            },
            default(patience) => {}
        }
    }
    // Every exit path lands here. Fail what will never complete: first
    // the admitted in-flight operations, then invocations still queued
    // on the control channel (or racing in as the loop exits) — without
    // this, a pipelined waiter would burn its full patience window on an
    // operation whose emulation is gone.
    while let Ok(ev) = control.try_recv() {
        if let RunnerEvent::Invoke { reply, token, .. } = ev {
            let _ = reply.send((token, OpResult::Rejected(RejectReason::Shutdown), 0, None));
        }
    }
    pending.drain_shutdown();
    syncer.stop()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::{ChannelTransport, Switchboard};
    use rmem_core::Transient;
    use rmem_storage::MemStorage;
    use rmem_types::Value;

    fn spin_cluster(n: usize) -> Vec<ProcessRunner> {
        let board = Switchboard::new(n);
        let factory = Transient::factory();
        (0..n as u16)
            .map(|i| {
                let (tx, rx) = unbounded();
                let transport = Arc::new(ChannelTransport::new(ProcessId(i), n, board.clone(), tx));
                ProcessRunner::start(factory.as_ref(), Box::new(MemStorage::new()), transport, rx)
            })
            .collect()
    }

    #[test]
    fn req_traces_evict_oldest_first_and_report_it() {
        let mut traces = ReqTraces::new(2);
        let req = |nonce| RequestId::new(ProcessId(0), nonce);
        let trace = |op| TraceId { client: 1, op };
        assert!(!traces.insert(req(0), trace(0)));
        assert!(!traces.insert(req(1), trace(1)));
        // Re-inserting a known request neither grows nor evicts.
        assert!(!traces.insert(req(1), trace(1)));
        // The third distinct request pushes out the oldest (req 0), and
        // the caller is told so it can count the eviction.
        assert!(traces.insert(req(2), trace(2)));
        assert_eq!(traces.get(&req(0)), None);
        assert_eq!(traces.get(&req(1)), Some(trace(1)));
        assert_eq!(traces.get(&req(2)), Some(trace(2)));
    }

    #[test]
    fn write_then_read_through_real_threads() {
        let runners = spin_cluster(3);
        runners[0]
            .client()
            .write(Value::from_u32(7))
            .expect("write");
        let v = runners[1].client().read().expect("read");
        assert_eq!(v.as_u32(), Some(7));
        for r in runners {
            r.stop();
        }
    }

    #[test]
    fn second_invocation_while_busy_is_rejected() {
        let runners = spin_cluster(3);
        let client = runners[0].client();
        // Saturate: issue a write from another thread and race a read.
        // (Raciness is fine: either the read waits its turn via the
        // channel and succeeds after, or it lands mid-write and is Busy.)
        let c2 = client.clone();
        let t = std::thread::spawn(move || c2.write(Value::from_u32(1)));
        let read_result = client.read().map(|_| ()); // Ok or Busy — must not hang
        let write_result = t.join().unwrap();
        for r in [&read_result, &write_result] {
            assert!(
                matches!(r, Ok(()) | Err(ClientError::Busy)),
                "unexpected outcome: {r:?}"
            );
        }
        assert!(
            read_result.is_ok() || write_result.is_ok(),
            "at most one of the racing operations may be refused"
        );
        for r in runners {
            r.stop();
        }
    }

    #[test]
    fn distinct_registers_run_concurrently_through_one_runner() {
        use rmem_core::SharedMemory;
        let board = Switchboard::new(3);
        let factory = SharedMemory::factory(Transient::flavor());
        let runners: Vec<_> = (0..3u16)
            .map(|i| {
                let (tx, rx) = unbounded();
                let transport = Arc::new(ChannelTransport::new(ProcessId(i), 3, board.clone(), tx));
                ProcessRunner::start(factory.as_ref(), Box::new(MemStorage::new()), transport, rx)
            })
            .collect();
        let client = runners[0].client();
        // Many threads, one register each: every operation must succeed —
        // Busy would mean the runner still serializes across registers.
        let handles: Vec<_> = (0..8u16)
            .map(|r| {
                let c = client.clone();
                std::thread::spawn(move || {
                    c.write_at(rmem_types::RegisterId(r), Value::from_u32(r as u32 + 1))?;
                    c.read_at(rmem_types::RegisterId(r))
                })
            })
            .collect();
        for (r, h) in handles.into_iter().enumerate() {
            let v = h.join().unwrap().expect("concurrent op must complete");
            assert_eq!(v.as_u32(), Some(r as u32 + 1));
        }
        for r in runners {
            r.stop();
        }
    }

    #[test]
    fn storage_comes_back_from_stop() {
        let runners = spin_cluster(3);
        runners[0].client().write(Value::from_u32(5)).unwrap();
        let mut storages: Vec<_> = runners.into_iter().map(|r| r.stop()).collect();
        // At least a majority logged the value.
        let holders = storages
            .iter_mut()
            .filter(|s| {
                s.retrieve(rmem_storage::records::KEY_WRITTEN)
                    .ok()
                    .flatten()
                    .and_then(|b| rmem_storage::records::WrittenRecord::decode(&b).ok())
                    .is_some_and(|r| r.value.as_u32() == Some(5))
            })
            .count();
        assert!(holders >= 2, "majority must hold the value, got {holders}");
    }
}
