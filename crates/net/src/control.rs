//! The node control protocol: how standalone `rmem-node` processes accept
//! operations from outside clients (e.g. the `rmem-client` binary).
//!
//! A deliberately tiny, line-based TCP protocol:
//!
//! ```text
//! client → node:  PING
//!                 READ <reg>
//!                 WRITE <reg> <value bytes to end of line>
//! node → client:  PONG
//!                 VALUE <bytes>            (a read's result)
//!                 BOTTOM                   (the register was never written)
//!                 OK                       (a write completed)
//!                 ERR <message>
//! ```
//!
//! Values are treated as opaque byte strings (without `\n`). One command
//! per connection round; connections may be reused.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use rmem_types::{RegisterId, Value};

use crate::error::NetError;
use crate::runner::Client;

/// Executes one protocol command against a [`Client`], returning the
/// response line (without the newline).
pub fn handle_command(line: &str, client: &Client) -> String {
    let line = line.trim_end_matches(['\r', '\n']);
    let mut parts = line.splitn(3, ' ');
    match parts.next() {
        Some("PING") => "PONG".to_string(),
        Some("READ") => {
            let Some(reg) = parts.next().and_then(|r| r.parse::<u16>().ok()) else {
                return "ERR usage: READ <reg>".to_string();
            };
            match client.read_at(RegisterId(reg)) {
                Ok(v) if v.is_bottom() => "BOTTOM".to_string(),
                Ok(v) => format!("VALUE {}", String::from_utf8_lossy(v.bytes())),
                Err(e) => format!("ERR {e}"),
            }
        }
        Some("WRITE") => {
            let Some(reg) = parts.next().and_then(|r| r.parse::<u16>().ok()) else {
                return "ERR usage: WRITE <reg> <value>".to_string();
            };
            let Some(value) = parts.next() else {
                return "ERR usage: WRITE <reg> <value>".to_string();
            };
            match client.write_at(RegisterId(reg), Value::from(value)) {
                Ok(()) => "OK".to_string(),
                Err(e) => format!("ERR {e}"),
            }
        }
        Some(other) if !other.is_empty() => format!("ERR unknown command {other:?}"),
        _ => "ERR empty command".to_string(),
    }
}

/// A control server bound to one node's [`Client`].
pub struct ControlServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: parking_lot::Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl std::fmt::Debug for ControlServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ControlServer")
            .field("addr", &self.addr)
            .finish()
    }
}

impl ControlServer {
    /// Binds `addr` and starts serving commands against `client`.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Bind`] if the listener cannot be bound.
    pub fn bind(addr: SocketAddr, client: Client) -> Result<Self, NetError> {
        let listener = TcpListener::bind(addr).map_err(|e| NetError::Bind {
            addr: addr.to_string(),
            source: Arc::new(e),
        })?;
        let local = listener.local_addr().map_err(|e| NetError::Bind {
            addr: addr.to_string(),
            source: Arc::new(e),
        })?;
        listener.set_nonblocking(true).map_err(|e| NetError::Bind {
            addr: addr.to_string(),
            source: Arc::new(e),
        })?;
        let stop = Arc::new(AtomicBool::new(false));
        let accept_stop = stop.clone();
        let handle = std::thread::Builder::new()
            .name(format!("rmem-ctl-{local}"))
            .spawn(move || {
                while !accept_stop.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            let client = client.clone();
                            let conn_stop = accept_stop.clone();
                            std::thread::spawn(move || serve_connection(stream, client, conn_stop));
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(std::time::Duration::from_millis(20));
                        }
                        Err(_) => std::thread::sleep(std::time::Duration::from_millis(20)),
                    }
                }
            })
            .expect("spawning the control acceptor");
        Ok(ControlServer {
            addr: local,
            stop,
            handle: parking_lot::Mutex::new(Some(handle)),
        })
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting (existing connections close on their next read).
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.lock().take() {
            let _ = h.join();
        }
    }
}

impl Drop for ControlServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn serve_connection(stream: TcpStream, client: Client, stop: Arc<AtomicBool>) {
    let _ = stream.set_read_timeout(Some(std::time::Duration::from_millis(200)));
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    while !stop.load(Ordering::Relaxed) {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => return, // EOF
            Ok(_) => {
                let response = handle_command(&line, &client);
                if writer.write_all(response.as_bytes()).is_err()
                    || writer.write_all(b"\n").is_err()
                {
                    return;
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue
            }
            Err(_) => return,
        }
    }
}

/// Client side: sends one command to a node's control address and returns
/// the response line.
///
/// # Errors
///
/// Propagates connection and I/O errors.
pub fn send_command(addr: SocketAddr, command: &str) -> std::io::Result<String> {
    let stream = TcpStream::connect_timeout(&addr, std::time::Duration::from_secs(5))?;
    stream.set_read_timeout(Some(std::time::Duration::from_secs(30)))?;
    let mut writer = stream.try_clone()?;
    writer.write_all(command.as_bytes())?;
    writer.write_all(b"\n")?;
    let mut reader = BufReader::new(stream);
    let mut response = String::new();
    reader.read_line(&mut response)?;
    Ok(response.trim_end().to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LocalCluster;
    use rmem_core::Transient;
    use rmem_types::ProcessId;

    #[test]
    fn protocol_round_trips_through_a_live_node() {
        let cluster =
            LocalCluster::channel(3, rmem_core::SharedMemory::factory(Transient::flavor()))
                .unwrap();
        let server =
            ControlServer::bind("127.0.0.1:0".parse().unwrap(), cluster.client(ProcessId(0)))
                .unwrap();
        let addr = server.addr();

        assert_eq!(send_command(addr, "PING").unwrap(), "PONG");
        assert_eq!(send_command(addr, "READ 0").unwrap(), "BOTTOM");
        assert_eq!(send_command(addr, "WRITE 0 hello world").unwrap(), "OK");
        assert_eq!(send_command(addr, "READ 0").unwrap(), "VALUE hello world");
        assert_eq!(send_command(addr, "WRITE 3 slot three").unwrap(), "OK");
        assert_eq!(send_command(addr, "READ 3").unwrap(), "VALUE slot three");
        assert_eq!(send_command(addr, "READ 0").unwrap(), "VALUE hello world");

        server.shutdown();
    }

    #[test]
    fn malformed_commands_get_err_responses() {
        let cluster = LocalCluster::channel(3, Transient::factory()).unwrap();
        let client = cluster.client(ProcessId(1));
        assert!(handle_command("READ", &client).starts_with("ERR"));
        assert!(handle_command("READ abc", &client).starts_with("ERR"));
        assert!(handle_command("WRITE 0", &client).starts_with("ERR"));
        assert!(handle_command("FROB 1 2", &client).starts_with("ERR"));
        assert!(handle_command("", &client).starts_with("ERR"));
        assert_eq!(handle_command("PING", &client), "PONG");
    }
}
