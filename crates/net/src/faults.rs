//! Scripted fault injection for real-threaded clusters: the wall-clock
//! analogue of the simulator's crash/recovery `Schedule`.
//!
//! The simulator plants crashes at virtual microsecond precision; a
//! [`LocalCluster`] lives in real time, so migration experiments (e.g. a
//! live shard split under traffic) need their faults scheduled against
//! the clock instead. A [`FaultSchedule`] is a sorted script of
//! kill/restart events relative to a start instant;
//! [`run`](FaultSchedule::run) plays it against a cluster, blocking the
//! driving thread — spawn it next to the workload threads and join it at
//! the end:
//!
//! ```no_run
//! use std::time::Duration;
//! use rmem_net::{FaultSchedule, LocalCluster};
//! use rmem_types::ProcessId;
//!
//! # fn demo(mut cluster: LocalCluster) {
//! let schedule = FaultSchedule::new()
//!     .crash_for(Duration::from_millis(20), ProcessId(1), Duration::from_millis(40));
//! std::thread::scope(|scope| {
//!     scope.spawn(|| schedule.run(&mut cluster));
//!     // …drive client traffic here…
//! });
//! # }
//! ```
//!
//! Events apply defensively: killing a dead process or restarting a live
//! one is a no-op (the schedule is a script, not an invariant), so seeds
//! can generate overlapping windows without wedging the run.

use std::time::{Duration, Instant};

use rmem_types::ProcessId;

use crate::cluster::LocalCluster;
use crate::error::NetError;

/// One scripted fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultEvent {
    /// Kill the process (volatile state gone, stable storage survives).
    Kill(ProcessId),
    /// Restart the process (it runs the algorithm's recovery procedure).
    Restart(ProcessId),
}

/// A wall-clock fault script for a [`LocalCluster`].
#[derive(Debug, Clone, Default)]
pub struct FaultSchedule {
    entries: Vec<(Duration, FaultEvent)>,
}

impl FaultSchedule {
    /// An empty schedule.
    pub fn new() -> Self {
        FaultSchedule::default()
    }

    /// Plants `event` at `after` past the run's start.
    pub fn at(mut self, after: Duration, event: FaultEvent) -> Self {
        self.entries.push((after, event));
        self
    }

    /// Convenience: kill `pid` at `after` and restart it `down_for`
    /// later.
    pub fn crash_for(self, after: Duration, pid: ProcessId, down_for: Duration) -> Self {
        self.at(after, FaultEvent::Kill(pid))
            .at(after + down_for, FaultEvent::Restart(pid))
    }

    /// The planted events (unsorted, as scripted).
    pub fn entries(&self) -> &[(Duration, FaultEvent)] {
        &self.entries
    }

    /// Plays the schedule against `cluster`, blocking until the last
    /// event fired. Returns the events actually applied (a kill of an
    /// already-dead process or a restart of a live one is skipped).
    ///
    /// # Errors
    ///
    /// Returns [`NetError`] if a restart cannot rebuild its transport.
    pub fn run(&self, cluster: &mut LocalCluster) -> Result<Vec<(Duration, FaultEvent)>, NetError> {
        let mut script = self.entries.clone();
        script.sort_by_key(|(after, _)| *after);
        let start = Instant::now();
        let mut applied = Vec::new();
        for (after, event) in script {
            if let Some(wait) = after.checked_sub(start.elapsed()) {
                std::thread::sleep(wait);
            }
            match event {
                FaultEvent::Kill(pid) => {
                    if cluster.is_up(pid) {
                        cluster.kill(pid);
                        applied.push((start.elapsed(), event));
                    }
                }
                FaultEvent::Restart(pid) => {
                    if !cluster.is_up(pid) {
                        cluster.restart(pid)?;
                        applied.push((start.elapsed(), event));
                    }
                }
            }
        }
        Ok(applied)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmem_core::Transient;
    use rmem_types::Value;

    #[test]
    fn schedule_kills_and_recovers_on_the_clock() {
        let mut cluster = LocalCluster::channel(3, Transient::factory()).unwrap();
        cluster
            .client(ProcessId(0))
            .write(Value::from_u32(9))
            .unwrap();
        let schedule = FaultSchedule::new().crash_for(
            Duration::from_millis(10),
            ProcessId(2),
            Duration::from_millis(30),
        );
        let applied = schedule.run(&mut cluster).unwrap();
        assert_eq!(applied.len(), 2, "kill + restart must both fire");
        assert!(cluster.is_up(ProcessId(2)));
        // The recovered cluster still serves the value.
        let v = cluster.client(ProcessId(2)).read().unwrap();
        assert_eq!(v.as_u32(), Some(9));
        cluster.shutdown();
    }

    #[test]
    fn redundant_events_are_skipped_not_fatal() {
        let mut cluster = LocalCluster::channel(3, Transient::factory()).unwrap();
        let schedule = FaultSchedule::new()
            .at(Duration::ZERO, FaultEvent::Restart(ProcessId(1))) // already up
            .at(Duration::from_millis(1), FaultEvent::Kill(ProcessId(1)))
            .at(Duration::from_millis(2), FaultEvent::Kill(ProcessId(1))) // already down
            .at(Duration::from_millis(3), FaultEvent::Restart(ProcessId(1)));
        let applied = schedule.run(&mut cluster).unwrap();
        assert_eq!(applied.len(), 2);
        assert!(cluster.is_up(ProcessId(1)));
        cluster.shutdown();
    }
}
