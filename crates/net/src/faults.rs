//! Scripted fault injection for real-threaded clusters: the wall-clock
//! analogue of the simulator's crash/recovery `Schedule`.
//!
//! The simulator plants crashes at virtual microsecond precision; a
//! [`LocalCluster`] lives in real time, so migration experiments (e.g. a
//! live shard split under traffic) need their faults scheduled against
//! the clock instead. A [`FaultSchedule`] is a sorted script of
//! kill/restart events relative to a start instant;
//! [`run`](FaultSchedule::run) plays it against a cluster, blocking the
//! driving thread — spawn it next to the workload threads and join it at
//! the end:
//!
//! ```no_run
//! use std::time::Duration;
//! use rmem_net::{FaultSchedule, LocalCluster};
//! use rmem_types::ProcessId;
//!
//! # fn demo(mut cluster: LocalCluster) {
//! let schedule = FaultSchedule::new()
//!     .crash_for(Duration::from_millis(20), ProcessId(1), Duration::from_millis(40));
//! std::thread::scope(|scope| {
//!     scope.spawn(|| schedule.run(&mut cluster));
//!     // …drive client traffic here…
//! });
//! # }
//! ```
//!
//! Events apply defensively: killing a dead process or restarting a live
//! one is a no-op (the schedule is a script, not an invariant), so seeds
//! can generate overlapping windows without wedging the run.

use std::time::{Duration, Instant};

use rmem_types::ProcessId;

use crate::cluster::LocalCluster;
use crate::error::NetError;

/// One scripted fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultEvent {
    /// Kill the process (volatile state gone, stable storage survives).
    Kill(ProcessId),
    /// Restart the process (it runs the algorithm's recovery procedure).
    Restart(ProcessId),
    /// Append garbage to the killed process's newest write-ahead-log
    /// segment (see
    /// [`LocalCluster::tear_wal_tail`](crate::LocalCluster::tear_wal_tail)),
    /// so its next restart recovers from a torn tail. Skipped defensively
    /// if the process is up or has no WAL disk.
    TearTail(ProcessId),
    /// Signal the workload that client `u64` should crash now. The
    /// cluster itself is untouched; the signal reaches the workload
    /// through the handler passed to
    /// [`run_with`](FaultSchedule::run_with).
    ClientCrash(u64),
}

/// A wall-clock fault script for a [`LocalCluster`].
#[derive(Debug, Clone, Default)]
pub struct FaultSchedule {
    entries: Vec<(Duration, FaultEvent)>,
}

impl FaultSchedule {
    /// An empty schedule.
    pub fn new() -> Self {
        FaultSchedule::default()
    }

    /// Plants `event` at `after` past the run's start.
    pub fn at(mut self, after: Duration, event: FaultEvent) -> Self {
        self.entries.push((after, event));
        self
    }

    /// Convenience: kill `pid` at `after` and restart it `down_for`
    /// later.
    pub fn crash_for(self, after: Duration, pid: ProcessId, down_for: Duration) -> Self {
        self.at(after, FaultEvent::Kill(pid))
            .at(after + down_for, FaultEvent::Restart(pid))
    }

    /// The planted events (unsorted, as scripted).
    pub fn entries(&self) -> &[(Duration, FaultEvent)] {
        &self.entries
    }

    /// Plays the schedule against `cluster`, blocking until the last
    /// event fired. Returns the events actually applied (a kill of an
    /// already-dead process or a restart of a live one is skipped).
    /// [`ClientCrash`](FaultEvent::ClientCrash) events are dropped — use
    /// [`run_with`](FaultSchedule::run_with) to receive them.
    ///
    /// # Errors
    ///
    /// Returns [`NetError`] if a restart cannot rebuild its transport.
    pub fn run(&self, cluster: &mut LocalCluster) -> Result<Vec<(Duration, FaultEvent)>, NetError> {
        self.run_with(cluster, |_| {})
    }

    /// [`run`](FaultSchedule::run), additionally delivering each
    /// [`ClientCrash`](FaultEvent::ClientCrash) to `on_client` at its
    /// scheduled instant. The handler typically flips a per-client
    /// `AtomicBool` the workload threads watch.
    ///
    /// # Errors
    ///
    /// Returns [`NetError`] if a restart cannot rebuild its transport.
    pub fn run_with(
        &self,
        cluster: &mut LocalCluster,
        mut on_client: impl FnMut(u64),
    ) -> Result<Vec<(Duration, FaultEvent)>, NetError> {
        let mut script = self.entries.clone();
        script.sort_by_key(|(after, _)| *after);
        let start = Instant::now();
        let mut applied = Vec::new();
        for (after, event) in script {
            if let Some(wait) = after.checked_sub(start.elapsed()) {
                std::thread::sleep(wait);
            }
            match event {
                FaultEvent::Kill(pid) => {
                    if cluster.is_up(pid) {
                        cluster.kill(pid);
                        applied.push((start.elapsed(), event));
                    }
                }
                FaultEvent::Restart(pid) => {
                    if !cluster.is_up(pid) {
                        cluster.restart(pid)?;
                        applied.push((start.elapsed(), event));
                    }
                }
                FaultEvent::TearTail(pid) => {
                    if !cluster.is_up(pid) && cluster.has_wal_disk(pid) {
                        cluster.tear_wal_tail(pid).map_err(|e| NetError::Disk {
                            pid,
                            source: std::sync::Arc::new(e),
                        })?;
                        applied.push((start.elapsed(), event));
                    }
                }
                FaultEvent::ClientCrash(client) => {
                    on_client(client);
                    applied.push((start.elapsed(), event));
                }
            }
        }
        Ok(applied)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmem_core::Transient;
    use rmem_types::Value;

    #[test]
    fn schedule_kills_and_recovers_on_the_clock() {
        let mut cluster = LocalCluster::channel(3, Transient::factory()).unwrap();
        cluster
            .client(ProcessId(0))
            .write(Value::from_u32(9))
            .unwrap();
        let schedule = FaultSchedule::new().crash_for(
            Duration::from_millis(10),
            ProcessId(2),
            Duration::from_millis(30),
        );
        let applied = schedule.run(&mut cluster).unwrap();
        assert_eq!(applied.len(), 2, "kill + restart must both fire");
        assert!(cluster.is_up(ProcessId(2)));
        // The recovered cluster still serves the value.
        let v = cluster.client(ProcessId(2)).read().unwrap();
        assert_eq!(v.as_u32(), Some(9));
        cluster.shutdown();
    }

    #[test]
    fn torn_tail_recovery_rides_the_schedule() {
        let dir = std::env::temp_dir().join(format!("rmem-faults-tear-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        // Node 0 is WAL-backed (wal_every covers only p0 of 3).
        let mut cluster = LocalCluster::channel_mixed(3, Transient::factory(), &dir, 3).unwrap();
        cluster
            .client(ProcessId(0))
            .write(Value::from_u32(77))
            .unwrap();
        let schedule = FaultSchedule::new()
            .at(Duration::from_millis(5), FaultEvent::Kill(ProcessId(0)))
            .at(
                Duration::from_millis(10),
                FaultEvent::TearTail(ProcessId(0)),
            )
            // Tearing a memory-disk node is skipped, not fatal.
            .at(
                Duration::from_millis(11),
                FaultEvent::TearTail(ProcessId(1)),
            )
            .at(Duration::from_millis(20), FaultEvent::Restart(ProcessId(0)));
        let applied = schedule.run(&mut cluster).unwrap();
        let torn = applied
            .iter()
            .filter(|(_, e)| matches!(e, FaultEvent::TearTail(_)))
            .count();
        assert_eq!(torn, 1, "only the WAL-backed node's tear applies");
        // The recovered node truncated the torn tail and still serves the
        // logged value.
        let v = cluster.client(ProcessId(0)).read().unwrap();
        assert_eq!(v.as_u32(), Some(77));
        cluster.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn client_crashes_reach_the_handler_in_order() {
        let mut cluster = LocalCluster::channel(3, Transient::factory()).unwrap();
        let schedule = FaultSchedule::new()
            .at(Duration::from_millis(2), FaultEvent::ClientCrash(7))
            .at(Duration::from_millis(1), FaultEvent::ClientCrash(4));
        let mut seen = Vec::new();
        let applied = schedule.run_with(&mut cluster, |c| seen.push(c)).unwrap();
        assert_eq!(seen, vec![4, 7]);
        assert_eq!(applied.len(), 2);
        cluster.shutdown();
    }

    #[test]
    fn redundant_events_are_skipped_not_fatal() {
        let mut cluster = LocalCluster::channel(3, Transient::factory()).unwrap();
        let schedule = FaultSchedule::new()
            .at(Duration::ZERO, FaultEvent::Restart(ProcessId(1))) // already up
            .at(Duration::from_millis(1), FaultEvent::Kill(ProcessId(1)))
            .at(Duration::from_millis(2), FaultEvent::Kill(ProcessId(1))) // already down
            .at(Duration::from_millis(3), FaultEvent::Restart(ProcessId(1)));
        let applied = schedule.run(&mut cluster).unwrap();
        assert_eq!(applied.len(), 2);
        assert!(cluster.is_up(ProcessId(1)));
        cluster.shutdown();
    }
}
