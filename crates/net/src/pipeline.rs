//! The client-side reactor: many operations in flight per process.
//!
//! A plain [`Client`](crate::Client) op occupies its calling thread for
//! the full quorum round-trip, so closed-loop throughput scales with
//! thread count, not with what the wire can carry. This module mirrors
//! the runner's per-register op-table design (PR 2) on the client side:
//!
//! * an [`InFlightTable`] of **completion slots**, keyed by a
//!   generation-tagged token (`generation << 32 | slot`) so a late ack
//!   for a reclaimed slot is *counted* — never delivered to the slot's
//!   next tenant;
//! * one shared completion channel per [`Pipeline`] instead of a fresh
//!   rendezvous channel per op — the runner tags every completion with
//!   the submitting token and the reactor routes it to its slot;
//! * a leader/follower drain: whichever waiter arrives first blocks on
//!   the channel and routes completions for everyone (a condvar wakes
//!   the others), so any number of submitted operations make progress
//!   with zero dedicated reactor threads;
//! * reusable encode scratch per slot: payloads are built in the slot's
//!   [`BytesMut`] and handed to the wire as a zero-copy [`Bytes`] split;
//!   `reserve` reclaims the backing allocation once the wire has dropped
//!   its handle, so steady-state submission does not allocate.
//!
//! [`PipelinedClient`] is the public face: `submit*`/`poll`/`wait*` over
//! one node (via [`Client::pipelined`](crate::Client::pipelined)) or a
//! whole cluster (via [`PipelinedClient::fan`]). The blocking `Client`
//! API is exactly the depth-1 shim: `invoke = submit + wait`.

use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use bytes::{Bytes, BytesMut};
use crossbeam::channel::{unbounded, Receiver, Sender};
use rmem_types::{LeaseGrant, Op, OpResult, ProcessId, RegisterId, RejectReason, TraceId, Value};

use crate::error::ClientError;
use crate::runner::{Client, Completion, RunnerEvent, TraceCtx};

/// How long a follower waits on the condvar before re-checking for a
/// missing drainer (belt-and-braces against a lost wakeup; the notify
/// on every leader hand-off is the fast path).
const DRAIN_SLICE: Duration = Duration::from_millis(25);

/// A completion settled by [`wait_any`](PipelinedClient::wait_any): the
/// ticket's index in the caller's list plus its settled result (the op
/// outcome, quorum round count, and — for leasing flavors — the minted
/// tag-lease grant, `None` otherwise).
pub type AnyCompletion = (usize, Result<Settled, ClientError>);

/// A settled completion: the op outcome, how many quorum round-trips it
/// took (0 = served from a live coordinator lease), and the tag-lease
/// grant the emulation minted for it, if any.
pub type Settled = (OpResult, u32, Option<LeaseGrant>);

/// A claim check for one submitted operation: the slot index plus the
/// slot's generation at submission time.
///
/// The wire token a completion carries back is [`token`](Ticket::token)
/// (`generation << 32 | slot`); once the slot is reclaimed its
/// generation is bumped, so a straggler ack fails the generation check
/// instead of landing in a stranger's slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Ticket {
    slot: u32,
    generation: u32,
}

impl Ticket {
    /// The token completions for this submission carry.
    pub fn token(self) -> u64 {
        (u64::from(self.generation) << 32) | u64::from(self.slot)
    }

    /// The slot index (diagnostic — lets tests observe slot reuse).
    pub fn slot(self) -> u32 {
        self.slot
    }
}

/// Where [`InFlightTable::route`] delivered a completion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Routed {
    /// The completion landed in its own, still-waiting slot.
    Delivered,
    /// The slot already held a completion (a duplicated ack): the first
    /// delivery wins; the duplicate is counted and dropped.
    Duplicate,
    /// The slot was reclaimed or never existed (generation or index
    /// mismatch): a late ack, counted and dropped — never delivered to
    /// the slot's current tenant.
    Late,
}

/// What [`InFlightTable::claim`] found in the ticket's slot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Claimed {
    /// The operation completed with this result after this many quorum
    /// round-trips (plus the minted tag-lease grant, if any); the slot
    /// has been reclaimed.
    Ready(OpResult, u32, Option<LeaseGrant>),
    /// Still awaiting its completion.
    Pending,
    /// The ticket was already claimed or cancelled.
    Gone,
}

enum SlotState {
    Free,
    InFlight,
    Done {
        result: OpResult,
        rounds: u32,
        lease: Option<LeaseGrant>,
    },
}

struct Slot {
    generation: u32,
    state: SlotState,
    target: usize,
    reg: RegisterId,
    trace: Option<TraceId>,
    scratch: BytesMut,
}

/// The reactor's completion-slot table: every operation submitted and
/// not yet claimed, keyed by generation-tagged slot token.
///
/// This is the client-side mirror of the runner's `OpTable`: slots are
/// recycled through a free list, reclaiming a slot bumps its generation
/// (so tokens are never ambiguous), and acks that miss — late arrivals
/// for reclaimed slots, duplicates for already-completed ones — are
/// counted in [`late_acks`](InFlightTable::late_acks) in the style of
/// `runner.trace_evictions` rather than dropped silently.
#[derive(Default)]
pub struct InFlightTable {
    slots: Vec<Slot>,
    free: Vec<u32>,
    in_flight: usize,
    late_acks: u64,
}

impl InFlightTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates a slot for an operation on `reg` bound for `target`,
    /// reusing a reclaimed slot (and its scratch buffer) when one is
    /// free.
    pub fn begin(&mut self, target: usize, reg: RegisterId, trace: Option<TraceId>) -> Ticket {
        let idx = match self.free.pop() {
            Some(idx) => idx,
            None => {
                self.slots.push(Slot {
                    generation: 0,
                    state: SlotState::Free,
                    target: 0,
                    reg: RegisterId::ZERO,
                    trace: None,
                    scratch: BytesMut::new(),
                });
                (self.slots.len() - 1) as u32
            }
        };
        let slot = &mut self.slots[idx as usize];
        debug_assert!(matches!(slot.state, SlotState::Free));
        slot.state = SlotState::InFlight;
        slot.target = target;
        slot.reg = reg;
        slot.trace = trace;
        self.in_flight += 1;
        Ticket {
            slot: idx,
            generation: slot.generation,
        }
    }

    /// Builds a payload in the ticket's slot scratch and returns it as a
    /// zero-copy [`Bytes`] handle. The scratch keeps its backing
    /// allocation across submissions: `split().freeze()` hands the
    /// filled prefix to the wire, and the next `fill`'s reserve reclaims
    /// the buffer once that handle is dropped.
    ///
    /// # Panics
    ///
    /// If the ticket's slot was reclaimed (caller bug: encoding must
    /// happen between [`begin`](Self::begin) and the op's claim).
    pub fn encode_with(&mut self, ticket: Ticket, fill: impl FnOnce(&mut BytesMut)) -> Bytes {
        let slot = self
            .slot_mut(ticket)
            .expect("encoding into a reclaimed slot");
        slot.scratch.clear();
        fill(&mut slot.scratch);
        slot.scratch.split().freeze()
    }

    /// Routes a tagged completion to its slot. Late and duplicated acks
    /// are counted and dropped — a completion is **never** delivered to
    /// a slot whose generation moved on.
    pub fn route(
        &mut self,
        token: u64,
        result: OpResult,
        rounds: u32,
        lease: Option<LeaseGrant>,
    ) -> Routed {
        let idx = (token & u64::from(u32::MAX)) as usize;
        let generation = (token >> 32) as u32;
        let Some(slot) = self.slots.get_mut(idx) else {
            self.late_acks += 1;
            return Routed::Late;
        };
        if slot.generation != generation {
            self.late_acks += 1;
            return Routed::Late;
        }
        match slot.state {
            SlotState::InFlight => {
                slot.state = SlotState::Done {
                    result,
                    rounds,
                    lease,
                };
                Routed::Delivered
            }
            SlotState::Done { .. } => {
                self.late_acks += 1;
                Routed::Duplicate
            }
            // Unreachable while generations are bumped on reclaim, but a
            // free slot must never accept a completion.
            SlotState::Free => {
                self.late_acks += 1;
                Routed::Late
            }
        }
    }

    /// Claims the ticket's completion if it arrived, reclaiming the
    /// slot. A `Pending` claim leaves the slot untouched; a `Gone` claim
    /// means the ticket was already claimed or cancelled.
    pub fn claim(&mut self, ticket: Ticket) -> Claimed {
        match self.slot_mut(ticket) {
            None => Claimed::Gone,
            Some(slot) => match std::mem::replace(&mut slot.state, SlotState::Free) {
                SlotState::InFlight => {
                    slot.state = SlotState::InFlight;
                    Claimed::Pending
                }
                SlotState::Free => Claimed::Gone,
                SlotState::Done {
                    result,
                    rounds,
                    lease,
                } => {
                    self.reclaim(ticket.slot);
                    Claimed::Ready(result, rounds, lease)
                }
            },
        }
    }

    /// Abandons the ticket's operation, reclaiming its slot (and scratch
    /// buffer) whether or not the completion arrived. Returns `false` if
    /// the ticket was already claimed or cancelled. The ack, if it comes
    /// later, fails the generation check and is counted late.
    pub fn cancel(&mut self, ticket: Ticket) -> bool {
        match self.slot_mut(ticket) {
            None => false,
            Some(slot) => {
                if matches!(slot.state, SlotState::Free) {
                    return false;
                }
                slot.state = SlotState::Free;
                self.reclaim(ticket.slot);
                true
            }
        }
    }

    /// The submission metadata a completion should be settled under:
    /// (target index, register, trace id). `None` once the slot was
    /// reclaimed.
    pub(crate) fn meta(&self, ticket: Ticket) -> Option<(usize, RegisterId, Option<TraceId>)> {
        let slot = self.slots.get(ticket.slot as usize)?;
        if slot.generation != ticket.generation || matches!(slot.state, SlotState::Free) {
            return None;
        }
        Some((slot.target, slot.reg, slot.trace))
    }

    /// How many submitted operations have not been claimed or cancelled.
    pub fn in_flight(&self) -> usize {
        self.in_flight
    }

    /// How many acks missed their slot (late after reclaim, duplicated,
    /// or malformed) — the client-side analogue of the runner's
    /// `trace_evictions` counter. They are counted precisely because
    /// they are *dropped*: a nonzero value with a quiescent table is
    /// bookkeeping, a misdelivery would be a correctness bug.
    pub fn late_acks(&self) -> u64 {
        self.late_acks
    }

    /// How many slots the table has ever grown to (diagnostic: a leak
    /// shows up as `capacity() - free list length` exceeding
    /// [`in_flight`](Self::in_flight)).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    fn slot_mut(&mut self, ticket: Ticket) -> Option<&mut Slot> {
        let slot = self.slots.get_mut(ticket.slot as usize)?;
        (slot.generation == ticket.generation).then_some(slot)
    }

    fn reclaim(&mut self, idx: u32) {
        let slot = &mut self.slots[idx as usize];
        slot.generation = slot.generation.wrapping_add(1);
        slot.trace = None;
        slot.scratch.clear();
        self.free.push(idx);
        self.in_flight -= 1;
    }
}

/// One submission target: a runner's control channel plus the identity
/// and frame ceiling the old blocking `Client` carried.
#[derive(Clone)]
pub(crate) struct Target {
    pub(crate) tx: Sender<RunnerEvent>,
    pub(crate) me: ProcessId,
    pub(crate) max_payload: Option<usize>,
}

struct Reactor {
    table: InFlightTable,
    /// Whether some waiter currently holds drain duty (is blocked on the
    /// completion channel on everyone's behalf).
    draining: bool,
}

/// The shared reactor state behind every [`Client`] clone and
/// [`PipelinedClient`] of one family: targets, the tagged completion
/// channel, and the slot table.
pub(crate) struct Pipeline {
    targets: Vec<Target>,
    done_tx: Sender<Completion>,
    done_rx: Receiver<Completion>,
    inner: Mutex<Reactor>,
    wake: Condvar,
}

impl Pipeline {
    pub(crate) fn new(targets: Vec<Target>) -> Self {
        let (done_tx, done_rx) = unbounded();
        Pipeline {
            targets,
            done_tx,
            done_rx,
            inner: Mutex::new(Reactor {
                table: InFlightTable::new(),
                draining: false,
            }),
            wake: Condvar::new(),
        }
    }

    pub(crate) fn target(&self, i: usize) -> &Target {
        &self.targets[i]
    }

    pub(crate) fn targets(&self) -> usize {
        self.targets.len()
    }

    /// Rejects a value the target's transport could never deliver —
    /// without this, the fair-lossy runtime retransmits the
    /// untransmittable message until the patience window expires.
    fn check_frame(&self, target: usize, value: &Value) -> Result<(), ClientError> {
        if let Some(limit) = self.targets[target].max_payload {
            let size = value.bytes().len() + rmem_types::codec::VALUE_MSG_OVERHEAD;
            if size > limit {
                return Err(ClientError::TooLarge { size, limit });
            }
        }
        Ok(())
    }

    /// Submits `operation` to `target`, returning immediately with the
    /// claim ticket.
    pub(crate) fn submit(
        &self,
        target: usize,
        operation: Op,
        trace: Option<&TraceCtx>,
    ) -> Result<Ticket, ClientError> {
        if let Some(value) = operation.write_value() {
            self.check_frame(target, value)?;
        }
        let reg = operation.register();
        let trace_id = trace.map(|ctx| ctx.begin(reg, self.targets[target].me));
        let ticket = {
            let mut g = self.inner.lock().expect("pipeline lock");
            g.table.begin(target, reg, trace_id)
        };
        self.dispatch(target, operation, ticket, trace_id)
    }

    /// Submits a write whose payload is built directly in the ticket's
    /// reusable scratch buffer (zero-copy into the wire value).
    pub(crate) fn submit_write_with(
        &self,
        target: usize,
        reg: RegisterId,
        trace: Option<&TraceCtx>,
        fill: impl FnOnce(&mut BytesMut),
    ) -> Result<Ticket, ClientError> {
        let trace_id = trace.map(|ctx| ctx.begin(reg, self.targets[target].me));
        let (ticket, value) = {
            let mut g = self.inner.lock().expect("pipeline lock");
            let ticket = g.table.begin(target, reg, trace_id);
            let bytes = g.table.encode_with(ticket, fill);
            (ticket, Value::new(bytes))
        };
        if let Err(e) = self.check_frame(target, &value) {
            self.cancel(ticket);
            return Err(e);
        }
        self.dispatch(target, Op::WriteAt(reg, value), ticket, trace_id)
    }

    fn dispatch(
        &self,
        target: usize,
        operation: Op,
        ticket: Ticket,
        trace: Option<TraceId>,
    ) -> Result<Ticket, ClientError> {
        let sent = self.targets[target].tx.send(RunnerEvent::Invoke {
            operation,
            reply: self.done_tx.clone(),
            token: ticket.token(),
            trace,
        });
        if sent.is_err() {
            // The runner is gone; nothing will ever complete this slot.
            self.cancel(ticket);
            return Err(ClientError::ProcessDown);
        }
        Ok(ticket)
    }

    /// Routes everything already sitting in the completion channel.
    fn drain_ready(&self, reactor: &mut Reactor) {
        while let Ok((token, result, rounds, lease)) = self.done_rx.try_recv() {
            reactor.table.route(token, result, rounds, lease);
        }
    }

    /// Maps a claimed completion to the client-facing result, recording
    /// the trace `ClientRecv` for completions (rejections leave an
    /// unpaired `ClientSend`, which the stitcher ignores).
    fn settle(
        &self,
        result: OpResult,
        rounds: u32,
        lease: Option<LeaseGrant>,
        meta: Option<(usize, RegisterId, Option<TraceId>)>,
        trace: Option<&TraceCtx>,
    ) -> Result<Settled, ClientError> {
        match result {
            OpResult::Rejected(RejectReason::Shutdown) => Err(ClientError::ProcessDown),
            OpResult::Rejected(_) => Err(ClientError::Busy),
            result => {
                if let (Some(ctx), Some((target, reg, Some(id)))) = (trace, meta) {
                    ctx.finish(id, reg, self.targets[target].me);
                }
                Ok((result, rounds, lease))
            }
        }
    }

    /// Claims the ticket's result without blocking; `None` while the
    /// completion is still in flight.
    pub(crate) fn poll(
        &self,
        ticket: Ticket,
        trace: Option<&TraceCtx>,
    ) -> Option<Result<Settled, ClientError>> {
        let mut g = self.inner.lock().expect("pipeline lock");
        self.drain_ready(&mut g);
        let meta = g.table.meta(ticket);
        match g.table.claim(ticket) {
            Claimed::Pending => None,
            Claimed::Gone => panic!("polling a ticket that was already claimed or cancelled"),
            Claimed::Ready(result, rounds, lease) => {
                drop(g);
                Some(self.settle(result, rounds, lease, meta, trace))
            }
        }
    }

    /// Blocks until the ticket completes or `timeout` passes (the slot
    /// is cancelled on timeout — its late ack will be counted, not
    /// misdelivered). Any number of threads may wait concurrently: the
    /// first becomes the drainer and routes completions for everyone.
    pub(crate) fn wait(
        &self,
        ticket: Ticket,
        timeout: Duration,
        trace: Option<&TraceCtx>,
    ) -> Result<Settled, ClientError> {
        let deadline = Instant::now() + timeout;
        let mut g = self.inner.lock().expect("pipeline lock");
        loop {
            self.drain_ready(&mut g);
            let meta = g.table.meta(ticket);
            match g.table.claim(ticket) {
                Claimed::Ready(result, rounds, lease) => {
                    drop(g);
                    // A follower may be asleep with no drainer left.
                    self.wake.notify_all();
                    return self.settle(result, rounds, lease, meta, trace);
                }
                Claimed::Gone => {
                    panic!("waiting on a ticket that was already claimed or cancelled")
                }
                Claimed::Pending => {}
            }
            let now = Instant::now();
            if now >= deadline {
                g.table.cancel(ticket);
                drop(g);
                self.wake.notify_all();
                return Err(ClientError::TimedOut);
            }
            g = self.drain_cycle(g, deadline - now);
        }
    }

    /// Blocks until *some* ticket in `tickets` completes, returning its
    /// index and settled result (the others stay in flight). `None` if
    /// `timeout` passes first — unlike [`wait`](Self::wait) nothing is
    /// cancelled; the caller decides what to abandon.
    pub(crate) fn wait_any(
        &self,
        tickets: &[Ticket],
        timeout: Duration,
        trace: Option<&TraceCtx>,
    ) -> Option<AnyCompletion> {
        let deadline = Instant::now() + timeout;
        let mut g = self.inner.lock().expect("pipeline lock");
        loop {
            self.drain_ready(&mut g);
            for (i, &ticket) in tickets.iter().enumerate() {
                let meta = g.table.meta(ticket);
                if let Claimed::Ready(result, rounds, lease) = g.table.claim(ticket) {
                    drop(g);
                    self.wake.notify_all();
                    return Some((i, self.settle(result, rounds, lease, meta, trace)));
                }
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            g = self.drain_cycle(g, deadline - now);
        }
    }

    /// One leader/follower blocking round: become the drainer if nobody
    /// is (block on the channel, route what arrives, hand duty back), or
    /// wait a condvar slice for the drainer's notify.
    fn drain_cycle<'a>(
        &'a self,
        mut g: std::sync::MutexGuard<'a, Reactor>,
        remaining: Duration,
    ) -> std::sync::MutexGuard<'a, Reactor> {
        if !g.draining {
            g.draining = true;
            drop(g);
            let got = self.done_rx.recv_timeout(remaining.min(DRAIN_SLICE * 4));
            let mut g = self.inner.lock().expect("pipeline lock");
            g.draining = false;
            if let Ok((token, result, rounds, lease)) = got {
                g.table.route(token, result, rounds, lease);
            }
            // Hand the drain duty over (and wake anyone whose completion
            // just routed) before looping.
            self.wake.notify_all();
            g
        } else {
            let (g, _timeout) = self
                .wake
                .wait_timeout(g, remaining.min(DRAIN_SLICE))
                .expect("pipeline lock");
            g
        }
    }

    pub(crate) fn cancel(&self, ticket: Ticket) -> bool {
        let mut g = self.inner.lock().expect("pipeline lock");
        g.table.cancel(ticket)
    }

    pub(crate) fn in_flight(&self) -> usize {
        self.inner.lock().expect("pipeline lock").table.in_flight()
    }

    pub(crate) fn late_acks(&self) -> u64 {
        self.inner.lock().expect("pipeline lock").table.late_acks()
    }
}

/// A pipelined handle over one node or a whole cluster: `submit` returns
/// a [`Ticket`] immediately, `poll`/`wait`/`wait_any`/`wait_all` settle
/// them in any order — one thread can keep an arbitrary pipeline depth
/// in flight.
///
/// Obtain one from [`Client::pipelined`](crate::Client::pipelined) (one
/// node, sharing the blocking client's reactor) or
/// [`PipelinedClient::fan`] (one reactor spanning several nodes' control
/// channels, each addressed by its index).
///
/// Per-register sequentiality still holds at the *runner*: two in-flight
/// operations on the same register of the same node get one `Busy`
/// rejection (exactly as two blocking clients racing would). Pipelining
/// buys concurrency across registers and nodes, which is how the kv
/// layer uses it — one submission per shard queue at a time.
pub struct PipelinedClient {
    pipe: Arc<Pipeline>,
    timeout: Duration,
    trace: Option<Arc<TraceCtx>>,
}

impl std::fmt::Debug for PipelinedClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PipelinedClient")
            .field("nodes", &self.pipe.targets())
            .field("timeout", &self.timeout)
            .field("in_flight", &self.pipe.in_flight())
            .finish()
    }
}

impl PipelinedClient {
    pub(crate) fn from_parts(
        pipe: Arc<Pipeline>,
        timeout: Duration,
        trace: Option<Arc<TraceCtx>>,
    ) -> Self {
        PipelinedClient {
            pipe,
            timeout,
            trace,
        }
    }

    /// One reactor spanning several nodes: submissions name the node by
    /// its index in `clients`. Patience and trace context are inherited
    /// from the first client (the kv layer configures its per-node
    /// clients uniformly). The fan gets its own in-flight table and
    /// completion channel, isolated from the blocking clients' traffic.
    ///
    /// # Panics
    ///
    /// If `clients` is empty.
    pub fn fan(clients: &[Client]) -> Self {
        assert!(!clients.is_empty(), "a fan needs at least one node");
        let targets = clients.iter().map(|c| c.pipe().target(0).clone()).collect();
        PipelinedClient {
            pipe: Arc::new(Pipeline::new(targets)),
            timeout: clients[0].patience(),
            trace: clients[0].trace_ctx(),
        }
    }

    /// How many nodes this handle can submit to.
    pub fn nodes(&self) -> usize {
        self.pipe.targets()
    }

    /// Replaces the patience window used by the `wait*` calls.
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }

    /// Submits `operation` to node `node`, returning its claim ticket
    /// immediately.
    ///
    /// # Errors
    ///
    /// [`ClientError::TooLarge`] if a written value cannot fit the
    /// transport frame, [`ClientError::ProcessDown`] if the node's event
    /// loop is gone.
    pub fn submit(&self, node: usize, operation: Op) -> Result<Ticket, ClientError> {
        self.pipe.submit(node, operation, self.trace.as_deref())
    }

    /// Submits a read of register `reg` at node `node`.
    ///
    /// # Errors
    ///
    /// As for [`submit`](Self::submit).
    pub fn submit_read(&self, node: usize, reg: RegisterId) -> Result<Ticket, ClientError> {
        self.submit(node, Op::ReadAt(reg))
    }

    /// Submits a write of `value` to register `reg` at node `node`.
    ///
    /// # Errors
    ///
    /// As for [`submit`](Self::submit).
    pub fn submit_write(
        &self,
        node: usize,
        reg: RegisterId,
        value: Value,
    ) -> Result<Ticket, ClientError> {
        self.submit(node, Op::WriteAt(reg, value))
    }

    /// Submits a write whose payload `fill` builds directly in the
    /// slot's reusable scratch buffer — the zero-copy submission path.
    ///
    /// # Errors
    ///
    /// As for [`submit`](Self::submit).
    pub fn submit_write_with(
        &self,
        node: usize,
        reg: RegisterId,
        fill: impl FnOnce(&mut BytesMut),
    ) -> Result<Ticket, ClientError> {
        self.pipe
            .submit_write_with(node, reg, self.trace.as_deref(), fill)
    }

    /// Claims the ticket's result if its completion arrived; `None`
    /// while still in flight. Never blocks.
    ///
    /// # Panics
    ///
    /// If the ticket was already claimed or cancelled.
    pub fn poll(&self, ticket: Ticket) -> Option<Result<(OpResult, u32), ClientError>> {
        self.poll_leased(ticket)
            .map(|r| r.map(|(result, rounds, _)| (result, rounds)))
    }

    /// As [`poll`](Self::poll), additionally surfacing the tag-lease
    /// grant a leasing flavor's fast path may have minted for this op
    /// (`None` for non-leasing flavors and non-minting completions).
    ///
    /// # Panics
    ///
    /// If the ticket was already claimed or cancelled.
    pub fn poll_leased(&self, ticket: Ticket) -> Option<Result<Settled, ClientError>> {
        self.pipe.poll(ticket, self.trace.as_deref())
    }

    /// Blocks until the ticket completes or the patience window passes
    /// (the op is cancelled and [`ClientError::TimedOut`] returned).
    ///
    /// # Errors
    ///
    /// [`ClientError::Busy`] if the runner rejected the op (another op
    /// was in flight on the same register of that node),
    /// [`ClientError::ProcessDown`] if the node halted with the op
    /// pending, [`ClientError::TimedOut`] as its name says.
    pub fn wait(&self, ticket: Ticket) -> Result<(OpResult, u32), ClientError> {
        self.wait_leased(ticket)
            .map(|(result, rounds, _)| (result, rounds))
    }

    /// As [`wait`](Self::wait), additionally surfacing the tag-lease
    /// grant a leasing flavor's fast path may have minted for this op.
    ///
    /// # Errors
    ///
    /// As for [`wait`](Self::wait).
    pub fn wait_leased(&self, ticket: Ticket) -> Result<Settled, ClientError> {
        self.pipe.wait(ticket, self.timeout, self.trace.as_deref())
    }

    /// Blocks until *some* listed ticket completes, returning its index
    /// in `tickets` and its settled result; the others stay in flight.
    /// `None` if the patience window passes first — nothing is cancelled
    /// then, the caller decides what to abandon.
    pub fn wait_any(&self, tickets: &[Ticket]) -> Option<AnyCompletion> {
        self.pipe
            .wait_any(tickets, self.timeout, self.trace.as_deref())
    }

    /// Settles every listed ticket (in order), waiting where necessary:
    /// completions are claimed, timeouts cancelled. After `wait_all`
    /// returns, none of the listed tickets occupies a slot.
    pub fn wait_all(&self, tickets: &[Ticket]) -> Vec<Result<(OpResult, u32), ClientError>> {
        tickets.iter().map(|&t| self.wait(t)).collect()
    }

    /// As [`wait_all`](Self::wait_all), surfacing lease grants.
    pub fn wait_all_leased(&self, tickets: &[Ticket]) -> Vec<Result<Settled, ClientError>> {
        tickets.iter().map(|&t| self.wait_leased(t)).collect()
    }

    /// Abandons an in-flight op: its slot and scratch buffer are
    /// reclaimed now, its ack (if it ever comes) is counted late.
    /// Returns `false` if the ticket was already claimed or cancelled.
    pub fn cancel(&self, ticket: Ticket) -> bool {
        self.pipe.cancel(ticket)
    }

    /// How many submitted operations are currently unclaimed.
    pub fn in_flight(&self) -> usize {
        self.pipe.in_flight()
    }

    /// How many acks missed their slot (see
    /// [`InFlightTable::late_acks`]).
    pub fn late_acks(&self) -> u64 {
        self.pipe.late_acks()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmem_types::Value;

    fn done(v: u32) -> OpResult {
        OpResult::ReadValue(Value::from_u32(v))
    }

    #[test]
    fn tokens_round_trip_and_route_to_their_own_slot() {
        let mut table = InFlightTable::new();
        let a = table.begin(0, RegisterId(1), None);
        let b = table.begin(0, RegisterId(2), None);
        assert_ne!(a.token(), b.token());
        assert_eq!(table.route(b.token(), done(2), 1, None), Routed::Delivered);
        assert_eq!(table.claim(a), Claimed::Pending);
        assert_eq!(table.claim(b), Claimed::Ready(done(2), 1, None));
        assert_eq!(table.route(a.token(), done(1), 2, None), Routed::Delivered);
        assert_eq!(table.claim(a), Claimed::Ready(done(1), 2, None));
        assert_eq!(table.in_flight(), 0);
        assert_eq!(table.late_acks(), 0);
    }

    #[test]
    fn late_and_duplicate_acks_are_counted_never_misdelivered() {
        let mut table = InFlightTable::new();
        let a = table.begin(0, RegisterId(1), None);
        assert!(table.cancel(a));
        // The slot is reclaimed; the straggler ack must not land.
        assert_eq!(table.route(a.token(), done(9), 1, None), Routed::Late);
        assert_eq!(table.late_acks(), 1);
        // The slot's next tenant is unaffected.
        let b = table.begin(0, RegisterId(7), None);
        assert_eq!(b.slot(), a.slot(), "slot is recycled");
        assert_eq!(table.claim(b), Claimed::Pending);
        assert_eq!(table.route(a.token(), done(9), 1, None), Routed::Late);
        assert_eq!(table.route(b.token(), done(3), 1, None), Routed::Delivered);
        assert_eq!(table.route(b.token(), done(4), 1, None), Routed::Duplicate);
        assert_eq!(table.claim(b), Claimed::Ready(done(3), 1, None));
        assert_eq!(table.late_acks(), 3);
        // An ack for a slot index that never existed is late too.
        assert_eq!(
            table.route(u64::from(u32::MAX), done(0), 0, None),
            Routed::Late
        );
        assert_eq!(table.late_acks(), 4);
    }

    #[test]
    fn cancel_reclaims_the_slot_and_scratch() {
        let mut table = InFlightTable::new();
        let a = table.begin(0, RegisterId(0), None);
        let payload = table.encode_with(a, |buf| buf.extend_from_slice(b"hello"));
        assert_eq!(&payload[..], b"hello");
        assert_eq!(table.in_flight(), 1);
        assert!(table.cancel(a));
        assert!(!table.cancel(a), "double cancel is a no-op");
        assert_eq!(table.in_flight(), 0);
        assert_eq!(table.capacity(), 1);
        // The freed slot (and its scratch) is reused, not regrown.
        let b = table.begin(0, RegisterId(0), None);
        assert_eq!(b.slot(), a.slot());
        assert_eq!(table.capacity(), 1);
        assert_eq!(table.claim(b), Claimed::Pending);
    }
}
