//! Error types of the real runtime.

use std::sync::Arc;

/// A transport-level failure.
///
/// Under fair-lossy semantics most send failures are simply dropped
/// messages (the automata retransmit); `NetError` is reserved for
/// configuration and setup problems that retrying cannot fix.
#[derive(Debug, Clone)]
pub enum NetError {
    /// Socket setup failed.
    Bind {
        /// The failing address description.
        addr: String,
        /// OS error.
        source: Arc<std::io::Error>,
    },
    /// A peer id has no configured address.
    UnknownPeer {
        /// The peer in question.
        pid: rmem_types::ProcessId,
    },
    /// A message exceeds the transport's datagram limit (the paper hits
    /// the same 64 KB UDP ceiling, §V-B).
    TooLarge {
        /// Encoded size.
        size: usize,
        /// Transport limit.
        limit: usize,
    },
    /// A disk-level fault-injection step failed (e.g. tearing a killed
    /// node's write-ahead-log tail).
    Disk {
        /// The node whose disk was being manipulated.
        pid: rmem_types::ProcessId,
        /// OS error.
        source: Arc<std::io::Error>,
    },
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Bind { addr, source } => write!(f, "failed to bind {addr}: {source}"),
            NetError::UnknownPeer { pid } => write!(f, "no address configured for {pid}"),
            NetError::TooLarge { size, limit } => {
                write!(f, "message of {size} bytes exceeds transport limit {limit}")
            }
            NetError::Disk { pid, source } => {
                write!(f, "disk fault injection at {pid} failed: {source}")
            }
        }
    }
}

impl std::error::Error for NetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetError::Bind { source, .. } | NetError::Disk { source, .. } => Some(source.as_ref()),
            _ => None,
        }
    }
}

/// A client-visible operation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientError {
    /// The register this operation addresses already has an operation in
    /// flight at this process (per-register sequentiality; operations on
    /// *distinct* registers proceed concurrently through one runner).
    Busy,
    /// The runner was shut down (or killed to simulate a crash) before the
    /// operation completed.
    ProcessDown,
    /// The operation did not complete within the client's patience window.
    TimedOut,
    /// The written value cannot fit the transport's frame (e.g. the 64 KB
    /// UDP datagram ceiling): without this check the fair-lossy runtime
    /// would treat every send of the oversized message as a loss and the
    /// operation would retransmit forever into a [`TimedOut`]. Surfaced
    /// *before* anything is sent or logged — use a TCP-backed cluster for
    /// larger values.
    ///
    /// [`TimedOut`]: ClientError::TimedOut
    TooLarge {
        /// The message size the value would produce on the wire.
        size: usize,
        /// The transport's frame limit.
        limit: usize,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Busy => write!(f, "an operation is already in flight"),
            ClientError::ProcessDown => write!(f, "the process is down"),
            ClientError::TimedOut => write!(f, "the operation timed out"),
            ClientError::TooLarge { size, limit } => {
                write!(
                    f,
                    "a {size}-byte message exceeds the transport frame limit of {limit} bytes"
                )
            }
        }
    }
}

impl std::error::Error for ClientError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        let e = NetError::UnknownPeer {
            pid: rmem_types::ProcessId(3),
        };
        assert!(e.to_string().contains("p3"));
        let e = NetError::TooLarge {
            size: 70_000,
            limit: 65_000,
        };
        assert!(e.to_string().contains("70000"));
        assert_eq!(
            ClientError::Busy.to_string(),
            "an operation is already in flight"
        );
    }

    #[test]
    fn errors_are_send_sync() {
        fn check<E: std::error::Error + Send + Sync>(_: &E) {}
        check(&ClientError::TimedOut);
        check(&NetError::UnknownPeer {
            pid: rmem_types::ProcessId(0),
        });
    }
}
