//! The transport abstraction.

use rmem_types::{Message, ProcessId};

use crate::error::NetError;

/// A message received from the network.
#[derive(Debug, Clone)]
pub struct Inbound {
    /// The sending process.
    pub from: ProcessId,
    /// The message.
    pub msg: Message,
}

/// Datagram delivery between the cluster's processes with **fair-lossy**
/// semantics (§II): `send` may silently fail to deliver (packet loss,
/// closed peer, transient I/O error) — the automata retransmit until
/// acknowledged, which is exactly what makes fair-lossy channels
/// sufficient.
///
/// Received messages are pushed into the channel the transport was
/// constructed with (each implementation runs its own receiver thread);
/// the [`ProcessRunner`](crate::ProcessRunner) drains that channel.
pub trait Transport: Send + Sync + 'static {
    /// This endpoint's process id.
    fn local(&self) -> ProcessId;

    /// Number of processes in the cluster.
    fn cluster_size(&self) -> usize;

    /// Attempts to send `msg` to `to`. Delivery is best-effort: `Ok(())`
    /// means the message was handed to the network, not that it arrived.
    ///
    /// # Errors
    ///
    /// Returns [`NetError`] only for non-retryable problems (unknown peer,
    /// message over the size limit). Transient failures are swallowed —
    /// they are indistinguishable from packet loss.
    fn send(&self, to: ProcessId, msg: &Message) -> Result<(), NetError>;

    /// The largest encoded [`Message`] this transport can carry, if it has
    /// a hard ceiling (`None` for unbounded transports).
    ///
    /// Clients use this hint to fail oversized operations fast with
    /// [`ClientError::TooLarge`](crate::ClientError::TooLarge) instead of
    /// retransmitting an untransmittable message until the patience window
    /// runs out — under fair-lossy semantics a `send` that can never
    /// succeed is indistinguishable from 100% packet loss.
    fn max_payload(&self) -> Option<usize> {
        None
    }

    /// Stops the receiver machinery (idempotent).
    fn shutdown(&self);
}
