//! The transport abstraction.

use rmem_types::{Message, ProcessId, TraceId};

use crate::error::NetError;

/// A message received from the network.
#[derive(Debug, Clone)]
pub struct Inbound {
    /// The sending process.
    pub from: ProcessId,
    /// The message.
    pub msg: Message,
    /// The originating client operation, when the sender stamped one
    /// (see [`rmem_types::codec::encode_message_traced`]).
    pub trace: Option<TraceId>,
}

/// Datagram delivery between the cluster's processes with **fair-lossy**
/// semantics (§II): `send` may silently fail to deliver (packet loss,
/// closed peer, transient I/O error) — the automata retransmit until
/// acknowledged, which is exactly what makes fair-lossy channels
/// sufficient.
///
/// Received messages are pushed into the channel the transport was
/// constructed with (each implementation runs its own receiver thread);
/// the [`ProcessRunner`](crate::ProcessRunner) drains that channel.
pub trait Transport: Send + Sync + 'static {
    /// This endpoint's process id.
    fn local(&self) -> ProcessId;

    /// Number of processes in the cluster.
    fn cluster_size(&self) -> usize;

    /// Attempts to send `msg` to `to`. Delivery is best-effort: `Ok(())`
    /// means the message was handed to the network, not that it arrived.
    ///
    /// # Errors
    ///
    /// Returns [`NetError`] only for non-retryable problems (unknown peer,
    /// message over the size limit). Transient failures are swallowed —
    /// they are indistinguishable from packet loss.
    fn send(&self, to: ProcessId, msg: &Message) -> Result<(), NetError>;

    /// As [`send`](Transport::send), stamping the message with the
    /// originating client operation so the receiver's flight events can
    /// be attributed to it. The default drops the stamp — a transport
    /// that does not propagate trace context still interoperates (the
    /// receiver just sees untraced messages).
    ///
    /// # Errors
    ///
    /// As for [`send`](Transport::send).
    fn send_traced(
        &self,
        to: ProcessId,
        msg: &Message,
        trace: Option<TraceId>,
    ) -> Result<(), NetError> {
        let _ = trace;
        self.send(to, msg)
    }

    /// The largest encoded [`Message`] this transport can carry, if it has
    /// a hard ceiling (`None` for unbounded transports).
    ///
    /// Clients use this hint to fail oversized operations fast with
    /// [`ClientError::TooLarge`](crate::ClientError::TooLarge) instead of
    /// retransmitting an untransmittable message until the patience window
    /// runs out — under fair-lossy semantics a `send` that can never
    /// succeed is indistinguishable from 100% packet loss.
    fn max_payload(&self) -> Option<usize> {
        None
    }

    /// Stops the receiver machinery (idempotent).
    fn shutdown(&self);
}
