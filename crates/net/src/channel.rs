//! In-memory transport over crossbeam channels — the fastest way to run a
//! real-threaded cluster in tests and examples (no sockets, same runner
//! code paths).

use crossbeam::channel::Sender;
use parking_lot::RwLock;
use rmem_types::{Message, ProcessId};
use std::sync::Arc;

use crate::error::NetError;
use crate::transport::{Inbound, Transport};

/// Shared switchboard: one inbox sender per process.
#[derive(Debug, Default)]
pub struct Switchboard {
    inboxes: RwLock<Vec<Option<Sender<Inbound>>>>,
}

impl Switchboard {
    /// Creates a switchboard for `n` processes.
    pub fn new(n: usize) -> Arc<Self> {
        Arc::new(Switchboard {
            inboxes: RwLock::new(vec![None; n]),
        })
    }

    /// Registers the inbox of `pid`.
    pub fn register(&self, pid: ProcessId, tx: Sender<Inbound>) {
        self.inboxes.write()[pid.index()] = Some(tx);
    }

    /// Unregisters the inbox of `pid` (its messages now vanish — exactly a
    /// crashed receiver).
    pub fn unregister(&self, pid: ProcessId) {
        self.inboxes.write()[pid.index()] = None;
    }
}

/// An in-memory [`Transport`] endpoint bound to one process.
#[derive(Debug)]
pub struct ChannelTransport {
    me: ProcessId,
    n: usize,
    board: Arc<Switchboard>,
}

impl ChannelTransport {
    /// Creates the endpoint for `me`, registering `inbox` on the board.
    pub fn new(me: ProcessId, n: usize, board: Arc<Switchboard>, inbox: Sender<Inbound>) -> Self {
        board.register(me, inbox);
        ChannelTransport { me, n, board }
    }
}

impl Transport for ChannelTransport {
    fn local(&self) -> ProcessId {
        self.me
    }

    fn cluster_size(&self) -> usize {
        self.n
    }

    fn send(&self, to: ProcessId, msg: &Message) -> Result<(), NetError> {
        self.send_traced(to, msg, None)
    }

    fn send_traced(
        &self,
        to: ProcessId,
        msg: &Message,
        trace: Option<rmem_types::TraceId>,
    ) -> Result<(), NetError> {
        if to.index() >= self.n {
            return Err(NetError::UnknownPeer { pid: to });
        }
        let inboxes = self.board.inboxes.read();
        if let Some(Some(tx)) = inboxes.get(to.index()) {
            // A full or disconnected inbox is packet loss.
            let _ = tx.try_send(Inbound {
                from: self.me,
                msg: msg.clone(),
                trace,
            });
        }
        Ok(())
    }

    fn shutdown(&self) {
        self.board.unregister(self.me);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel::unbounded;
    use rmem_types::RequestId;

    fn msg() -> Message {
        Message::SnReq {
            req: RequestId::new(ProcessId(0), 1),
        }
    }

    #[test]
    fn delivers_between_endpoints() {
        let board = Switchboard::new(2);
        let (tx0, rx0) = unbounded();
        let (tx1, rx1) = unbounded();
        let t0 = ChannelTransport::new(ProcessId(0), 2, board.clone(), tx0);
        let _t1 = ChannelTransport::new(ProcessId(1), 2, board, tx1);
        t0.send(ProcessId(1), &msg()).unwrap();
        let got = rx1.recv_timeout(std::time::Duration::from_secs(1)).unwrap();
        assert_eq!(got.from, ProcessId(0));
        assert_eq!(got.msg, msg());
        assert!(rx0.is_empty());
    }

    #[test]
    fn self_send_loops_back() {
        let board = Switchboard::new(1);
        let (tx, rx) = unbounded();
        let t = ChannelTransport::new(ProcessId(0), 1, board, tx);
        t.send(ProcessId(0), &msg()).unwrap();
        assert_eq!(rx.recv().unwrap().from, ProcessId(0));
    }

    #[test]
    fn unknown_peer_is_an_error() {
        let board = Switchboard::new(1);
        let (tx, _rx) = unbounded();
        let t = ChannelTransport::new(ProcessId(0), 1, board, tx);
        assert!(matches!(
            t.send(ProcessId(5), &msg()),
            Err(NetError::UnknownPeer { .. })
        ));
    }

    #[test]
    fn sends_to_unregistered_peers_are_dropped_not_errors() {
        let board = Switchboard::new(2);
        let (tx, _rx) = unbounded();
        let t = ChannelTransport::new(ProcessId(0), 2, board.clone(), tx);
        // Peer 1 never registered — like a crashed process.
        assert!(t.send(ProcessId(1), &msg()).is_ok());
        // Shutdown makes our own inbox vanish too.
        t.shutdown();
        assert!(t.send(ProcessId(0), &msg()).is_ok());
    }
}
