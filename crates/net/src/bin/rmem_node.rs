//! `rmem-node` — run one process of a robust shared-memory cluster.
//!
//! ```text
//! rmem-node --id <N> --peers <addr,addr,...> [options]
//!
//!   --id <N>              this process's index into the peer list
//!   --peers <list>        comma-separated socket addresses, one per process
//!   --algo <name>         persistent | transient | crash-stop | regular
//!                         (default: persistent; always the multi-register
//!                         shared-memory form)
//!   --dir <path>          stable-storage directory (default: ./rmem-node-<id>)
//!   --transport <t>       udp | tcp (default: udp)
//!   --control <addr>      control-protocol listen address
//!                         (default: peer address port + 1000)
//! ```
//!
//! Example 3-node cluster on one machine:
//!
//! ```text
//! rmem-node --id 0 --peers 127.0.0.1:7100,127.0.0.1:7101,127.0.0.1:7102 &
//! rmem-node --id 1 --peers 127.0.0.1:7100,127.0.0.1:7101,127.0.0.1:7102 &
//! rmem-node --id 2 --peers 127.0.0.1:7100,127.0.0.1:7101,127.0.0.1:7102 &
//! rmem-client --node 127.0.0.1:8100 write 0 "hello"
//! rmem-client --node 127.0.0.1:8101 read 0
//! ```
//!
//! Kill a node with SIGKILL mid-write if you like — that is the model.
//! Restarting it with the same `--dir` runs the recovery procedure.

use std::net::SocketAddr;
use std::sync::Arc;

use crossbeam::channel::unbounded;
use rmem_core::{CrashStop, Persistent, Regular, SharedMemory, Transient};
use rmem_net::{ControlServer, ProcessRunner, TcpTransport, Transport, UdpTransport};
use rmem_storage::FileStorage;
use rmem_types::{AutomatonFactory, ProcessId};

fn usage(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!("usage: rmem-node --id <N> --peers <addr,...> [--algo persistent|transient|crash-stop|regular] [--dir <path>] [--transport udp|tcp] [--control <addr>]");
    std::process::exit(2);
}

struct Args {
    id: u16,
    peers: Vec<SocketAddr>,
    algo: String,
    dir: std::path::PathBuf,
    transport: String,
    control: Option<SocketAddr>,
}

fn parse_args() -> Args {
    let mut id = None;
    let mut peers: Vec<SocketAddr> = Vec::new();
    let mut algo = "persistent".to_string();
    let mut dir = None;
    let mut transport = "udp".to_string();
    let mut control = None;

    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| usage(&format!("{name} needs a value")))
        };
        match arg.as_str() {
            "--id" => id = value("--id").parse().ok(),
            "--peers" => {
                peers = value("--peers")
                    .split(',')
                    .map(|a| {
                        a.parse()
                            .unwrap_or_else(|_| usage(&format!("bad peer address {a:?}")))
                    })
                    .collect();
            }
            "--algo" => algo = value("--algo"),
            "--dir" => dir = Some(std::path::PathBuf::from(value("--dir"))),
            "--transport" => transport = value("--transport"),
            "--control" => control = value("--control").parse().ok(),
            "--help" | "-h" => usage("help requested"),
            other => usage(&format!("unknown argument {other:?}")),
        }
    }
    let Some(id) = id else {
        usage("--id is required")
    };
    if peers.is_empty() {
        usage("--peers is required");
    }
    if (id as usize) >= peers.len() {
        usage("--id must index into --peers");
    }
    let dir = dir.unwrap_or_else(|| std::path::PathBuf::from(format!("rmem-node-{id}")));
    Args {
        id,
        peers,
        algo,
        dir,
        transport,
        control,
    }
}

fn factory_for(algo: &str) -> Arc<dyn AutomatonFactory> {
    let flavor = match algo {
        "persistent" => Persistent::flavor(),
        "transient" => Transient::flavor(),
        "crash-stop" => CrashStop::flavor(),
        "regular" => Regular::flavor(),
        other => usage(&format!("unknown algorithm {other:?}")),
    };
    SharedMemory::factory(flavor)
}

fn main() {
    let args = parse_args();
    let me = ProcessId(args.id);
    let factory = factory_for(&args.algo);

    let storage = FileStorage::open(&args.dir)
        .unwrap_or_else(|e| usage(&format!("cannot open storage dir: {e}")));

    let (tx, rx) = unbounded();
    let transport: Arc<dyn Transport> = match args.transport.as_str() {
        "udp" => Arc::new(
            UdpTransport::bind(me, args.peers.clone(), tx)
                .unwrap_or_else(|e| usage(&format!("transport: {e}"))),
        ),
        "tcp" => Arc::new(
            TcpTransport::bind(me, args.peers.clone(), tx)
                .unwrap_or_else(|e| usage(&format!("transport: {e}"))),
        ),
        other => usage(&format!("unknown transport {other:?}")),
    };

    let runner = ProcessRunner::start(factory.as_ref(), Box::new(storage), transport, rx);

    let control_addr = args.control.unwrap_or_else(|| {
        let mut a = args.peers[args.id as usize];
        a.set_port(a.port() + 1000);
        a
    });
    let control = ControlServer::bind(control_addr, runner.client())
        .unwrap_or_else(|e| usage(&format!("control: {e}")));

    println!(
        "rmem-node {}: algorithm={} peers={} transport={} dir={} control={}",
        me,
        args.algo,
        args.peers.len(),
        args.transport,
        args.dir.display(),
        control.addr(),
    );
    println!("serving; kill me abruptly whenever you like — that is the model.");

    // Serve until killed. Crash semantics are the whole point: there is no
    // graceful-shutdown dance, stable storage is always consistent.
    loop {
        std::thread::park();
    }
}
