//! `rmem-client` — issue operations to a running `rmem-node`.
//!
//! ```text
//! rmem-client --node <addr> read [<reg>]
//! rmem-client --node <addr> write [<reg>] <value>
//! rmem-client --node <addr> ping
//! ```
//!
//! `<addr>` is the node's *control* address (by default its peer port
//! + 1000). `<reg>` defaults to 0.

use std::net::SocketAddr;

use rmem_net::send_command;

fn usage(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!("usage: rmem-client --node <addr> read [<reg>]");
    eprintln!("       rmem-client --node <addr> write [<reg>] <value>");
    eprintln!("       rmem-client --node <addr> ping");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut node: Option<SocketAddr> = None;
    let mut rest: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--node" => {
                let v = it.next().unwrap_or_else(|| usage("--node needs a value"));
                node = v.parse().ok();
                if node.is_none() {
                    usage(&format!("bad node address {v:?}"));
                }
            }
            "--help" | "-h" => usage("help requested"),
            _ => rest.push(arg),
        }
    }
    let Some(node) = node else {
        usage("--node is required")
    };

    let command = match rest.first().map(String::as_str) {
        Some("ping") => "PING".to_string(),
        Some("read") => {
            let reg = rest.get(1).map(String::as_str).unwrap_or("0");
            reg.parse::<u16>()
                .unwrap_or_else(|_| usage("reg must be a number"));
            format!("READ {reg}")
        }
        Some("write") => match rest.len() {
            2 => format!("WRITE 0 {}", rest[1]),
            3 => {
                rest[1]
                    .parse::<u16>()
                    .unwrap_or_else(|_| usage("reg must be a number"));
                format!("WRITE {} {}", rest[1], rest[2])
            }
            _ => usage("write takes [<reg>] <value>"),
        },
        _ => usage("command must be read, write or ping"),
    };

    match send_command(node, &command) {
        Ok(response) => {
            println!("{response}");
            if response.starts_with("ERR") {
                std::process::exit(1);
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
