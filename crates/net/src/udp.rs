//! UDP transport — the paper's own setup (§V-A): one socket per process,
//! datagrams capped at the 64 KB UDP limit.

use std::net::{SocketAddr, UdpSocket};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use crossbeam::channel::Sender;
use rmem_types::{codec, Message, ProcessId};

use crate::error::NetError;
use crate::transport::{Inbound, Transport};

/// Maximum encoded message size accepted (UDP payload ceiling, minus
/// header room — the same constraint the paper discusses for Fig. 6
/// bottom).
pub const MAX_DATAGRAM: usize = 65_000;

/// A UDP [`Transport`] endpoint.
///
/// Wire format: 2-byte big-endian sender id, then the
/// [`rmem_types::codec`] encoding of the message. Malformed datagrams are
/// dropped (fair-lossy absorbs them).
pub struct UdpTransport {
    me: ProcessId,
    peers: Vec<SocketAddr>,
    socket: UdpSocket,
    stop: Arc<AtomicBool>,
    receiver: parking_lot::Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl std::fmt::Debug for UdpTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("UdpTransport")
            .field("me", &self.me)
            .field("peers", &self.peers.len())
            .finish()
    }
}

impl UdpTransport {
    /// Binds the socket for `me` at `peers[me]` and starts the receiver
    /// thread pushing into `inbox`.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Bind`] if the socket cannot be bound.
    pub fn bind(
        me: ProcessId,
        peers: Vec<SocketAddr>,
        inbox: Sender<Inbound>,
    ) -> Result<Self, NetError> {
        let addr = peers[me.index()];
        let socket = UdpSocket::bind(addr).map_err(|e| NetError::Bind {
            addr: addr.to_string(),
            source: Arc::new(e),
        })?;
        socket
            .set_read_timeout(Some(std::time::Duration::from_millis(50)))
            .map_err(|e| NetError::Bind {
                addr: addr.to_string(),
                source: Arc::new(e),
            })?;
        let stop = Arc::new(AtomicBool::new(false));

        let recv_socket = socket.try_clone().map_err(|e| NetError::Bind {
            addr: addr.to_string(),
            source: Arc::new(e),
        })?;
        let recv_stop = stop.clone();
        let handle = std::thread::Builder::new()
            .name(format!("udp-recv-{me}"))
            .spawn(move || {
                let mut buf = vec![0u8; MAX_DATAGRAM + 16];
                while !recv_stop.load(Ordering::Relaxed) {
                    match recv_socket.recv_from(&mut buf) {
                        Ok((len, _)) if len >= 2 => {
                            let from = ProcessId(u16::from_be_bytes([buf[0], buf[1]]));
                            if let Ok((msg, trace)) = codec::decode_message_traced(&buf[2..len]) {
                                if inbox.send(Inbound { from, msg, trace }).is_err() {
                                    break; // runner gone
                                }
                            }
                        }
                        Ok(_) => {} // runt datagram: drop
                        Err(e)
                            if e.kind() == std::io::ErrorKind::WouldBlock
                                || e.kind() == std::io::ErrorKind::TimedOut => {}
                        Err(_) => {} // transient: drop
                    }
                }
            })
            .expect("spawning the UDP receiver thread");

        Ok(UdpTransport {
            me,
            peers,
            socket,
            stop,
            receiver: parking_lot::Mutex::new(Some(handle)),
        })
    }

    /// Convenience: loopback addresses for an `n`-process cluster starting
    /// at `base_port`.
    pub fn loopback_peers(n: usize, base_port: u16) -> Vec<SocketAddr> {
        (0..n)
            .map(|i| SocketAddr::from(([127, 0, 0, 1], base_port + i as u16)))
            .collect()
    }
}

impl Transport for UdpTransport {
    fn local(&self) -> ProcessId {
        self.me
    }

    fn cluster_size(&self) -> usize {
        self.peers.len()
    }

    fn send(&self, to: ProcessId, msg: &Message) -> Result<(), NetError> {
        self.send_traced(to, msg, None)
    }

    fn send_traced(
        &self,
        to: ProcessId,
        msg: &Message,
        trace: Option<rmem_types::TraceId>,
    ) -> Result<(), NetError> {
        let Some(addr) = self.peers.get(to.index()) else {
            return Err(NetError::UnknownPeer { pid: to });
        };
        let body = codec::encode_message_traced(msg, trace);
        if body.len() + 2 > MAX_DATAGRAM {
            return Err(NetError::TooLarge {
                size: body.len() + 2,
                limit: MAX_DATAGRAM,
            });
        }
        let mut datagram = Vec::with_capacity(body.len() + 2);
        datagram.extend_from_slice(&self.me.0.to_be_bytes());
        datagram.extend_from_slice(&body);
        // Send errors are packet loss under fair-lossy semantics.
        let _ = self.socket.send_to(&datagram, addr);
        Ok(())
    }

    fn max_payload(&self) -> Option<usize> {
        // The 2-byte sender-id prefix shares the datagram with the message.
        Some(MAX_DATAGRAM - 2)
    }

    fn shutdown(&self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.receiver.lock().take() {
            let _ = h.join();
        }
    }
}

impl Drop for UdpTransport {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel::unbounded;
    use rmem_types::{RequestId, Timestamp, Value};

    fn free_ports(n: usize) -> u16 {
        // Ask the OS for a free port and assume a small contiguous block
        // above it is free too (tests run sequentially per-process).
        let probe = UdpSocket::bind("127.0.0.1:0").unwrap();
        let port = probe.local_addr().unwrap().port();
        drop(probe);
        assert!(port as usize + n < u16::MAX as usize);
        port
    }

    #[test]
    fn roundtrip_between_two_endpoints() {
        let base = free_ports(2);
        let peers = UdpTransport::loopback_peers(2, base);
        let (tx0, _rx0) = unbounded();
        let (tx1, rx1) = unbounded();
        let t0 = UdpTransport::bind(ProcessId(0), peers.clone(), tx0).unwrap();
        let t1 = UdpTransport::bind(ProcessId(1), peers, tx1).unwrap();
        let msg = Message::Write {
            req: RequestId::new(ProcessId(0), 9),
            ts: Timestamp::new(4, ProcessId(0)),
            value: Value::from_u32(1234),
        };
        t0.send(ProcessId(1), &msg).unwrap();
        let got = rx1
            .recv_timeout(std::time::Duration::from_secs(2))
            .expect("delivery");
        assert_eq!(got.from, ProcessId(0));
        assert_eq!(got.msg, msg);
        t0.shutdown();
        t1.shutdown();
    }

    #[test]
    fn oversized_messages_are_rejected() {
        let base = free_ports(1);
        let peers = UdpTransport::loopback_peers(1, base);
        let (tx, _rx) = unbounded();
        let t = UdpTransport::bind(ProcessId(0), peers, tx).unwrap();
        let msg = Message::Write {
            req: RequestId::new(ProcessId(0), 0),
            ts: Timestamp::new(1, ProcessId(0)),
            value: Value::new(vec![0u8; 70_000]),
        };
        assert!(matches!(
            t.send(ProcessId(0), &msg),
            Err(NetError::TooLarge { .. })
        ));
        t.shutdown();
    }

    #[test]
    fn malformed_datagrams_are_dropped() {
        let base = free_ports(1);
        let peers = UdpTransport::loopback_peers(1, base);
        let (tx, rx) = unbounded();
        let t = UdpTransport::bind(ProcessId(0), peers.clone(), tx).unwrap();
        let raw = UdpSocket::bind("127.0.0.1:0").unwrap();
        raw.send_to(&[0, 0, 0xFF, 0xFF, 0xFF], peers[0]).unwrap();
        raw.send_to(&[7], peers[0]).unwrap();
        // Then a valid message to prove the receiver survived.
        let msg = Message::SnReq {
            req: RequestId::new(ProcessId(0), 3),
        };
        t.send(ProcessId(0), &msg).unwrap();
        let got = rx.recv_timeout(std::time::Duration::from_secs(2)).unwrap();
        assert_eq!(got.msg, msg);
        t.shutdown();
    }
}
