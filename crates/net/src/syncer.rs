//! The per-node **syncer**: a thread that owns the node's stable storage
//! and turns the runner's store requests into group commits.
//!
//! The event loop never touches the disk. Every [`Action::Store`] becomes
//! a [`StoreRequest`] on the syncer's queue; the syncer drains *everything
//! queued* into one batch, stages each record
//! ([`StableStorage::begin_store`]), commits the batch with a single
//! [`flush`](StableStorage::flush), and only then posts one
//! [`StoreOutcome::Done`] per request back to the event loop — which
//! forwards it to the automaton as `Input::StoreDone`. The ack-after-
//! durable invariant is structural: a `Done` cannot exist before the
//! flush covering it returned.
//!
//! Group commit falls out of the queue: while one fsync is in flight,
//! every store that arrives waits in the channel and joins the *next*
//! commit, so concurrent operations on a node amortize the disk without
//! any timer or batching policy.
//!
//! A failed stage or flush is terminal: per the crash-recovery model a
//! process whose log fails must crash rather than run ahead of its stable
//! storage. The syncer reports [`StoreOutcome::Failed`] (after bumping
//! the shared failure counter) and stops; the runner halts the node.
//!
//! [`Action::Store`]: rmem_types::Action::Store
//! [`StableStorage::begin_store`]: rmem_storage::StableStorage::begin_store

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use crossbeam::channel::{unbounded, Receiver, Sender};
use rmem_obs::{EventKind, FlightEvent, ObsHandle};
use rmem_storage::{StableStorage, StorageError};
use rmem_types::StoreToken;

/// One store the event loop wants made durable.
#[derive(Debug)]
pub(crate) struct StoreRequest {
    pub token: StoreToken,
    pub key: String,
    pub bytes: bytes::Bytes,
}

/// What the syncer posts back to the event loop.
#[derive(Debug)]
pub(crate) enum StoreOutcome {
    /// The fsync covering this store returned: safe to acknowledge.
    Done(StoreToken),
    /// The log failed; the node must halt (crash-recovery semantics).
    Failed(StorageError),
}

/// Handle the runner keeps: the request queue plus the join handle that
/// yields the storage back at shutdown.
pub(crate) struct Syncer {
    tx: Sender<StoreRequest>,
    handle: Option<std::thread::JoinHandle<Box<dyn StableStorage>>>,
}

impl Syncer {
    /// Spawns the syncer thread for one node. `outcomes` is how commit
    /// results re-enter the event loop; `failures` is the shared
    /// `store_failures` counter; `obs` is the node's observability
    /// handle (group commits show up in the flight recorder and the
    /// `syncer.*` metrics).
    pub(crate) fn spawn_with_obs(
        me: rmem_types::ProcessId,
        storage: Box<dyn StableStorage>,
        outcomes: Sender<StoreOutcome>,
        failures: Arc<AtomicU64>,
        obs: ObsHandle,
    ) -> Self {
        let (tx, rx) = unbounded::<StoreRequest>();
        let handle = std::thread::Builder::new()
            .name(format!("rmem-sync-{me}"))
            .spawn(move || run(storage, rx, outcomes, failures, obs))
            .expect("spawning the syncer thread");
        Syncer {
            tx,
            handle: Some(handle),
        }
    }

    /// Enqueues a store. A send failure means the syncer already halted
    /// on a log failure; the caller will observe the `Failed` outcome.
    pub(crate) fn submit(&self, req: StoreRequest) {
        let _ = self.tx.send(req);
    }

    /// Stops the thread and returns the storage (the "disk" the next
    /// incarnation recovers from).
    pub(crate) fn stop(mut self) -> Box<dyn StableStorage> {
        drop(self.tx); // closing the queue is the shutdown signal
        self.handle
            .take()
            .expect("stop called once")
            .join()
            .expect("syncer thread panicked")
    }
}

fn run(
    mut storage: Box<dyn StableStorage>,
    rx: Receiver<StoreRequest>,
    outcomes: Sender<StoreOutcome>,
    failures: Arc<AtomicU64>,
    obs: ObsHandle,
) -> Box<dyn StableStorage> {
    let commits = obs.metrics.counter("syncer.commits");
    let commit_micros = obs.metrics.histogram("syncer.commit_micros");
    let group_size = obs.metrics.histogram("syncer.group_size");
    let store_failures = obs.metrics.counter("syncer.store_failures");
    // Blocks until work arrives; Err means the runner dropped the queue.
    while let Ok(first) = rx.recv() {
        // The group: everything queued while the previous commit ran.
        let mut batch = vec![first];
        while let Ok(req) = rx.try_recv() {
            batch.push(req);
        }
        let commit_started = Instant::now();
        let mut staged = Vec::with_capacity(batch.len());
        let mut error = None;
        for req in batch {
            match storage.begin_store(&req.key, req.bytes.clone()) {
                Ok(_) => staged.push(req.token),
                Err(e) => {
                    error = Some(e);
                    break;
                }
            }
        }
        let error = error.or_else(|| storage.flush().err());
        match error {
            None => {
                commits.inc();
                group_size.record(staged.len() as u64);
                if obs.metrics.is_enabled() {
                    commit_micros.record(commit_started.elapsed().as_micros() as u64);
                }
                obs.flight
                    .record(FlightEvent::new(EventKind::GroupCommit).with_aux(staged.len() as u64));
                for token in staged {
                    let _ = outcomes.send(StoreOutcome::Done(token));
                }
            }
            Some(e) => {
                // A store the log could not make durable: per the model
                // the process crashes. Nothing staged is acknowledged —
                // some of it may be on disk (harmless: unacknowledged
                // stores are exactly what recovery is specified to
                // tolerate), but no ack can have raced ahead.
                failures.fetch_add(1, Ordering::Relaxed);
                store_failures.inc();
                let _ = outcomes.send(StoreOutcome::Failed(e));
                break;
            }
        }
    }
    storage
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use parking_lot::Mutex;
    use rmem_storage::{FaultPlan, FaultyStorage, MemStorage, StoreTicket};
    use rmem_types::ProcessId;
    use std::time::Duration;

    /// A storage probe that records the call sequence, so tests can
    /// assert every `Done` was preceded by the flush covering it.
    #[derive(Clone, Default)]
    struct Probe {
        log: Arc<Mutex<Vec<String>>>,
        staged: Arc<Mutex<Vec<String>>>,
        committed: Arc<Mutex<Vec<String>>>,
        delay: Option<Duration>,
    }

    impl StableStorage for Probe {
        fn store(&mut self, key: &str, bytes: Bytes) -> Result<(), StorageError> {
            self.begin_store(key, bytes)?;
            self.flush()
        }

        fn retrieve(&self, _key: &str) -> Result<Option<Bytes>, StorageError> {
            Ok(None)
        }

        fn keys(&self) -> Vec<String> {
            Vec::new()
        }

        fn begin_store(&mut self, key: &str, _bytes: Bytes) -> Result<StoreTicket, StorageError> {
            self.log.lock().push(format!("begin:{key}"));
            self.staged.lock().push(key.to_string());
            Ok(StoreTicket(self.staged.lock().len() as u64))
        }

        fn flush(&mut self) -> Result<(), StorageError> {
            if let Some(d) = self.delay {
                std::thread::sleep(d);
            }
            let staged: Vec<String> = self.staged.lock().drain(..).collect();
            self.log.lock().push(format!("flush:{}", staged.len()));
            self.committed.lock().extend(staged);
            Ok(())
        }

        fn poll_durable(&self, _t: StoreTicket) -> bool {
            self.staged.lock().is_empty()
        }
    }

    fn req(token: u64) -> StoreRequest {
        StoreRequest {
            token: StoreToken(token),
            key: format!("k{token}"),
            bytes: Bytes::from_static(b"v"),
        }
    }

    #[test]
    fn done_only_after_the_covering_flush() {
        let probe = Probe::default();
        let committed = probe.committed.clone();
        let (out_tx, out_rx) = unbounded();
        let syncer = Syncer::spawn_with_obs(
            ProcessId(0),
            Box::new(probe),
            out_tx,
            Arc::new(AtomicU64::new(0)),
            ObsHandle::new(),
        );
        for t in 0..10u64 {
            syncer.submit(req(t));
        }
        for _ in 0..10 {
            match out_rx
                .recv_timeout(Duration::from_secs(5))
                .expect("outcome")
            {
                StoreOutcome::Done(token) => {
                    // The commit covering this store must already have
                    // happened: its key is in the committed set.
                    assert!(
                        committed
                            .lock()
                            .iter()
                            .any(|k| k == &format!("k{}", token.0)),
                        "ack for k{} preceded its commit",
                        token.0
                    );
                }
                StoreOutcome::Failed(e) => panic!("unexpected failure: {e}"),
            }
        }
        syncer.stop();
    }

    #[test]
    fn stores_arriving_during_a_slow_commit_coalesce() {
        let probe = Probe {
            delay: Some(Duration::from_millis(40)),
            ..Probe::default()
        };
        let log = probe.log.clone();
        let (out_tx, out_rx) = unbounded();
        let syncer = Syncer::spawn_with_obs(
            ProcessId(0),
            Box::new(probe),
            out_tx,
            Arc::new(AtomicU64::new(0)),
            ObsHandle::new(),
        );
        // First store starts a slow commit; the rest pile up behind it.
        syncer.submit(req(0));
        std::thread::sleep(Duration::from_millis(10));
        for t in 1..8u64 {
            syncer.submit(req(t));
        }
        let mut done = 0;
        while done < 8 {
            match out_rx
                .recv_timeout(Duration::from_secs(5))
                .expect("outcome")
            {
                StoreOutcome::Done(_) => done += 1,
                StoreOutcome::Failed(e) => panic!("unexpected failure: {e}"),
            }
        }
        syncer.stop();
        let flushes: Vec<usize> = log
            .lock()
            .iter()
            .filter_map(|l| l.strip_prefix("flush:").and_then(|n| n.parse().ok()))
            .collect();
        assert_eq!(flushes.iter().sum::<usize>(), 8, "every store committed");
        assert!(
            flushes.len() < 8,
            "stores queued behind a slow fsync must share commits, got {flushes:?}"
        );
        assert!(
            flushes.iter().any(|&n| n > 1),
            "at least one commit must be a real group, got {flushes:?}"
        );
    }

    #[test]
    fn a_log_failure_reports_failed_and_stops() {
        let failures = Arc::new(AtomicU64::new(0));
        let (out_tx, out_rx) = unbounded();
        let storage = FaultyStorage::new(MemStorage::new(), FaultPlan::fail_at(vec![2]));
        let syncer = Syncer::spawn_with_obs(
            ProcessId(0),
            Box::new(storage),
            out_tx,
            failures.clone(),
            ObsHandle::new(),
        );
        syncer.submit(req(0));
        // Let the first commit complete so the failing store is its own
        // group (deterministic position 2).
        match out_rx.recv_timeout(Duration::from_secs(5)).expect("first") {
            StoreOutcome::Done(t) => assert_eq!(t, StoreToken(0)),
            StoreOutcome::Failed(e) => panic!("first store must succeed: {e}"),
        }
        syncer.submit(req(1));
        match out_rx.recv_timeout(Duration::from_secs(5)).expect("second") {
            StoreOutcome::Failed(_) => {}
            StoreOutcome::Done(t) => panic!("store {t:?} must not be acked after a log failure"),
        }
        assert_eq!(failures.load(Ordering::Relaxed), 1);
        // The syncer stopped: the storage comes back even though requests
        // may still be queued.
        let storage = syncer.stop();
        assert_eq!(storage.keys(), vec!["k0".to_string()]);
    }
}
