//! Local clusters: `n` runners wired together on one machine, with
//! kill/restart support for crash-recovery experiments on real threads.

use std::path::PathBuf;
use std::sync::Arc;

use crossbeam::channel::unbounded;
use parking_lot::Mutex;
use rmem_obs::{FlightRecorder, MetricsSnapshot, ObsHandle};
use rmem_storage::{
    CountingStorage, FileStorage, MemStorage, StableStorage, StorageError, StoreCounters,
    WalStorage,
};
use rmem_types::{AutomatonFactory, ProcessId};

use crate::channel::{ChannelTransport, Switchboard};
use crate::error::NetError;
use crate::runner::{Client, ProcessRunner};
use crate::tcp::TcpTransport;
use crate::transport::Transport;
use crate::udp::UdpTransport;

/// A [`StableStorage`] handle shareable between the cluster (which must
/// keep it across kill/restart — the "disk" survives the "machine") and
/// the runner thread using it.
#[derive(Debug, Clone)]
pub struct SharedStorage(Arc<Mutex<MemStorage>>);

impl SharedStorage {
    /// Creates empty shared storage.
    pub fn new() -> Self {
        SharedStorage(Arc::new(Mutex::new(MemStorage::new())))
    }
}

impl Default for SharedStorage {
    fn default() -> Self {
        SharedStorage::new()
    }
}

impl StableStorage for SharedStorage {
    fn store(&mut self, key: &str, bytes: bytes::Bytes) -> Result<(), StorageError> {
        self.0.lock().store(key, bytes)
    }

    fn retrieve(&self, key: &str) -> Result<Option<bytes::Bytes>, StorageError> {
        self.0.lock().retrieve(key)
    }

    fn keys(&self) -> Vec<String> {
        self.0.lock().keys()
    }

    /// Memory needs no physical fsync.
    fn fsyncs_per_commit(&self) -> u64 {
        0
    }
}

enum TransportKind {
    Channel(Arc<Switchboard>),
    Udp(Vec<std::net::SocketAddr>),
    Tcp(Vec<std::net::SocketAddr>),
}

/// Which disk backend a directory-backed cluster gives its nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiskMode {
    /// [`FileStorage`]: one fsync'd file per slot — the paper's §V-A
    /// synchronous log, two physical fsyncs per store.
    File,
    /// [`WalStorage`]: the segmented group-commit write-ahead log — one
    /// fsync per commit, shared by every store the syncer batched.
    Wal,
}

enum NodeDisk {
    Shared(SharedStorage),
    Dir(PathBuf, DiskMode),
}

impl NodeDisk {
    fn open(&self, counters: &Arc<StoreCounters>) -> Box<dyn StableStorage> {
        let inner: Box<dyn StableStorage> = match self {
            NodeDisk::Shared(s) => Box::new(s.clone()),
            NodeDisk::Dir(dir, DiskMode::File) => {
                Box::new(FileStorage::open(dir).expect("opening the node's storage directory"))
            }
            NodeDisk::Dir(dir, DiskMode::Wal) => {
                Box::new(WalStorage::open(dir).expect("opening the node's write-ahead log"))
            }
        };
        Box::new(CountingStorage::new(inner, counters.clone()))
    }
}

/// A cluster of `n` processes on this machine.
///
/// Three wirings, same runner code: in-memory channels
/// ([`channel`](LocalCluster::channel)), UDP loopback sockets
/// ([`udp`](LocalCluster::udp) — the paper's §V-A setup with `FileStorage`
/// fsync logs), or TCP ([`tcp`](LocalCluster::tcp) — for payloads above
/// the UDP datagram ceiling).
///
/// [`kill`](LocalCluster::kill) stops a process abruptly while its storage
/// survives; [`restart`](LocalCluster::restart) boots a new incarnation
/// that runs the algorithm's recovery procedure.
pub struct LocalCluster {
    factory: Arc<dyn AutomatonFactory>,
    kind: TransportKind,
    disks: Vec<NodeDisk>,
    nodes: Vec<Option<ProcessRunner>>,
    /// Per-node storage instrumentation (stores, bytes, commits, fsyncs);
    /// survives kill/restart so a whole experiment accumulates.
    counters: Vec<Arc<StoreCounters>>,
    /// Per-node observability (metrics registry + flight recorder); like
    /// the storage counters it survives kill/restart, so a node's event
    /// trail spans its incarnations.
    obs: Vec<ObsHandle>,
}

impl std::fmt::Debug for LocalCluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LocalCluster")
            .field("n", &self.nodes.len())
            .field("algorithm", &self.factory.algorithm())
            .finish()
    }
}

impl LocalCluster {
    /// An in-memory cluster: crossbeam-channel transport, crash-surviving
    /// [`SharedStorage`]. Fast enough for unit tests.
    ///
    /// # Errors
    ///
    /// Infallible today; `Result` keeps the signature uniform with the
    /// socket-backed constructors.
    pub fn channel(n: usize, factory: Arc<dyn AutomatonFactory>) -> Result<Self, NetError> {
        let board = Switchboard::new(n);
        let disks = (0..n)
            .map(|_| NodeDisk::Shared(SharedStorage::new()))
            .collect();
        Self::assemble(factory, TransportKind::Channel(board), disks)
    }

    /// An in-memory-transport cluster with *mixed* disks: every
    /// `wal_every`-th node (0, `wal_every`, 2·`wal_every`, …) persists to
    /// a real group-commit [`WalStorage`] under `dir`, the rest use
    /// [`SharedStorage`]. The chaos suites use this wiring to run big
    /// clusters cheaply (channel transport, mostly memory disks) while
    /// still exercising genuine WAL recoveries — including torn tails via
    /// [`tear_wal_tail`](LocalCluster::tear_wal_tail) — on a spread of
    /// nodes.
    ///
    /// # Errors
    ///
    /// Infallible today; `Result` keeps the signature uniform with the
    /// socket-backed constructors.
    ///
    /// # Panics
    ///
    /// Panics if `wal_every` is zero.
    pub fn channel_mixed(
        n: usize,
        factory: Arc<dyn AutomatonFactory>,
        dir: impl Into<PathBuf>,
        wal_every: usize,
    ) -> Result<Self, NetError> {
        assert!(wal_every > 0, "wal_every must be at least 1");
        let board = Switchboard::new(n);
        let dir = dir.into();
        let disks = (0..n)
            .map(|i| {
                if i % wal_every == 0 {
                    NodeDisk::Dir(dir.join(format!("p{i}")), DiskMode::Wal)
                } else {
                    NodeDisk::Shared(SharedStorage::new())
                }
            })
            .collect();
        Self::assemble(factory, TransportKind::Channel(board), disks)
    }

    /// A UDP loopback cluster with file-backed storage under `dir` — the
    /// closest analogue of the paper's testbed on one machine.
    ///
    /// # Errors
    ///
    /// Returns [`NetError`] if sockets cannot be bound.
    pub fn udp(
        n: usize,
        factory: Arc<dyn AutomatonFactory>,
        dir: impl Into<PathBuf>,
    ) -> Result<Self, NetError> {
        Self::udp_with_disk(n, factory, dir, DiskMode::File)
    }

    /// [`udp`](LocalCluster::udp) with an explicit disk backend: the
    /// paper's per-slot fsync files or the group-commit WAL.
    ///
    /// # Errors
    ///
    /// Returns [`NetError`] if sockets cannot be bound.
    pub fn udp_with_disk(
        n: usize,
        factory: Arc<dyn AutomatonFactory>,
        dir: impl Into<PathBuf>,
        mode: DiskMode,
    ) -> Result<Self, NetError> {
        Self::udp_with_disk_obs(n, factory, dir, mode, true)
    }

    /// [`udp_with_disk`](LocalCluster::udp_with_disk) with observability
    /// switched on or off. `obs_enabled = false` is the uninstrumented
    /// baseline the bench harness measures overhead against: flight
    /// recorders drop every event and latency timing is skipped.
    ///
    /// # Errors
    ///
    /// Returns [`NetError`] if sockets cannot be bound.
    pub fn udp_with_disk_obs(
        n: usize,
        factory: Arc<dyn AutomatonFactory>,
        dir: impl Into<PathBuf>,
        mode: DiskMode,
        obs_enabled: bool,
    ) -> Result<Self, NetError> {
        Self::udp_with_disk_obs_sized(
            n,
            factory,
            dir,
            mode,
            obs_enabled,
            FlightRecorder::DEFAULT_CAPACITY,
        )
    }

    /// [`udp_with_disk_obs`](LocalCluster::udp_with_disk_obs) with an
    /// explicit flight-recorder ring capacity per node (rounded up to a
    /// power of two; each slot costs
    /// [`FlightRecorder::SLOT_BYTES`] = 48 bytes, so a 2^18-slot tracing
    /// ring is 12 MiB per node). The default 4096-slot ring keeps only a
    /// postmortem tail; stitched tracing over a long benchmark run needs
    /// rings deep enough to hold every event of the window being stitched.
    ///
    /// # Errors
    ///
    /// Returns [`NetError`] if sockets cannot be bound.
    pub fn udp_with_disk_obs_sized(
        n: usize,
        factory: Arc<dyn AutomatonFactory>,
        dir: impl Into<PathBuf>,
        mode: DiskMode,
        obs_enabled: bool,
        ring_capacity: usize,
    ) -> Result<Self, NetError> {
        let base = free_udp_base(n);
        let peers = UdpTransport::loopback_peers(n, base);
        let dir = dir.into();
        let disks = (0..n)
            .map(|i| NodeDisk::Dir(dir.join(format!("p{i}")), mode))
            .collect();
        Self::assemble_with_obs(
            factory,
            TransportKind::Udp(peers),
            disks,
            obs_enabled,
            ring_capacity,
        )
    }

    /// A TCP loopback cluster with file-backed storage under `dir`.
    ///
    /// # Errors
    ///
    /// Returns [`NetError`] if listeners cannot be bound.
    pub fn tcp(
        n: usize,
        factory: Arc<dyn AutomatonFactory>,
        dir: impl Into<PathBuf>,
    ) -> Result<Self, NetError> {
        let base = free_tcp_base(n);
        let peers = TcpTransport::loopback_peers(n, base);
        let dir = dir.into();
        let disks = (0..n)
            .map(|i| NodeDisk::Dir(dir.join(format!("p{i}")), DiskMode::File))
            .collect();
        Self::assemble(factory, TransportKind::Tcp(peers), disks)
    }

    fn assemble(
        factory: Arc<dyn AutomatonFactory>,
        kind: TransportKind,
        disks: Vec<NodeDisk>,
    ) -> Result<Self, NetError> {
        Self::assemble_with_obs(factory, kind, disks, true, FlightRecorder::DEFAULT_CAPACITY)
    }

    fn assemble_with_obs(
        factory: Arc<dyn AutomatonFactory>,
        kind: TransportKind,
        disks: Vec<NodeDisk>,
        obs_enabled: bool,
        ring_capacity: usize,
    ) -> Result<Self, NetError> {
        let n = disks.len();
        let mut cluster = LocalCluster {
            factory,
            kind,
            disks,
            nodes: (0..n).map(|_| None).collect(),
            counters: (0..n).map(|_| StoreCounters::new()).collect(),
            obs: (0..n)
                .map(|_| {
                    if obs_enabled {
                        ObsHandle::with_capacity(ring_capacity)
                    } else {
                        ObsHandle::disabled()
                    }
                })
                .collect(),
        };
        for pid in ProcessId::all(n) {
            cluster.boot(pid)?;
        }
        Ok(cluster)
    }

    fn boot(&mut self, pid: ProcessId) -> Result<(), NetError> {
        let n = self.nodes.len();
        let (tx, rx) = unbounded();
        let transport: Arc<dyn Transport> = match &self.kind {
            TransportKind::Channel(board) => {
                Arc::new(ChannelTransport::new(pid, n, board.clone(), tx))
            }
            TransportKind::Udp(peers) => Arc::new(UdpTransport::bind(pid, peers.clone(), tx)?),
            TransportKind::Tcp(peers) => Arc::new(TcpTransport::bind(pid, peers.clone(), tx)?),
        };
        let storage = self.disks[pid.index()].open(&self.counters[pid.index()]);
        let runner = ProcessRunner::start_with_obs(
            self.factory.as_ref(),
            storage,
            transport,
            rx,
            self.obs[pid.index()].clone(),
        );
        self.nodes[pid.index()] = Some(runner);
        Ok(())
    }

    /// Number of processes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the cluster has no processes (never true in practice).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// A client handle for `pid`.
    ///
    /// # Panics
    ///
    /// Panics if the process is currently killed.
    pub fn client(&self, pid: ProcessId) -> Client {
        self.nodes[pid.index()]
            .as_ref()
            .unwrap_or_else(|| panic!("{pid} is down"))
            .client()
    }

    /// Client handles for every process that is currently up, in process
    /// order. The natural input for `rmem-kv`'s `KvClient`, which spreads
    /// per-shard traffic across the cluster.
    pub fn clients(&self) -> Vec<Client> {
        self.nodes
            .iter()
            .flatten()
            .map(ProcessRunner::client)
            .collect()
    }

    /// Whether `pid` is currently running.
    pub fn is_up(&self, pid: ProcessId) -> bool {
        self.nodes[pid.index()].is_some()
    }

    /// The storage instrumentation for `pid`: stores, bytes, commits,
    /// fsyncs and group sizes, accumulated across restarts.
    pub fn storage_counters(&self, pid: ProcessId) -> Arc<StoreCounters> {
        self.counters[pid.index()].clone()
    }

    /// The observability handle for `pid` (metrics registry + flight
    /// recorder), accumulated across restarts like the storage counters.
    pub fn obs(&self, pid: ProcessId) -> &ObsHandle {
        &self.obs[pid.index()]
    }

    /// The flight recorder for `pid` — the event trail to dump when a
    /// fault experiment fails certification.
    pub fn flight_recorder(&self, pid: ProcessId) -> Arc<FlightRecorder> {
        self.obs[pid.index()].flight.clone()
    }

    /// A point-in-time copy of `pid`'s metrics, with the storage layer's
    /// [`StoreCounters`] bridged in as `storage.*` gauges so one snapshot
    /// covers the whole node.
    pub fn metrics(&self, pid: ProcessId) -> MetricsSnapshot {
        let c = &self.counters[pid.index()];
        let mut snap = self.obs[pid.index()].metrics.snapshot();
        snap.set_gauge("storage.stores", c.stores());
        snap.set_gauge("storage.bytes", c.bytes());
        snap.set_gauge("storage.retrieves", c.retrieves());
        snap.set_gauge("storage.commits", c.commits());
        snap.set_gauge("storage.fsyncs", c.fsyncs());
        snap
    }

    /// Every node's flight-recorder tail, rendered as one labelled
    /// timeline block per node — what the fault suites print when
    /// certification fails.
    pub fn dump_flight_recorders(&self, last: usize) -> String {
        let mut out = String::new();
        for pid in ProcessId::all(self.nodes.len()) {
            out.push_str(&format!("--- flight recorder {pid} ---\n"));
            out.push_str(&self.obs[pid.index()].flight.dump_timeline(last));
        }
        out
    }

    /// Every node's flight-recorder contents as stitcher inputs — one
    /// [`RingDump`](rmem_obs::trace::RingDump) per node. Append the
    /// client family's dump (see [`TraceCtx`](crate::runner::TraceCtx))
    /// and hand the lot to [`rmem_obs::trace::stitch`].
    pub fn ring_dumps(&self) -> Vec<rmem_obs::trace::RingDump> {
        ProcessId::all(self.nodes.len())
            .map(|pid| rmem_obs::trace::RingDump::node(pid.0, self.obs[pid.index()].flight.dump()))
            .collect()
    }

    /// Every node's flight recorder stitched into causal per-op timelines
    /// (plus any `extra` rings — typically the traced client families'),
    /// rendered as the stitch summary followed by the `n` slowest ops'
    /// full timelines. What the fault suites print when certification
    /// fails: unlike [`dump_flight_recorders`](Self::dump_flight_recorders)
    /// the events of all nodes appear on one clock, in causal order.
    pub fn dump_stitched(&self, extra: Vec<rmem_obs::trace::RingDump>, n: usize) -> String {
        let mut rings = self.ring_dumps();
        rings.extend(extra);
        let report = rmem_obs::trace::stitch(&rings);
        format!(
            "{}\n{}",
            report.render_summary(),
            report.render_exemplars(n)
        )
    }

    /// How many stable-storage commits have failed at `pid` (the first
    /// one halts the node). 0 for a killed node slot.
    pub fn store_failures(&self, pid: ProcessId) -> u64 {
        self.nodes[pid.index()]
            .as_ref()
            .map_or(0, ProcessRunner::store_failures)
    }

    /// Whether `pid`'s event loop has exited on its own — the clean halt
    /// a log failure forces — while the cluster still considers the slot
    /// occupied. [`kill`](LocalCluster::kill) + [`restart`](LocalCluster::restart)
    /// recovers such a node.
    pub fn is_halted(&self, pid: ProcessId) -> bool {
        self.nodes[pid.index()]
            .as_ref()
            .is_some_and(ProcessRunner::is_halted)
    }

    /// Kills `pid`: the runner stops, volatile state is gone, stable
    /// storage survives for [`restart`](LocalCluster::restart). No-op if
    /// already down.
    pub fn kill(&mut self, pid: ProcessId) {
        if let Some(runner) = self.nodes[pid.index()].take() {
            let _ = runner.stop();
        }
    }

    /// Whether `pid`'s disk is a directory-backed write-ahead log — the
    /// only disks [`tear_wal_tail`](LocalCluster::tear_wal_tail) can
    /// corrupt.
    pub fn has_wal_disk(&self, pid: ProcessId) -> bool {
        matches!(self.disks[pid.index()], NodeDisk::Dir(_, DiskMode::Wal))
    }

    /// Tears the tail of a killed WAL-backed node's newest log segment by
    /// appending garbage bytes, simulating a crash that interrupted an
    /// in-flight append. The node's next
    /// [`restart`](LocalCluster::restart) must recover by truncating the
    /// torn tail (the WAL's CRC guard) — exactly the §V-A "recover from
    /// whatever the disk holds" scenario.
    ///
    /// Returns the number of garbage bytes appended; `Ok(0)` if the node
    /// has no segments yet (it never logged).
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors from reading the directory or
    /// appending to the segment.
    ///
    /// # Panics
    ///
    /// Panics if the node is still up (tearing a live log is not a crash
    /// model, it's a data race) or if its disk is not a directory-backed
    /// WAL (see [`has_wal_disk`](LocalCluster::has_wal_disk)).
    pub fn tear_wal_tail(&mut self, pid: ProcessId) -> std::io::Result<usize> {
        assert!(
            !self.is_up(pid),
            "{pid} is still up; kill it before tearing its log"
        );
        let NodeDisk::Dir(dir, DiskMode::Wal) = &self.disks[pid.index()] else {
            panic!("{pid} has no write-ahead log to tear");
        };
        let mut segments: Vec<PathBuf> = match std::fs::read_dir(dir) {
            Ok(entries) => entries
                .filter_map(Result::ok)
                .map(|e| e.path())
                .filter(|p| {
                    p.file_name()
                        .and_then(|n| n.to_str())
                        .is_some_and(|n| n.starts_with("seg-") && n.ends_with(".wal"))
                })
                .collect(),
            // The node never booted far enough to create its directory.
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(0),
            Err(e) => return Err(e),
        };
        segments.sort();
        let Some(newest) = segments.pop() else {
            return Ok(0);
        };
        // Half a record header's worth of garbage: enough to fail the CRC
        // check, short enough to look like an interrupted append.
        const GARBAGE: [u8; 7] = [0xDE, 0xAD, 0xBE, 0xEF, 0x00, 0x13, 0x37];
        use std::io::Write;
        let mut file = std::fs::OpenOptions::new().append(true).open(&newest)?;
        file.write_all(&GARBAGE)?;
        file.sync_all()?;
        Ok(GARBAGE.len())
    }

    /// Restarts a killed `pid`; the new incarnation recovers from the
    /// surviving storage (running the algorithm's recovery procedure).
    ///
    /// # Errors
    ///
    /// Returns [`NetError`] if the transport cannot be rebuilt.
    ///
    /// # Panics
    ///
    /// Panics if the process is still up.
    pub fn restart(&mut self, pid: ProcessId) -> Result<(), NetError> {
        assert!(self.nodes[pid.index()].is_none(), "{pid} is still up");
        self.boot(pid)
    }

    /// Stops every process.
    pub fn shutdown(&mut self) {
        for pid in ProcessId::all(self.nodes.len()) {
            self.kill(pid);
        }
    }
}

impl Drop for LocalCluster {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn free_udp_base(n: usize) -> u16 {
    let probe = std::net::UdpSocket::bind("127.0.0.1:0").unwrap();
    let port = probe.local_addr().unwrap().port();
    drop(probe);
    assert!((port as usize) + n < u16::MAX as usize);
    port
}

fn free_tcp_base(n: usize) -> u16 {
    let probe = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let port = probe.local_addr().unwrap().port();
    drop(probe);
    assert!((port as usize) + n < u16::MAX as usize);
    port
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmem_core::{Persistent, Transient};
    use rmem_types::Value;

    #[test]
    fn channel_cluster_write_read() {
        let mut cluster = LocalCluster::channel(3, Transient::factory()).unwrap();
        cluster
            .client(ProcessId(0))
            .write(Value::from_u32(11))
            .unwrap();
        let v = cluster.client(ProcessId(2)).read().unwrap();
        assert_eq!(v.as_u32(), Some(11));
        cluster.shutdown();
    }

    #[test]
    fn kill_and_restart_preserves_written_values() {
        let mut cluster = LocalCluster::channel(3, Persistent::factory()).unwrap();
        cluster
            .client(ProcessId(0))
            .write(Value::from_u32(77))
            .unwrap();
        cluster.kill(ProcessId(0));
        assert!(!cluster.is_up(ProcessId(0)));
        // Reads still work with a majority up.
        let v = cluster.client(ProcessId(1)).read().unwrap();
        assert_eq!(v.as_u32(), Some(77));
        // The restarted process recovers and serves too.
        cluster.restart(ProcessId(0)).unwrap();
        assert!(cluster.is_up(ProcessId(0)));
        let v = cluster.client(ProcessId(0)).read().unwrap();
        assert_eq!(v.as_u32(), Some(77));
        cluster.shutdown();
    }

    #[test]
    fn total_crash_with_full_recovery_keeps_the_value() {
        let mut cluster = LocalCluster::channel(3, Persistent::factory()).unwrap();
        cluster
            .client(ProcessId(1))
            .write(Value::from_u32(5))
            .unwrap();
        for pid in ProcessId::all(3) {
            cluster.kill(pid);
        }
        for pid in ProcessId::all(3) {
            cluster.restart(pid).unwrap();
        }
        let v = cluster.client(ProcessId(2)).read().unwrap();
        assert_eq!(
            v.as_u32(),
            Some(5),
            "the completed write must survive a total crash"
        );
        cluster.shutdown();
    }
}
