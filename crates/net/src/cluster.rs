//! Local clusters: `n` runners wired together on one machine, with
//! kill/restart support for crash-recovery experiments on real threads.

use std::path::PathBuf;
use std::sync::Arc;

use crossbeam::channel::unbounded;
use parking_lot::Mutex;
use rmem_storage::{FileStorage, MemStorage, StableStorage, StorageError};
use rmem_types::{AutomatonFactory, ProcessId};

use crate::channel::{ChannelTransport, Switchboard};
use crate::error::NetError;
use crate::runner::{Client, ProcessRunner};
use crate::tcp::TcpTransport;
use crate::transport::Transport;
use crate::udp::UdpTransport;

/// A [`StableStorage`] handle shareable between the cluster (which must
/// keep it across kill/restart — the "disk" survives the "machine") and
/// the runner thread using it.
#[derive(Debug, Clone)]
pub struct SharedStorage(Arc<Mutex<MemStorage>>);

impl SharedStorage {
    /// Creates empty shared storage.
    pub fn new() -> Self {
        SharedStorage(Arc::new(Mutex::new(MemStorage::new())))
    }
}

impl Default for SharedStorage {
    fn default() -> Self {
        SharedStorage::new()
    }
}

impl StableStorage for SharedStorage {
    fn store(&mut self, key: &str, bytes: bytes::Bytes) -> Result<(), StorageError> {
        self.0.lock().store(key, bytes)
    }

    fn retrieve(&self, key: &str) -> Result<Option<bytes::Bytes>, StorageError> {
        self.0.lock().retrieve(key)
    }

    fn keys(&self) -> Vec<String> {
        self.0.lock().keys()
    }
}

enum TransportKind {
    Channel(Arc<Switchboard>),
    Udp(Vec<std::net::SocketAddr>),
    Tcp(Vec<std::net::SocketAddr>),
}

enum NodeDisk {
    Shared(SharedStorage),
    Dir(PathBuf),
}

impl NodeDisk {
    fn open(&self) -> Box<dyn StableStorage> {
        match self {
            NodeDisk::Shared(s) => Box::new(s.clone()),
            NodeDisk::Dir(dir) => {
                Box::new(FileStorage::open(dir).expect("opening the node's storage directory"))
            }
        }
    }
}

/// A cluster of `n` processes on this machine.
///
/// Three wirings, same runner code: in-memory channels
/// ([`channel`](LocalCluster::channel)), UDP loopback sockets
/// ([`udp`](LocalCluster::udp) — the paper's §V-A setup with `FileStorage`
/// fsync logs), or TCP ([`tcp`](LocalCluster::tcp) — for payloads above
/// the UDP datagram ceiling).
///
/// [`kill`](LocalCluster::kill) stops a process abruptly while its storage
/// survives; [`restart`](LocalCluster::restart) boots a new incarnation
/// that runs the algorithm's recovery procedure.
pub struct LocalCluster {
    factory: Arc<dyn AutomatonFactory>,
    kind: TransportKind,
    disks: Vec<NodeDisk>,
    nodes: Vec<Option<ProcessRunner>>,
}

impl std::fmt::Debug for LocalCluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LocalCluster")
            .field("n", &self.nodes.len())
            .field("algorithm", &self.factory.algorithm())
            .finish()
    }
}

impl LocalCluster {
    /// An in-memory cluster: crossbeam-channel transport, crash-surviving
    /// [`SharedStorage`]. Fast enough for unit tests.
    ///
    /// # Errors
    ///
    /// Infallible today; `Result` keeps the signature uniform with the
    /// socket-backed constructors.
    pub fn channel(n: usize, factory: Arc<dyn AutomatonFactory>) -> Result<Self, NetError> {
        let board = Switchboard::new(n);
        let disks = (0..n)
            .map(|_| NodeDisk::Shared(SharedStorage::new()))
            .collect();
        let mut cluster = LocalCluster {
            factory,
            kind: TransportKind::Channel(board),
            disks,
            nodes: (0..n).map(|_| None).collect(),
        };
        for pid in ProcessId::all(n) {
            cluster.boot(pid)?;
        }
        Ok(cluster)
    }

    /// A UDP loopback cluster with file-backed storage under `dir` — the
    /// closest analogue of the paper's testbed on one machine.
    ///
    /// # Errors
    ///
    /// Returns [`NetError`] if sockets cannot be bound.
    pub fn udp(
        n: usize,
        factory: Arc<dyn AutomatonFactory>,
        dir: impl Into<PathBuf>,
    ) -> Result<Self, NetError> {
        let base = free_udp_base(n);
        let peers = UdpTransport::loopback_peers(n, base);
        let dir = dir.into();
        let disks = (0..n)
            .map(|i| NodeDisk::Dir(dir.join(format!("p{i}"))))
            .collect();
        let mut cluster = LocalCluster {
            factory,
            kind: TransportKind::Udp(peers),
            disks,
            nodes: (0..n).map(|_| None).collect(),
        };
        for pid in ProcessId::all(n) {
            cluster.boot(pid)?;
        }
        Ok(cluster)
    }

    /// A TCP loopback cluster with file-backed storage under `dir`.
    ///
    /// # Errors
    ///
    /// Returns [`NetError`] if listeners cannot be bound.
    pub fn tcp(
        n: usize,
        factory: Arc<dyn AutomatonFactory>,
        dir: impl Into<PathBuf>,
    ) -> Result<Self, NetError> {
        let base = free_tcp_base(n);
        let peers = TcpTransport::loopback_peers(n, base);
        let dir = dir.into();
        let disks = (0..n)
            .map(|i| NodeDisk::Dir(dir.join(format!("p{i}"))))
            .collect();
        let mut cluster = LocalCluster {
            factory,
            kind: TransportKind::Tcp(peers),
            disks,
            nodes: (0..n).map(|_| None).collect(),
        };
        for pid in ProcessId::all(n) {
            cluster.boot(pid)?;
        }
        Ok(cluster)
    }

    fn boot(&mut self, pid: ProcessId) -> Result<(), NetError> {
        let n = self.nodes.len();
        let (tx, rx) = unbounded();
        let transport: Arc<dyn Transport> = match &self.kind {
            TransportKind::Channel(board) => {
                Arc::new(ChannelTransport::new(pid, n, board.clone(), tx))
            }
            TransportKind::Udp(peers) => Arc::new(UdpTransport::bind(pid, peers.clone(), tx)?),
            TransportKind::Tcp(peers) => Arc::new(TcpTransport::bind(pid, peers.clone(), tx)?),
        };
        let storage = self.disks[pid.index()].open();
        let runner = ProcessRunner::start(self.factory.as_ref(), storage, transport, rx);
        self.nodes[pid.index()] = Some(runner);
        Ok(())
    }

    /// Number of processes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the cluster has no processes (never true in practice).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// A client handle for `pid`.
    ///
    /// # Panics
    ///
    /// Panics if the process is currently killed.
    pub fn client(&self, pid: ProcessId) -> Client {
        self.nodes[pid.index()]
            .as_ref()
            .unwrap_or_else(|| panic!("{pid} is down"))
            .client()
    }

    /// Client handles for every process that is currently up, in process
    /// order. The natural input for `rmem-kv`'s `KvClient`, which spreads
    /// per-shard traffic across the cluster.
    pub fn clients(&self) -> Vec<Client> {
        self.nodes
            .iter()
            .flatten()
            .map(ProcessRunner::client)
            .collect()
    }

    /// Whether `pid` is currently running.
    pub fn is_up(&self, pid: ProcessId) -> bool {
        self.nodes[pid.index()].is_some()
    }

    /// Kills `pid`: the runner stops, volatile state is gone, stable
    /// storage survives for [`restart`](LocalCluster::restart). No-op if
    /// already down.
    pub fn kill(&mut self, pid: ProcessId) {
        if let Some(runner) = self.nodes[pid.index()].take() {
            let _ = runner.stop();
        }
    }

    /// Restarts a killed `pid`; the new incarnation recovers from the
    /// surviving storage (running the algorithm's recovery procedure).
    ///
    /// # Errors
    ///
    /// Returns [`NetError`] if the transport cannot be rebuilt.
    ///
    /// # Panics
    ///
    /// Panics if the process is still up.
    pub fn restart(&mut self, pid: ProcessId) -> Result<(), NetError> {
        assert!(self.nodes[pid.index()].is_none(), "{pid} is still up");
        self.boot(pid)
    }

    /// Stops every process.
    pub fn shutdown(&mut self) {
        for pid in ProcessId::all(self.nodes.len()) {
            self.kill(pid);
        }
    }
}

impl Drop for LocalCluster {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn free_udp_base(n: usize) -> u16 {
    let probe = std::net::UdpSocket::bind("127.0.0.1:0").unwrap();
    let port = probe.local_addr().unwrap().port();
    drop(probe);
    assert!((port as usize) + n < u16::MAX as usize);
    port
}

fn free_tcp_base(n: usize) -> u16 {
    let probe = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let port = probe.local_addr().unwrap().port();
    drop(probe);
    assert!((port as usize) + n < u16::MAX as usize);
    port
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmem_core::{Persistent, Transient};
    use rmem_types::Value;

    #[test]
    fn channel_cluster_write_read() {
        let mut cluster = LocalCluster::channel(3, Transient::factory()).unwrap();
        cluster
            .client(ProcessId(0))
            .write(Value::from_u32(11))
            .unwrap();
        let v = cluster.client(ProcessId(2)).read().unwrap();
        assert_eq!(v.as_u32(), Some(11));
        cluster.shutdown();
    }

    #[test]
    fn kill_and_restart_preserves_written_values() {
        let mut cluster = LocalCluster::channel(3, Persistent::factory()).unwrap();
        cluster
            .client(ProcessId(0))
            .write(Value::from_u32(77))
            .unwrap();
        cluster.kill(ProcessId(0));
        assert!(!cluster.is_up(ProcessId(0)));
        // Reads still work with a majority up.
        let v = cluster.client(ProcessId(1)).read().unwrap();
        assert_eq!(v.as_u32(), Some(77));
        // The restarted process recovers and serves too.
        cluster.restart(ProcessId(0)).unwrap();
        assert!(cluster.is_up(ProcessId(0)));
        let v = cluster.client(ProcessId(0)).read().unwrap();
        assert_eq!(v.as_u32(), Some(77));
        cluster.shutdown();
    }

    #[test]
    fn total_crash_with_full_recovery_keeps_the_value() {
        let mut cluster = LocalCluster::channel(3, Persistent::factory()).unwrap();
        cluster
            .client(ProcessId(1))
            .write(Value::from_u32(5))
            .unwrap();
        for pid in ProcessId::all(3) {
            cluster.kill(pid);
        }
        for pid in ProcessId::all(3) {
            cluster.restart(pid).unwrap();
        }
        let v = cluster.client(ProcessId(2)).read().unwrap();
        assert_eq!(
            v.as_u32(),
            Some(5),
            "the completed write must survive a total crash"
        );
        cluster.shutdown();
    }
}
