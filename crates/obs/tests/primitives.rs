//! Property and contention coverage for the observability primitives:
//! histogram bucket boundaries and merges, ring-buffer wraparound and
//! ordering, and multi-threaded runs asserting no lost counter
//! increments and no torn events.

use proptest::prelude::*;
use rmem_obs::{
    bucket_of, bucket_upper_bound, Counter, EventKind, FlightEvent, FlightRecorder, Histogram,
    Registry, BUCKETS,
};
use std::sync::Arc;

proptest! {
    /// Every value lands in exactly the bucket whose bounds contain it.
    #[test]
    fn bucket_bounds_contain_their_values(v in any::<u64>()) {
        let b = bucket_of(v);
        prop_assert!(b < BUCKETS);
        prop_assert!(v <= bucket_upper_bound(b));
        if b > 0 && b < BUCKETS - 1 {
            prop_assert!(v > bucket_upper_bound(b - 1));
        }
    }

    /// Bucketing is monotone: a larger value never lands in a smaller
    /// bucket.
    #[test]
    fn bucketing_is_monotone(a in any::<u64>(), b in any::<u64>()) {
        let (lo, hi) = (a.min(b), a.max(b));
        prop_assert!(bucket_of(lo) <= bucket_of(hi));
    }

    /// Merging two histograms is exactly recording both value sets into
    /// one, and percentiles bound the true quantiles from above.
    #[test]
    fn merge_equals_combined_recording(
        xs in prop::collection::vec(0u64..1_000_000, 1..200),
        ys in prop::collection::vec(0u64..1_000_000, 1..200),
    ) {
        let (ha, hb, hc) = (Histogram::new(), Histogram::new(), Histogram::new());
        for &x in &xs { ha.record(x); hc.record(x); }
        for &y in &ys { hb.record(y); hc.record(y); }
        let mut merged = ha.snapshot();
        merged.merge(&hb.snapshot());
        prop_assert_eq!(&merged, &hc.snapshot());
        prop_assert_eq!(merged.count, (xs.len() + ys.len()) as u64);

        // Nearest-rank sanity against the sorted data: the reported
        // bucket bound is ≥ the true quantile and < 2× above it.
        let mut all: Vec<u64> = xs.iter().chain(ys.iter()).copied().collect();
        all.sort_unstable();
        for q in [0.5, 0.9, 0.99] {
            let rank = ((q * all.len() as f64).ceil() as usize).clamp(1, all.len());
            let truth = all[rank - 1];
            let reported = merged.percentile(q);
            prop_assert!(reported >= truth, "p{q}: reported {reported} < true {truth}");
            prop_assert!(reported <= truth.saturating_mul(2).max(1),
                "p{q}: reported {reported} > 2x true {truth}");
        }
    }

    /// Percentiles are monotone in the quantile.
    #[test]
    fn percentiles_are_monotone(xs in prop::collection::vec(any::<u64>(), 1..100)) {
        let h = Histogram::new();
        for &x in &xs { h.record(x); }
        let s = h.snapshot();
        let mut prev = 0u64;
        for q in [0.0, 0.1, 0.5, 0.9, 0.99, 0.999, 1.0] {
            let p = s.percentile(q);
            prop_assert!(p >= prev);
            prev = p;
        }
    }

    /// The ring keeps exactly the newest `capacity` events, in recording
    /// order, whatever the overflow factor.
    #[test]
    fn wraparound_keeps_newest_in_order(cap_pow in 3u32..8, total in 1usize..600) {
        let cap = 1usize << cap_pow;
        let rec = FlightRecorder::new(cap);
        for i in 0..total as u64 {
            rec.record(FlightEvent::new(EventKind::OpStart).with_op(1, i).with_aux(i ^ 0xabcd));
        }
        let dump = rec.dump();
        prop_assert_eq!(dump.len(), total.min(cap));
        let first = total.saturating_sub(cap) as u64;
        for (k, ev) in dump.iter().enumerate() {
            let expect = first + k as u64;
            prop_assert_eq!(ev.op, Some((1, expect)));
            prop_assert_eq!(ev.aux, expect ^ 0xabcd);
        }
        prop_assert_eq!(rec.dropped(), total.saturating_sub(cap) as u64);
    }
}

/// Hammer one counter and one histogram from many threads: relaxed RMW
/// increments must not lose a single update.
#[test]
fn contended_counters_lose_nothing() {
    const THREADS: usize = 8;
    const PER_THREAD: u64 = 50_000;
    let reg = Registry::new();
    let counter: Arc<Counter> = reg.counter("hits");
    let hist = reg.histogram("vals");
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let counter = counter.clone();
            let hist = hist.clone();
            scope.spawn(move || {
                for i in 0..PER_THREAD {
                    counter.inc();
                    hist.record((t as u64) << 32 | i);
                }
            });
        }
    });
    let expect = THREADS as u64 * PER_THREAD;
    assert_eq!(counter.get(), expect);
    let snap = reg.snapshot();
    assert_eq!(snap.counter("hits"), expect);
    assert_eq!(snap.histogram("vals").count, expect);
    let bucket_total: u64 = snap.histogram("vals").buckets.iter().sum();
    assert_eq!(bucket_total, expect, "bucket counts must add up exactly");
}

/// Hammer the ring from many threads while a reader dumps concurrently:
/// every event that survives into a dump must be internally consistent
/// (no torn mixes of two writers' payloads), and a quiesced dump holds
/// exactly the last `capacity` events.
#[test]
fn contended_ring_yields_no_torn_events() {
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 20_000;
    // Writers tag each event so consistency is checkable per event:
    // op = (thread, i), aux must equal thread * 1e9 + i.
    let check = |ev: &FlightEvent| {
        let (t, i) = ev.op.expect("writer always sets an op");
        assert!(
            u64::from(t) < THREADS && i < PER_THREAD,
            "bogus fields: {ev:?}"
        );
        assert_eq!(
            ev.aux,
            u64::from(t) * 1_000_000_000 + i,
            "torn event: payload words from different writers: {ev:?}"
        );
    };
    let rec = Arc::new(FlightRecorder::new(1024));
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let rec = rec.clone();
            scope.spawn(move || {
                for i in 0..PER_THREAD {
                    rec.record(
                        FlightEvent::new(EventKind::RoundSent)
                            .with_op(t as u16, i)
                            .with_aux(t * 1_000_000_000 + i),
                    );
                }
            });
        }
        // Concurrent reader: whatever it sees must be well-formed.
        let rec2 = rec.clone();
        scope.spawn(move || {
            for _ in 0..50 {
                for ev in rec2.dump() {
                    check(&ev);
                }
                std::thread::yield_now();
            }
        });
    });
    // Quiesced: the ring holds its full capacity of valid events and
    // accounts for every recording.
    assert_eq!(rec.total_recorded(), THREADS * PER_THREAD);
    let dump = rec.dump();
    assert_eq!(dump.len(), rec.capacity());
    for ev in &dump {
        check(ev);
    }
}
