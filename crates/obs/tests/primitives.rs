//! Property and contention coverage for the observability primitives:
//! histogram bucket boundaries and merges, ring-buffer wraparound and
//! ordering, and multi-threaded runs asserting no lost counter
//! increments and no torn events.

use proptest::prelude::*;
use rmem_obs::trace::{stitch, RingDump};
use rmem_obs::{
    bucket_of, bucket_upper_bound, pack_wire_aux, Counter, EventKind, FlightEvent, FlightRecorder,
    Histogram, MetricsSnapshot, Registry, BUCKETS, CLIENT_OP_BIT,
};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

proptest! {
    /// Every value lands in exactly the bucket whose bounds contain it.
    #[test]
    fn bucket_bounds_contain_their_values(v in any::<u64>()) {
        let b = bucket_of(v);
        prop_assert!(b < BUCKETS);
        prop_assert!(v <= bucket_upper_bound(b));
        if b > 0 && b < BUCKETS - 1 {
            prop_assert!(v > bucket_upper_bound(b - 1));
        }
    }

    /// Bucketing is monotone: a larger value never lands in a smaller
    /// bucket.
    #[test]
    fn bucketing_is_monotone(a in any::<u64>(), b in any::<u64>()) {
        let (lo, hi) = (a.min(b), a.max(b));
        prop_assert!(bucket_of(lo) <= bucket_of(hi));
    }

    /// Merging two histograms is exactly recording both value sets into
    /// one, and percentiles bound the true quantiles from above.
    #[test]
    fn merge_equals_combined_recording(
        xs in prop::collection::vec(0u64..1_000_000, 1..200),
        ys in prop::collection::vec(0u64..1_000_000, 1..200),
    ) {
        let (ha, hb, hc) = (Histogram::new(), Histogram::new(), Histogram::new());
        for &x in &xs { ha.record(x); hc.record(x); }
        for &y in &ys { hb.record(y); hc.record(y); }
        let mut merged = ha.snapshot();
        merged.merge(&hb.snapshot());
        prop_assert_eq!(&merged, &hc.snapshot());
        prop_assert_eq!(merged.count, (xs.len() + ys.len()) as u64);

        // Nearest-rank sanity against the sorted data: the reported
        // bucket bound is ≥ the true quantile and < 2× above it.
        let mut all: Vec<u64> = xs.iter().chain(ys.iter()).copied().collect();
        all.sort_unstable();
        for q in [0.5, 0.9, 0.99] {
            let rank = ((q * all.len() as f64).ceil() as usize).clamp(1, all.len());
            let truth = all[rank - 1];
            let reported = merged.percentile(q);
            prop_assert!(reported >= truth, "p{q}: reported {reported} < true {truth}");
            prop_assert!(reported <= truth.saturating_mul(2).max(1),
                "p{q}: reported {reported} > 2x true {truth}");
        }
    }

    /// Percentiles are monotone in the quantile.
    #[test]
    fn percentiles_are_monotone(xs in prop::collection::vec(any::<u64>(), 1..100)) {
        let h = Histogram::new();
        for &x in &xs { h.record(x); }
        let s = h.snapshot();
        let mut prev = 0u64;
        for q in [0.0, 0.1, 0.5, 0.9, 0.99, 0.999, 1.0] {
            let p = s.percentile(q);
            prop_assert!(p >= prev);
            prev = p;
        }
    }

    /// The ring keeps exactly the newest `capacity` events, in recording
    /// order, whatever the overflow factor.
    #[test]
    fn wraparound_keeps_newest_in_order(cap_pow in 3u32..8, total in 1usize..600) {
        let cap = 1usize << cap_pow;
        let rec = FlightRecorder::new(cap);
        for i in 0..total as u64 {
            rec.record(FlightEvent::new(EventKind::OpStart).with_op(1, i).with_aux(i ^ 0xabcd));
        }
        let dump = rec.dump();
        prop_assert_eq!(dump.len(), total.min(cap));
        let first = total.saturating_sub(cap) as u64;
        for (k, ev) in dump.iter().enumerate() {
            let expect = first + k as u64;
            prop_assert_eq!(ev.op, Some((1, expect)));
            prop_assert_eq!(ev.aux, expect ^ 0xabcd);
        }
        prop_assert_eq!(rec.dropped(), total.saturating_sub(cap) as u64);
    }
}

/// Hammer one counter and one histogram from many threads: relaxed RMW
/// increments must not lose a single update.
#[test]
fn contended_counters_lose_nothing() {
    const THREADS: usize = 8;
    const PER_THREAD: u64 = 50_000;
    let reg = Registry::new();
    let counter: Arc<Counter> = reg.counter("hits");
    let hist = reg.histogram("vals");
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let counter = counter.clone();
            let hist = hist.clone();
            scope.spawn(move || {
                for i in 0..PER_THREAD {
                    counter.inc();
                    hist.record((t as u64) << 32 | i);
                }
            });
        }
    });
    let expect = THREADS as u64 * PER_THREAD;
    assert_eq!(counter.get(), expect);
    let snap = reg.snapshot();
    assert_eq!(snap.counter("hits"), expect);
    assert_eq!(snap.histogram("vals").count, expect);
    let bucket_total: u64 = snap.histogram("vals").buckets.iter().sum();
    assert_eq!(bucket_total, expect, "bucket counts must add up exactly");
}

/// Merge semantics per metric class: counters *add*, gauges take the
/// *max*, histograms add *bucket-wise* (count, sum, and every bucket).
#[test]
fn snapshot_merge_adds_counters_maxes_gauges_adds_histograms() {
    let (ra, rb) = (Registry::new(), Registry::new());
    ra.counter("ops").add(7);
    rb.counter("ops").add(5);
    ra.gauge("depth").set(3);
    rb.gauge("depth").set(9);
    for v in [10, 20] {
        ra.histogram("lat").record(v);
    }
    for v in [20, 1_000] {
        rb.histogram("lat").record(v);
    }

    let mut merged = ra.snapshot();
    merged.merge(&rb.snapshot());
    assert_eq!(merged.counter("ops"), 12, "counters add");
    assert_eq!(merged.gauge("depth"), 9, "gauges take the max");
    let h = merged.histogram("lat");
    assert_eq!(h.count, 4);
    assert_eq!(h.sum, 1_050);
    assert_eq!(h.buckets[bucket_of(20)], 2, "shared bucket adds");
    assert_eq!(h.buckets[bucket_of(1_000)], 1);
    // Max, not sum: merging the other way yields the same gauge.
    let mut rev = rb.snapshot();
    rev.merge(&ra.snapshot());
    assert_eq!(rev.gauge("depth"), 9);
    assert_eq!(rev, merged, "add/max/bucket-add are all commutative here");
}

/// Disjoint names union: nothing in one snapshot perturbs the other's
/// entries, and absent names read as zero/empty rather than erroring.
#[test]
fn snapshot_merge_disjoint_names_is_a_union() {
    let (ra, rb) = (Registry::new(), Registry::new());
    ra.counter("a.only").add(1);
    ra.histogram("a.lat").record(5);
    rb.counter("b.only").add(2);
    rb.gauge("b.depth").set(4);

    let mut merged = ra.snapshot();
    merged.merge(&rb.snapshot());
    assert_eq!(merged.counter("a.only"), 1);
    assert_eq!(merged.counter("b.only"), 2);
    assert_eq!(merged.gauge("b.depth"), 4);
    assert_eq!(merged.histogram("a.lat").count, 1);
    assert_eq!(merged.counters.len(), 2);
    // Absent names are zero/empty, not panics.
    assert_eq!(merged.counter("nope"), 0);
    assert_eq!(merged.gauge("nope"), 0);
    assert!(merged.histogram("nope").is_empty());
}

/// Empty snapshots are the identity of `merge`, on both sides.
#[test]
fn snapshot_merge_empty_is_identity() {
    let reg = Registry::new();
    reg.counter("ops").add(3);
    reg.gauge("depth").set(2);
    reg.histogram("lat").record(42);
    let base = reg.snapshot();

    let mut left = base.clone();
    left.merge(&MetricsSnapshot::default());
    assert_eq!(left, base, "merging an empty snapshot changes nothing");

    let mut right = MetricsSnapshot::default();
    right.merge(&base);
    assert_eq!(right, base, "merging into an empty snapshot copies it");

    let mut both = MetricsSnapshot::default();
    both.merge(&MetricsSnapshot::default());
    assert_eq!(both, MetricsSnapshot::default());
}

/// Hammer the ring from many threads while a reader dumps concurrently:
/// every event that survives into a dump must be internally consistent
/// (no torn mixes of two writers' payloads), and a quiesced dump holds
/// exactly the last `capacity` events.
#[test]
fn contended_ring_yields_no_torn_events() {
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 20_000;
    // Writers tag each event so consistency is checkable per event:
    // op = (thread, i), aux must equal thread * 1e9 + i.
    let check = |ev: &FlightEvent| {
        let (t, i) = ev.op.expect("writer always sets an op");
        assert!(
            u64::from(t) < THREADS && i < PER_THREAD,
            "bogus fields: {ev:?}"
        );
        assert_eq!(
            ev.aux,
            u64::from(t) * 1_000_000_000 + i,
            "torn event: payload words from different writers: {ev:?}"
        );
    };
    let rec = Arc::new(FlightRecorder::new(1024));
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let rec = rec.clone();
            scope.spawn(move || {
                for i in 0..PER_THREAD {
                    rec.record(
                        FlightEvent::new(EventKind::RoundSent)
                            .with_op(t as u16, i)
                            .with_aux(t * 1_000_000_000 + i),
                    );
                }
            });
        }
        // Concurrent reader: whatever it sees must be well-formed.
        let rec2 = rec.clone();
        scope.spawn(move || {
            for _ in 0..50 {
                for ev in rec2.dump() {
                    check(&ev);
                }
                std::thread::yield_now();
            }
        });
    });
    // Quiesced: the ring holds its full capacity of valid events and
    // accounts for every recording.
    assert_eq!(rec.total_recorded(), THREADS * PER_THREAD);
    let dump = rec.dump();
    assert_eq!(dump.len(), rec.capacity());
    for ev in &dump {
        check(ev);
    }
}

/// Lap two undersized rings from concurrent writers while a stitcher
/// repeatedly dumps and stitches them live: wraparound tears whole ops
/// out of the window mid-read, and the stitcher must degrade those to
/// `incomplete` — never panic, never emit a malformed stitched op. The
/// 64-slot rings wrap hundreds of times during the run, so most dumps
/// catch the writers mid-lap.
#[test]
fn stitcher_rejects_torn_windows_under_wraparound() {
    const OPS: u64 = 20_000;
    let family: u16 = 1 | CLIENT_OP_BIT;
    let client_ring = Arc::new(FlightRecorder::new(64));
    let node_ring = Arc::new(FlightRecorder::new(64));
    let done = Arc::new(AtomicBool::new(false));

    let well_formed = |report: &rmem_obs::trace::TraceReport| {
        assert!(
            (0.0..=1.0).contains(&report.coverage()),
            "coverage out of range: {}",
            report.coverage()
        );
        assert_eq!(
            report.stitched.len() + report.incomplete,
            report.completed,
            "every completed op is either stitched or incomplete"
        );
        for op in &report.stitched {
            assert!(
                op.wall_us.is_finite() && op.wall_us >= 0.0,
                "bogus wall clock"
            );
            for (name, us) in rmem_obs::trace::SEGMENTS.iter().zip(op.segments) {
                assert!(us.is_finite() && us >= 0.0, "segment {name} = {us}");
            }
            assert!(op.attributed_us().is_finite());
            // Timelines stay sorted even when the window was torn.
            for w in op.timeline.windows(2) {
                assert!(
                    w[0].corrected_us <= w[1].corrected_us,
                    "timeline out of order"
                );
            }
        }
        // Rendering a torn window must not panic either.
        let _ = report.render_summary();
        let _ = report.render_exemplars(3);
    };

    std::thread::scope(|scope| {
        // The "client": a send/recv bracket per op.
        let cring = client_ring.clone();
        let cdone = done.clone();
        scope.spawn(move || {
            for i in 0..OPS {
                cring.record(
                    FlightEvent::new(EventKind::ClientSend)
                        .with_op(family, i)
                        .with_aux(0),
                );
                cring.record(FlightEvent::new(EventKind::ClientRecv).with_op(family, i));
            }
            cdone.store(true, Ordering::Relaxed);
        });
        // The "coordinator": the matching op bracket plus one wire round,
        // racing the client writer into a different ring.
        let nring = node_ring.clone();
        scope.spawn(move || {
            for i in 0..OPS {
                nring.record(FlightEvent::new(EventKind::OpStart).with_op(family, i));
                nring.record(
                    FlightEvent::new(EventKind::RoundSent)
                        .with_op(family, i)
                        .with_aux(pack_wire_aux(1, i, false)),
                );
                nring.record(
                    FlightEvent::new(EventKind::AckRecv)
                        .with_op(family, i)
                        .with_aux(pack_wire_aux(1, i, true)),
                );
                nring.record(FlightEvent::new(EventKind::OpComplete).with_op(family, i));
            }
        });
        // The stitcher, live against both wrapping rings.
        let (cring, nring) = (client_ring.clone(), node_ring.clone());
        let sdone = done.clone();
        scope.spawn(move || {
            let mut passes = 0u32;
            while !sdone.load(Ordering::Relaxed) || passes < 10 {
                let rings = vec![
                    RingDump::client(family, cring.dump()),
                    RingDump::node(0, nring.dump()),
                ];
                well_formed(&stitch(&rings));
                passes += 1;
                std::thread::yield_now();
            }
        });
    });

    // Quiesced: the surviving window still stitches into a well-formed
    // report, and the laps are visible in the drop counter.
    assert!(
        client_ring.dropped() > 0,
        "the ring must actually have lapped"
    );
    let rings = vec![
        RingDump::client(family, client_ring.dump()),
        RingDump::node(0, node_ring.dump()),
    ];
    well_formed(&stitch(&rings));
}
