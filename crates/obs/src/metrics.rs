//! The lock-free metrics registry: counters, gauges and log-bucketed
//! histograms.
//!
//! Everything on the hot path is a relaxed atomic operation on a
//! pre-resolved handle — instrumented code calls
//! [`Registry::counter`]/[`Registry::histogram`] once at setup, keeps the
//! returned `Arc`, and pays one `fetch_add` per observation afterwards.
//! The registry's interior `Mutex` guards only name → handle resolution
//! (setup time) and snapshotting (read time), never an increment.
//!
//! Histograms are HdrHistogram-style power-of-two log buckets: a fixed
//! array of [`BUCKETS`] atomic counters where value `v` lands in bucket
//! `64 - v.leading_zeros()` (clamped). Recording is two relaxed
//! `fetch_add`s plus one for the sum; percentiles are computed from a
//! [`HistogramSnapshot`] by nearest rank, reporting the inclusive upper
//! bound of the bucket holding that rank (≤ 2× error by construction,
//! plenty for latency distributions spanning microseconds to seconds).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of histogram buckets: one per power of two of `u64`, plus the
/// zero bucket.
pub const BUCKETS: usize = 64;

/// A monotonically increasing counter. Increments are relaxed atomics —
/// no ordering, no loss (RMW operations never drop updates).
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-value-wins gauge.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Creates a gauge at zero.
    pub fn new() -> Self {
        Gauge(AtomicU64::new(0))
    }

    /// Replaces the value.
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Raises the value to `v` if larger (high-water marks).
    #[inline]
    pub fn raise(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// The bucket value `v` lands in: 0 for 0, otherwise one bucket per
/// power of two (`1→1`, `2..=3→2`, `4..=7→3`, …), clamped to the last
/// bucket.
#[inline]
pub fn bucket_of(v: u64) -> usize {
    ((u64::BITS - v.leading_zeros()) as usize).min(BUCKETS - 1)
}

/// The largest value bucket `b` holds (`2^b − 1` for interior buckets,
/// `u64::MAX` for the last).
pub fn bucket_upper_bound(b: usize) -> u64 {
    if b >= BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << b) - 1
    }
}

/// A lock-free log-bucketed histogram (see the module docs for the
/// bucketing scheme). `record` is three relaxed `fetch_add`s.
#[derive(Debug)]
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Records one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// A point-in-time copy of the distribution. Concurrent recording is
    /// fine; the snapshot may be off by the in-flight handful.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
        }
    }
}

/// An owned copy of a [`Histogram`]'s state: mergeable, queryable for
/// percentiles, serializable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Per-bucket observation counts (see [`bucket_of`]).
    pub buckets: [u64; BUCKETS],
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            count: 0,
            sum: 0,
            buckets: [0; BUCKETS],
        }
    }
}

impl HistogramSnapshot {
    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Folds `other` into `self` bucket-wise. Merging distributions
    /// recorded with the same bucketing is exact.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        self.count += other.count;
        self.sum += other.sum;
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
    }

    /// Mean of the recorded values (exact — the sum is tracked outside
    /// the buckets). 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) by nearest rank, reported as the
    /// inclusive upper bound of the bucket containing that rank. 0 when
    /// empty.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_upper_bound(b);
            }
        }
        bucket_upper_bound(BUCKETS - 1)
    }

    /// Renders the quartet of latency percentiles as a compact JSON
    /// object (used by the bench snapshot).
    pub fn to_json(&self) -> String {
        let mut sparse = String::new();
        for (b, &n) in self.buckets.iter().enumerate() {
            if n > 0 {
                if !sparse.is_empty() {
                    sparse.push(',');
                }
                sparse.push_str(&format!("[{b},{n}]"));
            }
        }
        format!(
            "{{\"count\":{},\"sum\":{},\"p50\":{},\"p90\":{},\"p99\":{},\"p999\":{},\"buckets\":[{}]}}",
            self.count,
            self.sum,
            self.percentile(0.50),
            self.percentile(0.90),
            self.percentile(0.99),
            self.percentile(0.999),
            sparse
        )
    }
}

#[derive(Default)]
struct RegistryInner {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

/// A named collection of metrics, one per node or client.
///
/// Cloning shares the underlying metrics (the handle is an `Arc`).
/// Resolution (`counter`/`gauge`/`histogram`) takes a short mutex and is
/// meant for setup paths; the returned handles are lock-free.
///
/// A registry built with [`Registry::disabled`] still hands out working
/// handles (counters count — they are too cheap to gate) but reports
/// [`is_enabled`](Registry::is_enabled)` == false`, which instrumented
/// code uses to skip *expensive* observations such as `Instant::now`
/// pairs for latency histograms.
#[derive(Clone, Default)]
pub struct Registry {
    inner: Arc<RegistryInner>,
    enabled: bool,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry")
            .field("enabled", &self.enabled)
            .finish()
    }
}

impl Registry {
    /// A fresh, enabled registry.
    pub fn new() -> Self {
        Registry {
            inner: Arc::new(RegistryInner::default()),
            enabled: true,
        }
    }

    /// A registry whose expensive observations are off (see the type
    /// docs) — the bench harness's uninstrumented baseline.
    pub fn disabled() -> Self {
        Registry {
            inner: Arc::new(RegistryInner::default()),
            enabled: false,
        }
    }

    /// Whether expensive observations (latency timing) should run.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// The counter named `name`, created on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.inner.counters.lock().expect("counter registry");
        map.entry(name.to_string())
            .or_insert_with(|| Arc::new(Counter::new()))
            .clone()
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.inner.gauges.lock().expect("gauge registry");
        map.entry(name.to_string())
            .or_insert_with(|| Arc::new(Gauge::new()))
            .clone()
    }

    /// The histogram named `name`, created on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = self.inner.histograms.lock().expect("histogram registry");
        map.entry(name.to_string())
            .or_insert_with(|| Arc::new(Histogram::new()))
            .clone()
    }

    /// A point-in-time copy of every metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .inner
                .counters
                .lock()
                .expect("counter registry")
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: self
                .inner
                .gauges
                .lock()
                .expect("gauge registry")
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: self
                .inner
                .histograms
                .lock()
                .expect("histogram registry")
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }
}

/// An owned point-in-time copy of a [`Registry`]: plain maps, mergeable
/// and serializable.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, u64>,
    /// Histogram states by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// The counter named `name`, 0 if absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The gauge named `name`, 0 if absent.
    pub fn gauge(&self, name: &str) -> u64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// The histogram named `name`, empty if absent.
    pub fn histogram(&self, name: &str) -> HistogramSnapshot {
        self.histograms.get(name).cloned().unwrap_or_default()
    }

    /// Injects a gauge value — how external counter surfaces (e.g. the
    /// storage layer's `StoreCounters`) are bridged into a snapshot.
    pub fn set_gauge(&mut self, name: &str, v: u64) {
        self.gauges.insert(name.to_string(), v);
    }

    /// Folds `other` into `self`: counters and histograms add, gauges
    /// take the maximum.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            let e = self.gauges.entry(k.clone()).or_insert(0);
            *e = (*e).max(*v);
        }
        for (k, v) in &other.histograms {
            self.histograms.entry(k.clone()).or_default().merge(v);
        }
    }

    /// Serializes the snapshot as a JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{k}\":{v}"));
        }
        out.push_str("},\"gauges\":{");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{k}\":{v}"));
        }
        out.push_str("},\"histograms\":{");
        for (i, (k, v)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{k}\":{}", v.to_json()));
        }
        out.push_str("}}");
        out
    }

    /// Renders the snapshot as an aligned human-readable block.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (k, v) in &self.counters {
            out.push_str(&format!("  {k:<32} {v}\n"));
        }
        for (k, v) in &self.gauges {
            out.push_str(&format!("  {k:<32} {v} (gauge)\n"));
        }
        for (k, h) in &self.histograms {
            out.push_str(&format!(
                "  {k:<32} n={} mean={:.1} p50≤{} p99≤{}\n",
                h.count,
                h.mean(),
                h.percentile(0.50),
                h.percentile(0.99),
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(7), 3);
        assert_eq!(bucket_of(8), 4);
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
        // Every value is ≤ its bucket's upper bound and > the previous
        // bucket's.
        for v in [0u64, 1, 2, 3, 5, 100, 1 << 20, u64::MAX] {
            let b = bucket_of(v);
            assert!(v <= bucket_upper_bound(b));
            if b > 0 {
                assert!(v > bucket_upper_bound(b - 1));
            }
        }
    }

    #[test]
    fn histogram_percentiles_bound_the_data() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1000);
        assert_eq!(s.sum, 500_500);
        // p50 of 1..=1000 is 500; the bucket bound reports ≤ 2× above.
        let p50 = s.percentile(0.50);
        assert!((500..=1023).contains(&p50), "p50={p50}");
        let p999 = s.percentile(0.999);
        assert!((999..=1023).contains(&p999), "p999={p999}");
        assert!(s.percentile(1.0) >= s.percentile(0.5));
    }

    #[test]
    fn registry_hands_out_shared_handles() {
        let r = Registry::new();
        let a = r.counter("x");
        let b = r.counter("x");
        a.inc();
        b.add(2);
        assert_eq!(r.snapshot().counter("x"), 3);
        r.gauge("g").set(7);
        r.gauge("g").raise(3); // lower: no effect
        assert_eq!(r.snapshot().gauge("g"), 7);
        assert!(r.is_enabled());
        assert!(!Registry::disabled().is_enabled());
    }

    #[test]
    fn snapshot_merge_and_json() {
        let r = Registry::new();
        r.counter("ops").add(5);
        r.histogram("lat").record(100);
        let mut a = r.snapshot();
        let b = a.clone();
        a.merge(&b);
        assert_eq!(a.counter("ops"), 10);
        assert_eq!(a.histogram("lat").count, 2);
        let json = a.to_json();
        assert!(json.contains("\"ops\":10"));
        assert!(json.contains("\"lat\""));
        assert!(json.starts_with('{') && json.ends_with('}'));
        a.set_gauge("bridge", 42);
        assert_eq!(a.gauge("bridge"), 42);
        assert!(a.render().contains("ops"));
    }
}
