//! The per-node **flight recorder**: a bounded lock-free ring of
//! structured events, written on the hot path and dumped on demand —
//! the postmortem substrate for "which node, round, seal poll or fsync
//! produced this interleaving".
//!
//! ## Lock-freedom without `unsafe`
//!
//! Writers claim a slot with one `fetch_add` on the head ticket and
//! publish through a per-slot sequence word (a seqlock made of plain
//! atomics, so the crate stays `forbid(unsafe_code)`):
//!
//! 1. `seq ← 2·ticket + 1` (odd: write in progress),
//! 2. the five payload words are stored relaxed,
//! 3. `seq ← 2·ticket + 2` (even: published; encodes the ticket, so a
//!    slot overwritten by a later lap is detectable).
//!
//! Readers ([`FlightRecorder::dump`]) load the expected sequence, copy
//! the words, and re-check the sequence: any concurrent overwrite makes
//! the check fail and the entry is discarded rather than surfaced torn.
//! The ring never blocks a writer — old events are overwritten, and
//! [`dropped`](FlightRecorder::dropped) reports how many fell off.
//!
//! Timestamps are monotonic (`Instant`-based) microseconds since the
//! recorder's creation, so one node's dump is internally ordered even
//! across its threads (event loop + syncer).

use std::sync::atomic::{fence, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// What happened. The variants mirror the life of an operation through
/// the stack: client admission, quorum rounds, the durability pipeline,
/// the kv layer's epoch machinery, and the terminal halt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum EventKind {
    /// An operation was admitted by a node's event loop.
    OpStart = 1,
    /// The operation replied to its client (`aux` = quorum round-trips).
    OpComplete = 2,
    /// A protocol request left for a peer (`aux` = destination pid).
    RoundSent = 3,
    /// An acknowledgement arrived (`aux` = sender pid ≪ 1 | durable bit).
    AckRecv = 4,
    /// A store left the event loop for the syncer (`aux` = store token).
    StoreQueued = 5,
    /// The fsync covering a store returned (`aux` = store token).
    StoreDurable = 6,
    /// The syncer committed a batch (`aux` = group size).
    GroupCommit = 7,
    /// A client observed a shard seal during a split (`aux` = shard).
    SealObserved = 8,
    /// A client adopted a newer shard map (`aux` = shard count).
    EpochRefresh = 9,
    /// A client entered the split write barrier (`aux` = polls so far).
    BarrierWait = 10,
    /// The node halted (see [`FlightRecorder::halt_reason`]).
    Halt = 11,
    /// A protocol request arrived at a replica (`aux` = wire-packed
    /// sender pid + round nonce, see [`pack_wire_aux`]).
    ReqRecv = 12,
    /// A replica sent an acknowledgement (`aux` = wire-packed destination
    /// pid + round nonce).
    AckSent = 13,
    /// A client handed an operation to a node (`aux` = contacted pid).
    ClientSend = 14,
    /// A client received its operation's result (`aux` = contacted pid).
    ClientRecv = 15,
    /// A leased read was served from the client's tag cache with zero
    /// datagrams (the event's register field names the lease).
    LeaseHit = 16,
    /// A client lease was revoked before its horizon — own write, newer
    /// tag observed, or epoch change (`aux` = leases dropped; 1 for a
    /// single-register revoke, the whole cache on an epoch change).
    LeaseRevoke = 17,
}

impl EventKind {
    fn from_u8(v: u8) -> Option<EventKind> {
        Some(match v {
            1 => EventKind::OpStart,
            2 => EventKind::OpComplete,
            3 => EventKind::RoundSent,
            4 => EventKind::AckRecv,
            5 => EventKind::StoreQueued,
            6 => EventKind::StoreDurable,
            7 => EventKind::GroupCommit,
            8 => EventKind::SealObserved,
            9 => EventKind::EpochRefresh,
            10 => EventKind::BarrierWait,
            11 => EventKind::Halt,
            12 => EventKind::ReqRecv,
            13 => EventKind::AckSent,
            14 => EventKind::ClientSend,
            15 => EventKind::ClientRecv,
            16 => EventKind::LeaseHit,
            17 => EventKind::LeaseRevoke,
            _ => return None,
        })
    }

    /// Stable label used in timelines and JSON.
    pub fn label(&self) -> &'static str {
        match self {
            EventKind::OpStart => "OpStart",
            EventKind::OpComplete => "OpComplete",
            EventKind::RoundSent => "RoundSent",
            EventKind::AckRecv => "AckRecv",
            EventKind::StoreQueued => "StoreQueued",
            EventKind::StoreDurable => "StoreDurable",
            EventKind::GroupCommit => "GroupCommit",
            EventKind::SealObserved => "SealObserved",
            EventKind::EpochRefresh => "EpochRefresh",
            EventKind::BarrierWait => "BarrierWait",
            EventKind::Halt => "Halt",
            EventKind::ReqRecv => "ReqRecv",
            EventKind::AckSent => "AckSent",
            EventKind::ClientSend => "ClientSend",
            EventKind::ClientRecv => "ClientRecv",
            EventKind::LeaseHit => "LeaseHit",
            EventKind::LeaseRevoke => "LeaseRevoke",
        }
    }
}

/// High bit of a [`FlightEvent::op`] pid marking a *client-family* id
/// rather than a node process id (mirrors `TraceId::CLIENT_BIT` in
/// `rmem-types`; duplicated so this crate stays dependency-free).
pub const CLIENT_OP_BIT: u16 = 0x8000;

/// Packs a wire event's `aux`: the peer pid, the round nonce (low 47 bits
/// — matching-only, both sides truncate identically) and, for acks, the
/// durability attestation bit.
pub fn pack_wire_aux(peer: u16, nonce: u64, durable: bool) -> u64 {
    (nonce << 17) | u64::from(peer) << 1 | u64::from(durable)
}

/// Unpacks [`pack_wire_aux`] into `(peer, nonce, durable)`.
pub fn unpack_wire_aux(aux: u64) -> (u16, u64, bool) {
    ((aux >> 1) as u16, aux >> 17, aux & 1 == 1)
}

fn fmt_op(pid: u16, counter: u64) -> String {
    if pid & CLIENT_OP_BIT != 0 {
        format!("c{}#{}", pid & !CLIENT_OP_BIT, counter)
    } else {
        format!("p{pid}#{counter}")
    }
}

/// One structured event. Built with the `with_*` helpers; the recorder
/// stamps the timestamp at [`FlightRecorder::record`] time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlightEvent {
    /// Microseconds since the recorder's creation.
    pub at_micros: u64,
    /// What happened.
    pub kind: EventKind,
    /// The register (= shard slot) involved, 0 when not applicable.
    pub register: u16,
    /// The shard-map epoch in force, 0 when not applicable.
    pub epoch: u32,
    /// The operation involved: `(origin pid, per-process counter)` for
    /// node-local ops, or `(client-family id | CLIENT_OP_BIT, trace op)`
    /// for traced operations.
    pub op: Option<(u16, u64)>,
    /// Kind-specific payload (see [`EventKind`]).
    pub aux: u64,
    /// The ring ticket this event was dumped from — a per-recorder
    /// insertion sequence, used as the final tie-breaker when sorting.
    /// Zero until the event has been through [`FlightRecorder::dump`].
    pub seq: u64,
}

impl FlightEvent {
    /// An event of `kind` with every field defaulted.
    pub fn new(kind: EventKind) -> Self {
        FlightEvent {
            at_micros: 0,
            kind,
            register: 0,
            epoch: 0,
            op: None,
            aux: 0,
            seq: 0,
        }
    }

    /// Sets the register.
    pub fn with_register(mut self, reg: u16) -> Self {
        self.register = reg;
        self
    }

    /// Sets the epoch.
    pub fn with_epoch(mut self, epoch: u32) -> Self {
        self.epoch = epoch;
        self
    }

    /// Sets the operation id.
    pub fn with_op(mut self, pid: u16, counter: u64) -> Self {
        self.op = Some((pid, counter));
        self
    }

    /// Sets the kind-specific payload.
    pub fn with_aux(mut self, aux: u64) -> Self {
        self.aux = aux;
        self
    }

    /// The event as one JSON object.
    pub fn to_json(&self) -> String {
        let op = match self.op {
            Some((pid, c)) => format!("\"{}\"", fmt_op(pid, c)),
            None => "null".to_string(),
        };
        format!(
            "{{\"t_us\":{},\"kind\":\"{}\",\"op\":{},\"reg\":{},\"epoch\":{},\"aux\":{}}}",
            self.at_micros,
            self.kind.label(),
            op,
            self.register,
            self.epoch,
            self.aux
        )
    }
}

impl std::fmt::Display for FlightEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[{:>12.6}s] {:<12}",
            self.at_micros as f64 / 1e6,
            self.kind.label()
        )?;
        if let Some((pid, c)) = self.op {
            write!(f, " op={}", fmt_op(pid, c))?;
        }
        write!(f, " r{}", self.register)?;
        if self.epoch != 0 {
            write!(f, " e{}", self.epoch)?;
        }
        match self.kind {
            EventKind::RoundSent | EventKind::AckSent => {
                let (peer, nonce, _) = unpack_wire_aux(self.aux);
                write!(f, " to=p{peer} nonce={nonce}")
            }
            EventKind::ReqRecv => {
                let (peer, nonce, _) = unpack_wire_aux(self.aux);
                write!(f, " from=p{peer} nonce={nonce}")
            }
            EventKind::AckRecv => {
                let (peer, nonce, durable) = unpack_wire_aux(self.aux);
                write!(
                    f,
                    " from=p{peer} nonce={nonce} {}",
                    if durable { "durable" } else { "volatile" }
                )
            }
            EventKind::ClientSend | EventKind::ClientRecv => write!(f, " node=p{}", self.aux),
            EventKind::OpComplete => write!(f, " rounds={}", self.aux),
            EventKind::StoreQueued | EventKind::StoreDurable => write!(f, " token={}", self.aux),
            EventKind::GroupCommit => write!(f, " size={}", self.aux),
            EventKind::EpochRefresh => write!(f, " shards={}", self.aux),
            EventKind::BarrierWait => write!(f, " polls={}", self.aux),
            EventKind::LeaseRevoke => write!(f, " dropped={}", self.aux),
            _ if self.aux != 0 => write!(f, " aux={}", self.aux),
            _ => Ok(()),
        }
    }
}

/// Payload words per slot (timestamp, packed kind/register/epoch, op
/// pid, op counter, aux).
const SLOT_WORDS: usize = 5;
/// Sentinel for "no operation id".
const NO_OP: u64 = u64::MAX;

struct Slot {
    seq: AtomicU64,
    words: [AtomicU64; SLOT_WORDS],
}

impl Slot {
    fn empty() -> Self {
        Slot {
            seq: AtomicU64::new(0),
            words: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// The bounded lock-free event ring (see the module docs).
pub struct FlightRecorder {
    enabled: bool,
    origin: Instant,
    head: AtomicU64,
    slots: Box<[Slot]>,
    halt: Mutex<Option<String>>,
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("capacity", &self.slots.len())
            .field("recorded", &self.head.load(Ordering::Relaxed))
            .finish()
    }
}

impl Default for FlightRecorder {
    fn default() -> Self {
        FlightRecorder::new(FlightRecorder::DEFAULT_CAPACITY)
    }
}

impl FlightRecorder {
    /// Default ring capacity: enough to hold the full event trail of a
    /// few hundred operations.
    pub const DEFAULT_CAPACITY: usize = 4096;

    /// Memory cost per ring slot in bytes: six `AtomicU64`s (one sequence
    /// word + five payload words). A capacity-`c` ring costs
    /// `c × 48` bytes (capacity rounds up to a power of two), e.g. the
    /// default 4096-slot ring is 192 KiB and a trace-bench 2^18 ring is
    /// 12 MiB.
    pub const SLOT_BYTES: usize = (SLOT_WORDS + 1) * 8;

    /// A recorder holding the last `capacity` events (rounded up to a
    /// power of two, minimum 8). Memory cost is
    /// [`SLOT_BYTES`](FlightRecorder::SLOT_BYTES) per slot.
    pub fn new(capacity: usize) -> Self {
        let cap = capacity.next_power_of_two().max(8);
        FlightRecorder {
            enabled: true,
            origin: Instant::now(),
            head: AtomicU64::new(0),
            slots: (0..cap).map(|_| Slot::empty()).collect(),
            halt: Mutex::new(None),
        }
    }

    /// A recorder that drops every event at the door — the bench
    /// harness's uninstrumented baseline.
    pub fn disabled() -> Self {
        FlightRecorder {
            enabled: false,
            ..FlightRecorder::new(8)
        }
    }

    /// Whether this recorder keeps events.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Ring capacity in events.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Events recorded over the recorder's lifetime (including ones the
    /// ring has since overwritten).
    pub fn total_recorded(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// Events that have fallen off the ring.
    pub fn dropped(&self) -> u64 {
        self.total_recorded()
            .saturating_sub(self.slots.len() as u64)
    }

    /// Records `ev`, stamping it with the current monotonic offset.
    /// Lock-free: one ticket `fetch_add` plus the slot's seqlock stores.
    #[inline]
    pub fn record(&self, ev: FlightEvent) {
        if !self.enabled {
            return;
        }
        let at = self.origin.elapsed().as_micros() as u64;
        let mask = self.slots.len() as u64 - 1;
        let ticket = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(ticket & mask) as usize];
        // Odd sequence: write in progress. The RMW with AcqRel keeps the
        // payload stores below from being hoisted above it.
        slot.seq.swap(2 * ticket + 1, Ordering::AcqRel);
        let packed = ev.kind as u64 | (ev.register as u64) << 16 | (ev.epoch as u64) << 32;
        let (op_pid, op_ctr) = match ev.op {
            Some((pid, c)) => (pid as u64, c),
            None => (NO_OP, 0),
        };
        slot.words[0].store(at, Ordering::Relaxed);
        slot.words[1].store(packed, Ordering::Relaxed);
        slot.words[2].store(op_pid, Ordering::Relaxed);
        slot.words[3].store(op_ctr, Ordering::Relaxed);
        slot.words[4].store(ev.aux, Ordering::Relaxed);
        // Even sequence encoding the ticket: published.
        slot.seq.store(2 * ticket + 2, Ordering::Release);
    }

    /// Marks the node halted: stores the human-readable reason and
    /// records a [`EventKind::Halt`] event.
    pub fn halt(&self, reason: &str) {
        *self.halt.lock().expect("halt reason") = Some(reason.to_string());
        self.record(FlightEvent::new(EventKind::Halt));
    }

    /// The halt reason, if [`halt`](FlightRecorder::halt) was called.
    pub fn halt_reason(&self) -> Option<String> {
        self.halt.lock().expect("halt reason").clone()
    }

    /// Copies out the ring's events, oldest first. Entries a concurrent
    /// writer is mid-way through (or has lapped) fail their sequence
    /// check and are skipped — a dump never contains a torn event.
    pub fn dump(&self) -> Vec<FlightEvent> {
        let head = self.head.load(Ordering::Acquire);
        let cap = self.slots.len() as u64;
        let mask = cap - 1;
        let mut out = Vec::with_capacity(head.min(cap) as usize);
        for ticket in head.saturating_sub(cap)..head {
            let slot = &self.slots[(ticket & mask) as usize];
            let expect = 2 * ticket + 2;
            if slot.seq.load(Ordering::Acquire) != expect {
                continue; // in progress, or overwritten by a later lap
            }
            let words: [u64; SLOT_WORDS] =
                std::array::from_fn(|i| slot.words[i].load(Ordering::Relaxed));
            fence(Ordering::Acquire);
            if slot.seq.load(Ordering::Relaxed) != expect {
                continue; // overwritten while we copied: discard
            }
            let Some(kind) = EventKind::from_u8((words[1] & 0xff) as u8) else {
                continue;
            };
            out.push(FlightEvent {
                at_micros: words[0],
                kind,
                register: (words[1] >> 16) as u16,
                epoch: (words[1] >> 32) as u32,
                op: if words[2] == NO_OP {
                    None
                } else {
                    Some((words[2] as u16, words[3]))
                },
                aux: words[4],
                seq: ticket,
            });
        }
        out
    }

    /// The last `n` events rendered as a human-readable timeline,
    /// prefixed with the halt reason (if any) and the drop count.
    /// Ordering is deterministic: see [`sort_events`].
    pub fn dump_timeline(&self, n: usize) -> String {
        let mut events = self.dump();
        sort_events(&mut events);
        let shown = &events[events.len().saturating_sub(n)..];
        let mut out = String::new();
        if let Some(reason) = self.halt_reason() {
            out.push_str(&format!("  halted: {reason}\n"));
        }
        let dropped = self.dropped();
        if dropped > 0 {
            out.push_str(&format!("  ({dropped} earlier events overwritten)\n"));
        }
        for ev in shown {
            out.push_str(&format!("  {ev}\n"));
        }
        out
    }

    /// The last `n` events as a JSON array, in [`sort_events`] order.
    pub fn dump_json(&self, n: usize) -> String {
        let mut events = self.dump();
        sort_events(&mut events);
        let shown = &events[events.len().saturating_sub(n)..];
        let body: Vec<String> = shown.iter().map(FlightEvent::to_json).collect();
        format!("[{}]", body.join(","))
    }
}

/// Sorts events into the canonical dump order: timestamp first, then —
/// for equal-microsecond timestamps — operation id (node ops before
/// client-family ops of the same numeric pid, `None` last), then the ring
/// insertion sequence. Total and deterministic, so repeated dumps of a
/// quiescent ring (and the stitched traces built from them) render
/// identically even when several events share a microsecond.
pub fn sort_events(events: &mut [FlightEvent]) {
    events.sort_by_key(|e| {
        (
            e.at_micros,
            e.op.map_or((u16::MAX, u64::MAX), |(pid, c)| (pid, c)),
            e.seq,
        )
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_round_trip_through_the_ring() {
        let rec = FlightRecorder::new(64);
        rec.record(
            FlightEvent::new(EventKind::OpStart)
                .with_op(3, 41)
                .with_register(7)
                .with_epoch(2),
        );
        rec.record(FlightEvent::new(EventKind::GroupCommit).with_aux(5));
        let dump = rec.dump();
        assert_eq!(dump.len(), 2);
        assert_eq!(dump[0].kind, EventKind::OpStart);
        assert_eq!(dump[0].op, Some((3, 41)));
        assert_eq!(dump[0].register, 7);
        assert_eq!(dump[0].epoch, 2);
        assert_eq!(dump[1].kind, EventKind::GroupCommit);
        assert_eq!(dump[1].aux, 5);
        assert!(dump[1].at_micros >= dump[0].at_micros);
        let text = rec.dump_timeline(10);
        assert!(text.contains("OpStart") && text.contains("op=p3#41"));
        assert!(text.contains("size=5"));
        let json = rec.dump_json(10);
        assert!(json.contains("\"GroupCommit\"") && json.contains("\"p3#41\""));
    }

    #[test]
    fn wraparound_keeps_the_newest_events_in_order() {
        let rec = FlightRecorder::new(8); // capacity 8
        for i in 0..20u64 {
            rec.record(FlightEvent::new(EventKind::OpStart).with_op(0, i));
        }
        let dump = rec.dump();
        assert_eq!(dump.len(), 8);
        let counters: Vec<u64> = dump.iter().filter_map(|e| e.op.map(|(_, c)| c)).collect();
        assert_eq!(counters, (12..20).collect::<Vec<_>>());
        assert_eq!(rec.dropped(), 12);
        assert_eq!(rec.total_recorded(), 20);
    }

    #[test]
    fn halt_is_recorded_and_rendered() {
        let rec = FlightRecorder::new(16);
        rec.record(FlightEvent::new(EventKind::StoreQueued).with_aux(9));
        rec.halt("disk on fire");
        assert_eq!(rec.halt_reason().as_deref(), Some("disk on fire"));
        let dump = rec.dump();
        assert_eq!(dump.last().map(|e| e.kind), Some(EventKind::Halt));
        let text = rec.dump_timeline(16);
        assert!(text.contains("halted: disk on fire"));
        assert!(text.contains("Halt"));
    }

    #[test]
    fn sort_is_stable_for_equal_microsecond_timestamps() {
        let mk = |op: Option<(u16, u64)>, seq: u64| FlightEvent {
            at_micros: 1000,
            op,
            seq,
            ..FlightEvent::new(EventKind::OpStart)
        };
        let mut events = vec![
            mk(None, 9),
            mk(Some((CLIENT_OP_BIT, 3)), 2),
            mk(Some((1, 5)), 7),
            mk(Some((1, 4)), 8),
            mk(Some((1, 4)), 1),
        ];
        sort_events(&mut events);
        let keys: Vec<_> = events.iter().map(|e| (e.op, e.seq)).collect();
        assert_eq!(
            keys,
            vec![
                (Some((1, 4)), 1), // op ascending, then seq
                (Some((1, 4)), 8),
                (Some((1, 5)), 7),
                (Some((CLIENT_OP_BIT, 3)), 2), // client ops after node ops
                (None, 9),                     // no-op events last
            ]
        );
        // Sorting again is a no-op: the order is canonical.
        let before = events.clone();
        sort_events(&mut events);
        assert_eq!(events, before);
    }

    #[test]
    fn wire_aux_packing_round_trips() {
        let aux = pack_wire_aux(513, 0xABCD_1234, true);
        assert_eq!(unpack_wire_aux(aux), (513, 0xABCD_1234, true));
        let aux = pack_wire_aux(0, u64::MAX, false);
        // Nonces keep their low 47 bits — enough to match rounds, which
        // only ever need uniqueness within a ring's retention window.
        assert_eq!(unpack_wire_aux(aux), (0, u64::MAX >> 17, false));
    }

    #[test]
    fn client_ops_render_with_family_prefix() {
        let ev = FlightEvent::new(EventKind::ClientSend)
            .with_op(CLIENT_OP_BIT | 4, 17)
            .with_aux(2);
        assert!(format!("{ev}").contains("op=c4#17"));
        assert!(format!("{ev}").contains("node=p2"));
        assert!(ev.to_json().contains("\"c4#17\""));
    }

    #[test]
    fn disabled_recorder_drops_everything() {
        let rec = FlightRecorder::disabled();
        rec.record(FlightEvent::new(EventKind::OpStart));
        assert!(rec.dump().is_empty());
        assert!(!rec.is_enabled());
    }
}
