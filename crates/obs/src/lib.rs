//! # rmem-obs — observability for the rmem stack
//!
//! A dependency-free (std-only) observability layer with two lock-free
//! primitives, threaded through every runtime crate:
//!
//! * the **metrics registry** ([`Registry`]) — atomic [`Counter`]s,
//!   [`Gauge`]s and power-of-two log-bucketed [`Histogram`]s, resolved
//!   by name once at setup and updated with relaxed atomics on the hot
//!   path; snapshots ([`MetricsSnapshot`]) are mergeable and serialize
//!   to JSON;
//! * the **flight recorder** ([`FlightRecorder`]) — a bounded lock-free
//!   ring of structured [`FlightEvent`]s (`OpStart`, `RoundSent`,
//!   `AckRecv`, `GroupCommit`, `Halt`, …) with monotonic timestamps,
//!   dumpable as human-readable timelines or JSON when something goes
//!   wrong.
//!
//! An [`ObsHandle`] bundles one of each — the unit of instrumentation a
//! node or client carries. [`ObsHandle::disabled`] is the uninstrumented
//! baseline the bench harness compares against to enforce the ≤3%
//! overhead invariant.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod metrics;
mod recorder;
pub mod trace;

pub use metrics::{
    bucket_of, bucket_upper_bound, Counter, Gauge, Histogram, HistogramSnapshot, MetricsSnapshot,
    Registry, BUCKETS,
};
pub use recorder::{
    pack_wire_aux, sort_events, unpack_wire_aux, EventKind, FlightEvent, FlightRecorder,
    CLIENT_OP_BIT,
};

use std::sync::Arc;

/// One component's observability: a metrics registry plus a flight
/// recorder. Cheap to clone (both sides are `Arc`-backed); clones share
/// the same metrics and ring.
#[derive(Debug, Clone, Default)]
pub struct ObsHandle {
    /// The metrics registry.
    pub metrics: Registry,
    /// The flight recorder.
    pub flight: Arc<FlightRecorder>,
}

impl ObsHandle {
    /// A fresh, enabled handle with the default ring capacity.
    pub fn new() -> Self {
        ObsHandle {
            metrics: Registry::new(),
            flight: Arc::new(FlightRecorder::default()),
        }
    }

    /// A fresh handle with an explicit ring capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        ObsHandle {
            metrics: Registry::new(),
            flight: Arc::new(FlightRecorder::new(capacity)),
        }
    }

    /// The uninstrumented baseline: the registry reports disabled (so
    /// latency timing is skipped) and the recorder drops every event.
    pub fn disabled() -> Self {
        ObsHandle {
            metrics: Registry::disabled(),
            flight: Arc::new(FlightRecorder::disabled()),
        }
    }

    /// Whether this handle observes anything expensive.
    pub fn is_enabled(&self) -> bool {
        self.metrics.is_enabled()
    }
}
