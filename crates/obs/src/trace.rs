//! Cross-node **causal trace stitching**: merges the per-node flight
//! recorder rings plus the client ring into one global timeline per
//! operation, aligning the rings' independent clocks along the way.
//!
//! ## Clock alignment
//!
//! Every [`FlightRecorder`](crate::FlightRecorder) timestamps events
//! against its own creation instant, so two rings disagree by an unknown
//! constant offset. Matched send/receive event pairs give us NTP-style
//! round-trip quadruples `(t1, t2, t3, t4)` — request leaves A, arrives
//! at B, reply leaves B, arrives at A — from which the offset of B's
//! clock relative to A's is estimated as the round-trip midpoint
//! `θ = ((t2 − t1) + (t3 − t4)) / 2`, with error bounded by half the
//! round trip: `|θ − θ_true| ≤ rtt / 2` where
//! `rtt = (t4 − t1) − (t3 − t2)`. The best (smallest-bound) sample per
//! ring pair seeds a spanning tree rooted at the client ring; offsets
//! and error bounds accumulate along tree paths.
//!
//! Wire quadruples come from `RoundSent → ReqRecv → AckSent → AckRecv`
//! matched by peer and round nonce; client/coordinator quadruples from
//! `ClientSend → OpStart → OpComplete → ClientRecv` matched by trace op.
//!
//! ## The causal-ordering invariant
//!
//! After correction, **no effect may precede its cause by more than the
//! accumulated error bound** of the two rings involved. Any stitch that
//! violates this is rejected and counted — the trace bench gates on zero
//! violations, so a bug in event pairing (or a broken clock model) fails
//! loudly instead of producing quietly nonsensical attributions.
//!
//! ## Attribution
//!
//! Each completed op decomposes into six named segments (see
//! [`SEGMENTS`]) that telescope: cross-clock offsets cancel within every
//! bracket, so the segment sum equals the client-observed wall clock
//! exactly, up to clamping of negative sub-microsecond artifacts. A large
//! attribution error therefore *means* a mis-stitched op, which is why
//! the bench asserts the per-op sum stays within 5% of wall clock.

use std::collections::HashMap;

use crate::recorder::{unpack_wire_aux, EventKind, FlightEvent, CLIENT_OP_BIT};
use crate::Registry;

/// The named attribution segments, in timeline order. All six are
/// reported in microseconds and sum (telescopically) to the op's
/// client-observed wall clock:
///
/// * `client_queue` — time outside the coordinator's `OpStart..OpComplete`
///   bracket: the client-side invoke queue plus the reply channel;
/// * `coord_compute` — coordinator event-loop time not covered by an
///   in-flight quorum round;
/// * `wire_out` — request propagation to the round's critical replica;
/// * `replica_compute` — critical-replica processing minus store waits;
/// * `store_wait` — time the critical replica's ack waited on the
///   durability pipeline (store queue + group-commit fsync);
/// * `wire_back` — the critical ack's trip home.
///
/// The *critical replica* of a round is the sender of the ack that
/// closed the round (the last ack the coordinator consumed before moving
/// to the next round or completing) — the replica actually on the op's
/// critical path.
pub const SEGMENTS: [&str; 6] = [
    "client_queue",
    "coord_compute",
    "wire_out",
    "replica_compute",
    "store_wait",
    "wire_back",
];

/// Slack added to every cross-ring causality comparison on top of the
/// accumulated offset error bounds, absorbing microsecond truncation of
/// the raw timestamps.
const QUANTIZATION_SLACK_US: f64 = 2.0;

/// One recorder's dump, labeled with its identity.
#[derive(Debug, Clone)]
pub struct RingDump {
    /// Human-readable ring label (`p3`, `c1`).
    pub label: String,
    /// The ring's identity: a node [`ProcessId`] value, or a
    /// client-family id with [`CLIENT_OP_BIT`] set.
    pub pid: u16,
    /// The ring's events (any order; the stitcher indexes them itself).
    pub events: Vec<FlightEvent>,
}

impl RingDump {
    /// A node ring.
    pub fn node(pid: u16, events: Vec<FlightEvent>) -> Self {
        RingDump {
            label: format!("p{pid}"),
            pid,
            events,
        }
    }

    /// A client-family ring (`family` may or may not carry the client
    /// bit; it is forced on).
    pub fn client(family: u16, events: Vec<FlightEvent>) -> Self {
        RingDump {
            label: format!("c{}", family & !CLIENT_OP_BIT),
            pid: family | CLIENT_OP_BIT,
            events,
        }
    }

    fn is_client(&self) -> bool {
        self.pid & CLIENT_OP_BIT != 0
    }
}

/// A ring's place in the aligned clock model.
#[derive(Debug, Clone)]
pub struct RingOffset {
    /// The ring's label.
    pub label: String,
    /// Microseconds to add to the ring's local timestamps to express
    /// them in the reference ring's frame.
    pub offset_us: f64,
    /// Accumulated error bound of that offset (sum of `rtt/2` along the
    /// spanning-tree path to the reference).
    pub err_us: f64,
    /// Whether the ring was reachable from the reference at all. An
    /// unreachable ring keeps offset 0 and its ops count as unstitched.
    pub reachable: bool,
}

/// One event placed on an op's stitched timeline.
#[derive(Debug, Clone)]
pub struct TimelineEntry {
    /// Which ring recorded it.
    pub ring: String,
    /// The event's corrected time in the reference frame.
    pub corrected_us: f64,
    /// The raw event.
    pub event: FlightEvent,
}

/// A completed op whose events stitched into a full causal timeline.
#[derive(Debug, Clone)]
pub struct StitchedOp {
    /// The trace id `(client-family, op counter)`.
    pub op: (u16, u64),
    /// The coordinator node contacted.
    pub node: u16,
    /// The register operated on.
    pub register: u16,
    /// Quorum rounds observed.
    pub rounds: usize,
    /// Client-observed wall clock, microseconds.
    pub wall_us: f64,
    /// Per-segment attribution, microseconds, indexed like [`SEGMENTS`].
    pub segments: [f64; SEGMENTS.len()],
    /// Effect-before-cause violations detected in this op's stitch
    /// (beyond the accumulated error bounds).
    pub violations: u64,
    /// The merged cross-ring timeline, corrected and ordered.
    pub timeline: Vec<TimelineEntry>,
}

impl StitchedOp {
    /// Sum of the six segments, microseconds.
    pub fn attributed_us(&self) -> f64 {
        self.segments.iter().sum()
    }

    /// Relative attribution error: `|Σ segments − wall| / wall`.
    pub fn attribution_error(&self) -> f64 {
        if self.wall_us <= 0.0 {
            return 0.0;
        }
        (self.attributed_us() - self.wall_us).abs() / self.wall_us
    }

    fn render(&self) -> String {
        let mut out = format!(
            "op c{}#{} via p{} r{}: wall {:.0}us over {} round(s)\n",
            self.op.0 & !CLIENT_OP_BIT,
            self.op.1,
            self.node,
            self.register,
            self.wall_us,
            self.rounds,
        );
        for (name, us) in SEGMENTS.iter().zip(self.segments) {
            out.push_str(&format!("    {name:<16} {us:>10.1}us\n"));
        }
        out.push_str("  timeline:\n");
        let t0 = self.timeline.first().map(|e| e.corrected_us).unwrap_or(0.0);
        for entry in &self.timeline {
            out.push_str(&format!(
                "    [+{:>9.1}us] {:<3} {}\n",
                entry.corrected_us - t0,
                entry.ring,
                entry.event
            ));
        }
        out
    }

    fn to_json(&self) -> String {
        let segs: Vec<String> = SEGMENTS
            .iter()
            .zip(self.segments)
            .map(|(name, us)| format!("\"{name}\":{us:.1}"))
            .collect();
        let timeline: Vec<String> = self
            .timeline
            .iter()
            .map(|e| {
                format!(
                    "{{\"ring\":\"{}\",\"t_us\":{:.1},\"event\":{}}}",
                    e.ring,
                    e.corrected_us,
                    e.event.to_json()
                )
            })
            .collect();
        format!(
            "{{\"op\":\"c{}#{}\",\"node\":{},\"reg\":{},\"rounds\":{},\"wall_us\":{:.1},\"segments\":{{{}}},\"timeline\":[{}]}}",
            self.op.0 & !CLIENT_OP_BIT,
            self.op.1,
            self.node,
            self.register,
            self.rounds,
            self.wall_us,
            segs.join(","),
            timeline.join(",")
        )
    }
}

/// The result of stitching a set of ring dumps.
#[derive(Debug, Clone, Default)]
pub struct TraceReport {
    /// Per-ring clock model.
    pub offsets: Vec<RingOffset>,
    /// Operations the client saw complete (a `ClientSend`/`ClientRecv`
    /// pair in some client ring).
    pub completed: usize,
    /// Completed ops that stitched into a full causal timeline.
    pub stitched: Vec<StitchedOp>,
    /// Completed ops that could not be stitched (events overwritten by
    /// the ring, or their ring unreachable in the clock graph).
    pub incomplete: usize,
    /// Total effect-before-cause violations across all stitched ops.
    pub violations: u64,
}

impl TraceReport {
    /// Fraction of completed ops that stitched fully.
    pub fn coverage(&self) -> f64 {
        if self.completed == 0 {
            return 1.0;
        }
        self.stitched.len() as f64 / self.completed as f64
    }

    /// The worst per-op attribution error among stitched ops.
    pub fn max_attribution_error(&self) -> f64 {
        self.stitched
            .iter()
            .map(StitchedOp::attribution_error)
            .fold(0.0, f64::max)
    }

    /// The largest accumulated clock error bound of any reachable ring.
    pub fn max_clock_err_us(&self) -> f64 {
        self.offsets
            .iter()
            .filter(|o| o.reachable)
            .map(|o| o.err_us)
            .fold(0.0, f64::max)
    }

    /// Records every stitched op's segments into `trace.<segment>_us`
    /// histograms on `registry`.
    pub fn record_segments(&self, registry: &Registry) {
        let hists: Vec<_> = SEGMENTS
            .iter()
            .map(|name| registry.histogram(&format!("trace.{name}_us")))
            .collect();
        for op in &self.stitched {
            for (hist, us) in hists.iter().zip(op.segments) {
                hist.record(us.round() as u64);
            }
        }
    }

    /// The `n` slowest stitched ops by wall clock, slowest first.
    pub fn slowest(&self, n: usize) -> Vec<&StitchedOp> {
        let mut ops: Vec<&StitchedOp> = self.stitched.iter().collect();
        ops.sort_by(|a, b| b.wall_us.total_cmp(&a.wall_us).then(a.op.cmp(&b.op)));
        ops.truncate(n);
        ops
    }

    /// Human-readable clock model + coverage header.
    pub fn render_summary(&self) -> String {
        let mut out = format!(
            "stitched {}/{} completed ops ({:.2}% coverage), {} incomplete, {} causality violation(s)\n",
            self.stitched.len(),
            self.completed,
            self.coverage() * 100.0,
            self.incomplete,
            self.violations,
        );
        for o in &self.offsets {
            if o.reachable {
                out.push_str(&format!(
                    "  ring {:<4} offset {:>+9.1}us (±{:.1}us)\n",
                    o.label, o.offset_us, o.err_us
                ));
            } else {
                out.push_str(&format!("  ring {:<4} unreachable\n", o.label));
            }
        }
        out
    }

    /// The `n` slowest ops' stitched timelines, rendered for humans.
    pub fn render_exemplars(&self, n: usize) -> String {
        let mut out = String::new();
        for op in self.slowest(n) {
            out.push_str(&op.render());
        }
        out
    }

    /// The `n` slowest ops as a JSON array (the CI artifact payload).
    pub fn exemplars_json(&self, n: usize) -> String {
        let body: Vec<String> = self.slowest(n).iter().map(|op| op.to_json()).collect();
        format!("[{}]", body.join(","))
    }
}

/// An offset sample between two rings, from one RTT quadruple.
struct Sample {
    a: usize,
    b: usize,
    /// Estimated offset of ring `b`'s clock relative to ring `a`'s:
    /// `t_in_a_frame ≈ t_b_local − theta`.
    theta: f64,
    err: f64,
}

fn quadruple(t1: u64, t2: u64, t3: u64, t4: u64) -> Option<(f64, f64)> {
    if t4 < t1 || t3 < t2 {
        return None;
    }
    let rtt = (t4 - t1) as f64 - (t3 - t2) as f64;
    if rtt < 0.0 {
        return None;
    }
    let theta = ((t2 as f64 - t1 as f64) + (t3 as f64 - t4 as f64)) / 2.0;
    Some((theta, rtt / 2.0))
}

/// Per-op accumulator gathered from every ring in one pass.
#[derive(Default)]
struct OpAcc {
    client_ring: Option<usize>,
    send: Option<(u64, u16)>,
    recv: Option<(u64, u16)>,
    coord_ring: Option<usize>,
    start: Option<u64>,
    complete: Option<u64>,
    register: u16,
    /// Coordinator `RoundSent`s: `(t, peer, nonce)`.
    sends: Vec<(u64, u16, u64)>,
    /// Coordinator `AckRecv`s: `(t, peer, nonce)`.
    acks: Vec<(u64, u16, u64)>,
    /// Replica `ReqRecv`s: `(ring, t, nonce)`.
    req_recvs: Vec<(usize, u64, u64)>,
    /// Replica `AckSent`s: `(ring, t, nonce)`.
    ack_sents: Vec<(usize, u64, u64)>,
    /// `StoreQueued`/`StoreDurable`: `(ring, t, durable?, token)`.
    stores: Vec<(usize, u64, bool, u64)>,
    /// Everything, for the rendered timeline: `(ring, event)`.
    all: Vec<(usize, FlightEvent)>,
}

struct CausalityCheck {
    violations: u64,
    slack: Vec<f64>,
    corr: Vec<f64>,
}

impl CausalityCheck {
    /// Asserts `cause` (on ring `ra`, local time `ta`) precedes `effect`
    /// (ring `rb`, time `tb`) up to the rings' accumulated error bounds.
    fn check(&mut self, ra: usize, ta: u64, rb: usize, tb: u64) {
        let cause = ta as f64 + self.corr[ra];
        let effect = tb as f64 + self.corr[rb];
        let slack = if ra == rb {
            0.0
        } else {
            self.slack[ra] + self.slack[rb] + QUANTIZATION_SLACK_US
        };
        if effect + slack < cause {
            self.violations += 1;
        }
    }
}

/// Stitches labeled ring dumps into per-op causal timelines. See the
/// module docs for the clock model and the attribution scheme.
pub fn stitch(rings: &[RingDump]) -> TraceReport {
    let ring_of: HashMap<u16, usize> = rings.iter().enumerate().map(|(i, r)| (r.pid, i)).collect();

    // ---- index wire events per ring for clock samples --------------
    // Keyed by (peer pid, nonce) → earliest local time. Earliest wins:
    // retransmits reuse the nonce, and the earliest matched pair is the
    // tightest bound.
    let mut round_sent: Vec<HashMap<(u16, u64), u64>> = vec![HashMap::new(); rings.len()];
    let mut ack_recv: Vec<HashMap<(u16, u64), u64>> = vec![HashMap::new(); rings.len()];
    let mut req_recv: Vec<HashMap<(u16, u64), u64>> = vec![HashMap::new(); rings.len()];
    let mut ack_sent: Vec<HashMap<(u16, u64), u64>> = vec![HashMap::new(); rings.len()];
    let mut ops: HashMap<(u16, u64), OpAcc> = HashMap::new();

    for (ri, ring) in rings.iter().enumerate() {
        for ev in &ring.events {
            let table = match ev.kind {
                EventKind::RoundSent => Some(&mut round_sent),
                EventKind::AckRecv => Some(&mut ack_recv),
                EventKind::ReqRecv => Some(&mut req_recv),
                EventKind::AckSent => Some(&mut ack_sent),
                _ => None,
            };
            if let Some(table) = table {
                let (peer, nonce, _) = unpack_wire_aux(ev.aux);
                let slot = table[ri].entry((peer, nonce)).or_insert(u64::MAX);
                *slot = (*slot).min(ev.at_micros);
            }

            // Traced ops accumulate across rings.
            let Some(op) = ev.op else { continue };
            if op.0 & CLIENT_OP_BIT == 0 {
                continue;
            }
            let acc = ops.entry(op).or_default();
            acc.all.push((ri, *ev));
            match ev.kind {
                EventKind::ClientSend => {
                    acc.client_ring = Some(ri);
                    acc.send = Some((ev.at_micros, ev.aux as u16));
                }
                EventKind::ClientRecv => {
                    acc.recv = Some((ev.at_micros, ev.aux as u16));
                }
                EventKind::OpStart => {
                    acc.coord_ring = Some(ri);
                    acc.start = Some(ev.at_micros);
                    acc.register = ev.register;
                }
                EventKind::OpComplete => {
                    acc.complete = Some(ev.at_micros);
                }
                EventKind::RoundSent => {
                    let (peer, nonce, _) = unpack_wire_aux(ev.aux);
                    acc.sends.push((ev.at_micros, peer, nonce));
                }
                EventKind::AckRecv => {
                    let (peer, nonce, _) = unpack_wire_aux(ev.aux);
                    acc.acks.push((ev.at_micros, peer, nonce));
                }
                EventKind::ReqRecv => {
                    let (_, nonce, _) = unpack_wire_aux(ev.aux);
                    acc.req_recvs.push((ri, ev.at_micros, nonce));
                }
                EventKind::AckSent => {
                    let (_, nonce, _) = unpack_wire_aux(ev.aux);
                    acc.ack_sents.push((ri, ev.at_micros, nonce));
                }
                EventKind::StoreQueued => {
                    acc.stores.push((ri, ev.at_micros, false, ev.aux));
                }
                EventKind::StoreDurable => {
                    acc.stores.push((ri, ev.at_micros, true, ev.aux));
                }
                _ => {}
            }
        }
    }

    // ---- clock samples ---------------------------------------------
    let mut samples: Vec<Sample> = Vec::new();
    for (a, sent) in round_sent.iter().enumerate() {
        for (&(peer, nonce), &t1) in sent {
            let Some(&b) = ring_of.get(&peer) else {
                continue;
            };
            if a == b {
                continue;
            }
            let (Some(&t2), Some(&t3), Some(&t4)) = (
                req_recv[b].get(&(rings[a].pid, nonce)),
                ack_sent[b].get(&(rings[a].pid, nonce)),
                ack_recv[a].get(&(peer, nonce)),
            ) else {
                continue;
            };
            if let Some((theta, err)) = quadruple(t1, t2, t3, t4) {
                samples.push(Sample { a, b, theta, err });
            }
        }
    }
    for acc in ops.values() {
        let (Some(ca), Some((t1, _)), Some((t4, _)), Some(cb), Some(t2), Some(t3)) = (
            acc.client_ring,
            acc.send,
            acc.recv,
            acc.coord_ring,
            acc.start,
            acc.complete,
        ) else {
            continue;
        };
        if ca == cb {
            continue;
        }
        if let Some((theta, err)) = quadruple(t1, t2, t3, t4) {
            samples.push(Sample {
                a: ca,
                b: cb,
                theta,
                err,
            });
        }
    }

    // Best sample per unordered ring pair, then a BFS spanning tree from
    // the reference ring (the first client ring, else ring 0). A BTreeMap
    // keeps tie-breaking (equal error bounds) deterministic.
    let mut best: std::collections::BTreeMap<(usize, usize), (f64, f64)> =
        std::collections::BTreeMap::new();
    for s in &samples {
        let (key, theta) = if s.a < s.b {
            ((s.a, s.b), s.theta)
        } else {
            ((s.b, s.a), -s.theta)
        };
        let entry = best.entry(key).or_insert((theta, f64::INFINITY));
        if s.err < entry.1 {
            *entry = (theta, s.err);
        }
    }
    let reference = rings.iter().position(RingDump::is_client).unwrap_or(0);
    let mut corr = vec![0.0f64; rings.len()];
    let mut slack = vec![0.0f64; rings.len()];
    let mut reachable = vec![false; rings.len()];
    if !rings.is_empty() {
        reachable[reference] = true;
        let mut queue = std::collections::VecDeque::from([reference]);
        while let Some(cur) = queue.pop_front() {
            for (&(a, b), &(theta, err)) in &best {
                let (next, signed_theta) = if a == cur {
                    (b, theta)
                } else if b == cur {
                    (a, -theta)
                } else {
                    continue;
                };
                if reachable[next] {
                    continue;
                }
                // theta estimates next's clock minus cur's: converting a
                // `next`-local time into the reference frame subtracts it
                // on top of cur's own correction.
                corr[next] = corr[cur] - signed_theta;
                slack[next] = slack[cur] + err;
                reachable[next] = true;
                queue.push_back(next);
            }
        }
    }

    let offsets = rings
        .iter()
        .enumerate()
        .map(|(i, r)| RingOffset {
            label: r.label.clone(),
            offset_us: corr[i],
            err_us: slack[i],
            reachable: reachable[i],
        })
        .collect();

    // ---- per-op stitching ------------------------------------------
    let mut report = TraceReport {
        offsets,
        ..TraceReport::default()
    };
    let mut op_keys: Vec<(u16, u64)> = ops
        .iter()
        .filter(|(_, acc)| acc.send.is_some() && acc.recv.is_some())
        .map(|(k, _)| *k)
        .collect();
    op_keys.sort_unstable();
    report.completed = op_keys.len();

    for key in op_keys {
        let acc = &ops[&key];
        match stitch_op(key, acc, rings, &corr, &slack, &reachable) {
            Some(op) => {
                report.violations += op.violations;
                report.stitched.push(op);
            }
            None => report.incomplete += 1,
        }
    }
    report
}

/// Stitches one completed op, or `None` when its timeline has holes.
fn stitch_op(
    key: (u16, u64),
    acc: &OpAcc,
    rings: &[RingDump],
    corr: &[f64],
    slack: &[f64],
    reachable: &[bool],
) -> Option<StitchedOp> {
    let client_ring = acc.client_ring?;
    let coord_ring = acc.coord_ring?;
    let (t_send, node) = acc.send?;
    let (t_recv, _) = acc.recv?;
    let t_start = acc.start?;
    let t_complete = acc.complete?;
    if !reachable[client_ring] || !reachable[coord_ring] {
        return None;
    }

    let mut check = CausalityCheck {
        violations: 0,
        slack: slack.to_vec(),
        corr: corr.to_vec(),
    };
    check.check(client_ring, t_send, coord_ring, t_start);
    check.check(coord_ring, t_start, coord_ring, t_complete);
    check.check(coord_ring, t_complete, client_ring, t_recv);

    // Group the coordinator's rounds by nonce, ordered by first send.
    let mut rounds: Vec<(u64, u64)> = Vec::new(); // (first_send, nonce)
    let mut first_send_to: HashMap<(u64, u16), u64> = HashMap::new();
    for &(t, peer, nonce) in &acc.sends {
        match rounds.iter_mut().find(|(_, n)| *n == nonce) {
            Some(r) => r.0 = r.0.min(t),
            None => rounds.push((t, nonce)),
        }
        let slot = first_send_to.entry((nonce, peer)).or_insert(u64::MAX);
        *slot = (*slot).min(t);
    }
    rounds.sort_unstable();
    if rounds.is_empty() {
        return None;
    }

    let wall_us = t_recv.saturating_sub(t_send) as f64;
    let coord_busy = t_complete.saturating_sub(t_start) as f64;
    let mut segments = [0.0f64; SEGMENTS.len()];
    segments[0] = (wall_us - coord_busy).max(0.0); // client_queue
    let mut rounds_local = 0.0f64;

    for (i, &(first_send, nonce)) in rounds.iter().enumerate() {
        // The round's phase boundary: the next round's first send, or
        // completion. The last ack at or before it closed the round.
        let boundary = rounds.get(i + 1).map_or(t_complete, |r| r.0);
        let (t_close, critical) = acc
            .acks
            .iter()
            .filter(|&&(t, _, n)| n == nonce && t <= boundary)
            .map(|&(t, peer, _)| (t, peer))
            .max()?;
        let crit_ring = rings.iter().position(|r| r.pid == critical)?;
        if !reachable[crit_ring] {
            return None;
        }
        let t_req = acc
            .req_recvs
            .iter()
            .filter(|&&(r, _, n)| r == crit_ring && n == nonce)
            .map(|&(_, t, _)| t)
            .min()?;
        let t_ack = acc
            .ack_sents
            .iter()
            .filter(|&&(r, t, n)| r == crit_ring && n == nonce && t >= t_req)
            .map(|&(_, t, _)| t)
            .min()?;
        let t_send_crit = first_send_to
            .get(&(nonce, critical))
            .copied()
            .unwrap_or(first_send);

        check.check(coord_ring, t_send_crit, crit_ring, t_req);
        check.check(crit_ring, t_req, crit_ring, t_ack);
        check.check(crit_ring, t_ack, coord_ring, t_close);
        check.check(coord_ring, t_close, coord_ring, t_complete);

        // Store waits on the critical replica inside this round.
        let mut store_us = 0.0f64;
        for &(r, tq, durable, token) in &acc.stores {
            if r != crit_ring || durable || tq < t_req || tq > t_ack {
                continue;
            }
            if let Some(&(_, td, _, _)) = acc
                .stores
                .iter()
                .find(|&&(r2, _, d2, tok2)| r2 == r && d2 && tok2 == token)
            {
                check.check(crit_ring, tq, crit_ring, td);
                store_us += td.saturating_sub(tq).min(t_ack.saturating_sub(tq)) as f64;
            }
        }

        // Telescoping split (module docs): round-trip minus the critical
        // replica's busy time is pure wire time, apportioned out/back by
        // the corrected clocks; clamping keeps the sum exact.
        let round_local = t_close.saturating_sub(first_send) as f64;
        let replica_busy = t_ack.saturating_sub(t_req) as f64;
        let wire_total = (round_local - replica_busy).max(0.0);
        let wire_out_raw =
            (t_req as f64 + corr[crit_ring]) - (t_send_crit as f64 + corr[coord_ring]);
        let wire_out = wire_out_raw.clamp(0.0, wire_total);
        let store_us = store_us.min(replica_busy);
        segments[2] += wire_out; // wire_out
        segments[3] += replica_busy - store_us; // replica_compute
        segments[4] += store_us; // store_wait
        segments[5] += wire_total - wire_out; // wire_back
        rounds_local += round_local;
    }
    segments[1] = (coord_busy - rounds_local).max(0.0); // coord_compute

    // The merged timeline, corrected into the reference frame.
    let mut timeline: Vec<TimelineEntry> = acc
        .all
        .iter()
        .filter(|(r, _)| reachable[*r])
        .map(|&(r, event)| TimelineEntry {
            ring: rings[r].label.clone(),
            corrected_us: event.at_micros as f64 + corr[r],
            event,
        })
        .collect();
    timeline.sort_by(|x, y| {
        x.corrected_us
            .total_cmp(&y.corrected_us)
            .then_with(|| x.ring.cmp(&y.ring))
            .then(x.event.seq.cmp(&y.event.seq))
    });

    Some(StitchedOp {
        op: key,
        node,
        register: acc.register,
        rounds: rounds.len(),
        wall_us,
        segments,
        violations: check.violations,
        timeline,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::pack_wire_aux;

    /// A base far from zero so negative skews keep timestamps in range.
    const BASE: i64 = 10_000_000;

    /// Builds a synthetic two-round write: client c0 → coordinator p0,
    /// one SnReq-style round and one Write-style round, replica p1 on
    /// the critical path both times, with a store wait in round 2.
    /// `skew` is p1's clock offset and `cskew` the client's, to prove
    /// alignment undoes them.
    fn synthetic(skew: i64, cskew: i64) -> Vec<RingDump> {
        let op = (CLIENT_OP_BIT, 7u64);
        let ev = |kind, t: i64, aux: u64| {
            FlightEvent {
                at_micros: (BASE + t) as u64,
                aux,
                ..FlightEvent::new(kind)
            }
            .with_op(op.0, op.1)
        };
        // Client frame: send 100, recv 1000. Coordinator frame = truth.
        let client = vec![
            ev(EventKind::ClientSend, 100 + cskew, 0),
            ev(EventKind::ClientRecv, 1000 + cskew, 0),
        ];
        // Coordinator p0, true clock: start 150, round1 200..400,
        // round2 450..900, complete 950.
        let coord = vec![
            ev(EventKind::OpStart, 150, 0),
            ev(EventKind::RoundSent, 200, pack_wire_aux(1, 11, false)),
            ev(EventKind::AckRecv, 400, pack_wire_aux(1, 11, false)),
            ev(EventKind::RoundSent, 450, pack_wire_aux(1, 12, false)),
            ev(EventKind::AckRecv, 900, pack_wire_aux(1, 12, true)),
            ev(EventKind::OpComplete, 950, 2),
        ];
        // Replica p1, skewed clock: round1 recv 280, ack 320 (wire
        // 80+80); round2 recv 530, ack 820 with a 200us store wait
        // (560..760), wire 80+80.
        let replica = vec![
            ev(EventKind::ReqRecv, 280 + skew, pack_wire_aux(0, 11, false)),
            ev(EventKind::AckSent, 320 + skew, pack_wire_aux(0, 11, false)),
            ev(EventKind::ReqRecv, 530 + skew, pack_wire_aux(0, 12, false)),
            ev(EventKind::StoreQueued, 560 + skew, 42),
            ev(EventKind::StoreDurable, 760 + skew, 42),
            ev(EventKind::AckSent, 820 + skew, pack_wire_aux(0, 12, false)),
        ];
        vec![
            RingDump::client(0, client),
            RingDump::node(0, coord),
            RingDump::node(1, replica),
        ]
    }

    #[test]
    fn stitches_a_synthetic_op_exactly() {
        let report = stitch(&synthetic(0, 0));
        assert_eq!(report.completed, 1);
        assert_eq!(report.stitched.len(), 1);
        assert_eq!(report.incomplete, 0);
        assert_eq!(report.violations, 0);
        let op = &report.stitched[0];
        assert_eq!(op.rounds, 2);
        assert_eq!(op.wall_us, 900.0);
        // client_queue = 900 - 800 = 100; coord = 800 - (200 + 450) = 150;
        // wire totals = 200 - 40 + 450 - 290 = 320 split evenly out/back;
        // replica = 40 + 90; store = 200.
        let [cq, coord, wout, replica, store, wback] = op.segments;
        assert_eq!(cq, 100.0);
        assert_eq!(coord, 150.0);
        assert_eq!(store, 200.0);
        assert_eq!(replica, 130.0);
        assert_eq!(wout + wback, 320.0);
        assert!(op.attribution_error() < 1e-9, "sum telescopes exactly");
        assert_eq!(op.timeline.len(), 14);
    }

    #[test]
    fn clock_skew_is_undone_by_alignment() {
        // Symmetric wire delays mean the midpoint estimate is exact:
        // segment attribution must not change under arbitrary skews.
        for (skew, cskew) in [(100_000i64, -50_000i64), (-3_000, 70_000), (1 << 40, 900)] {
            let report = stitch(&synthetic(skew, cskew));
            assert_eq!(report.stitched.len(), 1, "skew {skew}/{cskew}");
            assert_eq!(report.violations, 0);
            let op = &report.stitched[0];
            assert_eq!(op.segments[0], 100.0);
            assert_eq!(op.segments[4], 200.0);
            assert!(op.attribution_error() < 1e-9);
            // The correction recovers p1's offset relative to the client
            // frame (cskew − skew) within the reported error bound.
            let p1 = report.offsets.iter().find(|o| o.label == "p1").unwrap();
            let truth = (cskew - skew) as f64;
            assert!(
                (p1.offset_us - truth).abs() <= p1.err_us + 1.0,
                "offset {} vs truth {truth} (±{})",
                p1.offset_us,
                p1.err_us
            );
        }
    }

    #[test]
    fn missing_replica_events_mean_incomplete_not_garbage() {
        let mut rings = synthetic(0, 0);
        rings[2].events.clear(); // replica ring overwritten
        let report = stitch(&rings);
        assert_eq!(report.completed, 1);
        assert_eq!(report.stitched.len(), 0);
        assert_eq!(report.incomplete, 1);
        assert!(report.coverage() < 1.0);
    }

    #[test]
    fn mispaired_events_trip_the_causality_gate() {
        // Shift the replica's whole round-1 bracket to *after* the
        // coordinator consumed its ack — impossible causally. Whichever
        // round anchors the clock edge, the other one's cross-ring pairs
        // now invert beyond the error bounds and must be counted.
        let mut rings = synthetic(0, 0);
        for ev in rings[2].events.iter_mut() {
            if unpack_wire_aux(ev.aux).1 == 11 {
                ev.at_micros += 320; // recv 280→600, ack 320→640, close was 400
            }
        }
        let report = stitch(&rings);
        assert!(
            report.violations > 0,
            "effect-before-cause must be counted: {}",
            report.render_summary()
        );
    }

    #[test]
    fn exemplars_render_and_serialize() {
        let report = stitch(&synthetic(500, -500));
        let text = report.render_exemplars(3);
        assert!(text.contains("client_queue"), "{text}");
        assert!(text.contains("timeline:"));
        let json = report.exemplars_json(3);
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert!(json.contains("\"segments\""));
        let summary = report.render_summary();
        assert!(summary.contains("coverage"));
    }

    #[test]
    fn segments_flow_into_registry_histograms() {
        let report = stitch(&synthetic(0, 0));
        let reg = Registry::new();
        report.record_segments(&reg);
        let snap = reg.snapshot();
        assert_eq!(snap.histogram("trace.store_wait_us").count, 1);
        assert!(snap.histogram("trace.client_queue_us").percentile(0.5) >= 100);
    }
}
