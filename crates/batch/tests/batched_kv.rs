//! End-to-end tests of the batching engine over a real-threaded cluster.

use bytes::Bytes;
use rmem_batch::{BatchedKv, FlushPolicy};
use rmem_core::{SharedMemory, Transient};
use rmem_kv::{KvClient, ShardRouter};
use rmem_net::LocalCluster;

fn batched(shards: u16, policy: FlushPolicy) -> (LocalCluster, BatchedKv) {
    let cluster = LocalCluster::channel(3, SharedMemory::factory(Transient::flavor())).unwrap();
    let kv = KvClient::new(cluster.clients(), ShardRouter::new(shards)).unwrap();
    (cluster, BatchedKv::new(kv, policy))
}

#[test]
fn multi_ops_roundtrip_and_amortize() {
    let (mut cluster, store) = batched(4, FlushPolicy::default());
    // 64 keys over 4 shards: heavy coalescing is guaranteed.
    let entries: Vec<(String, Bytes)> = (0..64)
        .map(|i| (format!("k{i}"), Bytes::from(vec![i as u8])))
        .collect();
    store.multi_put(&entries).unwrap();
    let keys: Vec<String> = entries.iter().map(|(k, _)| k.clone()).collect();
    let got = store.multi_get(&keys).unwrap();
    for (i, value) in got.iter().enumerate() {
        assert_eq!(value.as_deref(), Some([i as u8].as_ref()), "key k{i}");
    }
    let stats = store.stats();
    assert_eq!(stats.logical_ops, 128, "64 puts + 64 gets");
    // 4 shards × (≤ ceil(16/16)+… write chunks + 1 read round) — the exact
    // chunk count depends on key placement, but 128 logical ops must cost
    // far fewer register ops than 128.
    assert!(
        stats.register_ops <= 16,
        "expected ≤ 2 rounds per shard-ish, got {}",
        stats.register_ops
    );
    assert!(stats.amortization() > 4.0);
    cluster.shutdown();
}

#[test]
fn same_key_puts_coalesce_to_the_last_value() {
    let (mut cluster, store) = batched(2, FlushPolicy::default());
    let entries: Vec<(String, Bytes)> = (0..10)
        .map(|i| ("hot".to_string(), Bytes::from(vec![i as u8])))
        .collect();
    store.multi_put(&entries).unwrap();
    assert_eq!(
        store.get("hot").unwrap().as_deref(),
        Some([9u8].as_ref()),
        "last write of the batch wins"
    );
    cluster.shutdown();
}

#[test]
fn colliding_keys_share_a_bundle_and_both_resolve() {
    // One shard: every key collides. A multi_put of distinct keys must
    // store a bundle that serves *both* keys — unlike unbatched puts,
    // where the second displaces the first.
    let (mut cluster, store) = batched(1, FlushPolicy::default());
    store
        .multi_put(&[
            ("a".to_string(), Bytes::from(b"1".to_vec())),
            ("b".to_string(), Bytes::from(b"2".to_vec())),
        ])
        .unwrap();
    assert_eq!(store.get("a").unwrap().as_deref(), Some(b"1".as_ref()));
    assert_eq!(store.get("b").unwrap().as_deref(), Some(b"2".as_ref()));
    // A later single put replaces the whole cell (displacement semantics).
    store.put("c", b"3".to_vec()).unwrap();
    assert_eq!(store.get("a").unwrap(), None);
    assert_eq!(store.get("c").unwrap().as_deref(), Some(b"3".as_ref()));
    cluster.shutdown();
}

#[test]
fn concurrent_singles_coalesce_through_the_table() {
    let (mut cluster, store) = batched(
        2,
        FlushPolicy {
            max_batch: 32,
            max_linger: std::time::Duration::from_millis(30),
            adaptive: false,
        },
    );
    // 16 threads put 16 distinct keys at once; the linger window lets
    // them share rounds.
    std::thread::scope(|scope| {
        for i in 0..16 {
            let store = store.clone();
            scope.spawn(move || {
                store
                    .put(&format!("t{i}"), Bytes::from(vec![i as u8]))
                    .unwrap();
            });
        }
    });
    for i in 0..16 {
        assert_eq!(
            store.get(&format!("t{i}")).unwrap().as_deref(),
            Some([i as u8].as_ref())
        );
    }
    let stats = store.stats();
    assert!(
        stats.amortization() > 1.0,
        "concurrent singles never shared a round: {stats:?}"
    );
    cluster.shutdown();
}

#[test]
fn eager_policy_serves_singles_alone() {
    let (mut cluster, store) = batched(4, FlushPolicy::EAGER);
    store.put("x", b"1".to_vec()).unwrap();
    assert_eq!(store.get("x").unwrap().as_deref(), Some(b"1".as_ref()));
    assert_eq!(store.get("never").unwrap(), None);
    let stats = store.stats();
    assert_eq!(stats.logical_ops, 3);
    assert_eq!(stats.register_ops, 3, "eager singles flush alone");
    cluster.shutdown();
}

#[test]
fn batches_survive_a_node_death() {
    let (mut cluster, store) = batched(8, FlushPolicy::default());
    let entries: Vec<(String, Bytes)> = (0..24)
        .map(|i| (format!("d{i}"), Bytes::from(vec![i as u8])))
        .collect();
    store.multi_put(&entries).unwrap();
    cluster.kill(rmem_types::ProcessId(1));
    let keys: Vec<String> = entries.iter().map(|(k, _)| k.clone()).collect();
    let got = store.multi_get(&keys).unwrap();
    for (i, value) in got.iter().enumerate() {
        assert_eq!(
            value.as_deref(),
            Some([i as u8].as_ref()),
            "key d{i} must survive the node death"
        );
    }
    store.multi_put(&entries).unwrap();
    cluster.shutdown();
}

#[test]
fn oversized_entries_split_across_write_rounds() {
    // Frame-budget chunking: entries that cannot share one UDP-sized
    // payload must land in separate rounds, all still readable.
    let dir = std::env::temp_dir().join(format!("rmem-batch-split-{}", std::process::id()));
    let cluster = LocalCluster::udp(3, SharedMemory::factory(Transient::flavor()), &dir).unwrap();
    let kv = KvClient::new(cluster.clients(), ShardRouter::new(1)).unwrap();
    let store = BatchedKv::new(kv, FlushPolicy::default());
    // Three 30 KB values: any two fit a 64 KB frame, three do not.
    let entries: Vec<(String, Bytes)> = (0..3)
        .map(|i| (format!("big{i}"), Bytes::from(vec![i as u8; 30_000])))
        .collect();
    store.multi_put(&entries).unwrap();
    assert!(
        store.stats().register_ops >= 2,
        "three 30KB entries cannot share one UDP frame"
    );
    // The last chunk owns the cell; its keys resolve, the earlier chunk's
    // were displaced (the store's usual collision semantics).
    let keys: Vec<String> = entries.iter().map(|(k, _)| k.clone()).collect();
    let got = store.multi_get(&keys).unwrap();
    assert!(
        got.iter().any(Option::is_some),
        "the final chunk's keys must resolve"
    );
    let mut cluster = cluster;
    cluster.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn an_entry_over_any_frame_fails_with_too_large() {
    let dir = std::env::temp_dir().join(format!("rmem-batch-toolarge-{}", std::process::id()));
    let mut cluster =
        LocalCluster::udp(3, SharedMemory::factory(Transient::flavor()), &dir).unwrap();
    let kv = KvClient::new(cluster.clients(), ShardRouter::new(2)).unwrap();
    let store = BatchedKv::new(kv, FlushPolicy::default());
    let err = store
        .multi_put(&[("huge".to_string(), Bytes::from(vec![0u8; 80_000]))])
        .unwrap_err();
    assert!(
        matches!(err, rmem_kv::KvError::TooLarge { .. }),
        "expected TooLarge, got {err}"
    );
    // The table path refuses at enqueue time, on the offender's thread —
    // before the operation can poison a shared flush.
    let err = store.put("huge", vec![0u8; 80_000]).unwrap_err();
    assert!(
        matches!(err, rmem_kv::KvError::TooLarge { .. }),
        "expected TooLarge from the single-put path, got {err}"
    );
    cluster.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn batched_store_survives_a_live_split() {
    // A 4 → 8 live split under a BatchedKv: queued routing re-derives
    // registers from the fresh map each flush, the epoch roll kicks
    // lingering queues, and post-split bundles carry the new stamp.
    let (mut cluster, store) = batched(4, FlushPolicy::default());
    let entries: Vec<(String, Bytes)> = (0..32)
        .map(|i| (format!("e{i}"), Bytes::from(vec![i as u8])))
        .collect();
    store.multi_put(&entries).unwrap();
    let report = store.kv().grow(8).unwrap();
    assert_eq!(report.epoch, 1);
    assert_eq!(store.kv().shard_map().shards, 8);
    // Every key still serves through the batched read path.
    let keys: Vec<String> = entries.iter().map(|(k, _)| k.clone()).collect();
    let got = store.multi_get(&keys).unwrap();
    for (i, value) in got.iter().enumerate() {
        assert_eq!(
            value.as_deref(),
            Some([i as u8].as_ref()),
            "key e{i} must survive the split under batching"
        );
    }
    // New writes land under the new epoch and read back, batched.
    let fresh: Vec<(String, Bytes)> = (0..32)
        .map(|i| (format!("e{i}"), Bytes::from(vec![i as u8 + 100])))
        .collect();
    store.multi_put(&fresh).unwrap();
    let got = store.multi_get(&keys).unwrap();
    for (i, value) in got.iter().enumerate() {
        assert_eq!(value.as_deref(), Some([i as u8 + 100].as_ref()));
    }
    cluster.shutdown();
}

#[test]
fn singles_coalesce_across_epochs_without_stale_buckets() {
    // Singles enqueued before and after a split must all complete and
    // agree with the unbatched view: the coalescing buckets are fixed,
    // the registers are not. One key per pre-split shard (singles
    // displace colliding tenants, so the universe must be injective).
    let (mut cluster, store) = batched(2, FlushPolicy::default());
    let keys = ShardRouter::new(2).covering_keys("s-");
    for (i, key) in keys.iter().enumerate() {
        store.put(key, vec![i as u8]).unwrap();
    }
    store.kv().grow(5).unwrap();
    for (i, key) in keys.iter().enumerate() {
        assert_eq!(
            store.get(key).unwrap().as_deref(),
            Some([i as u8].as_ref()),
            "{key} after 2→5 split"
        );
        store.put(key, vec![i as u8 + 50]).unwrap();
    }
    for (i, key) in keys.iter().enumerate() {
        assert_eq!(
            store.get(key).unwrap().as_deref(),
            Some([i as u8 + 50].as_ref())
        );
    }
    cluster.shutdown();
}
