//! `rmem-batch`: a concurrent operation table and per-shard quorum
//! batching engine for the `rmem` store.
//!
//! The paper's emulations pay **two quorum round-trips per operation**
//! (§IV), and the port long inherited §III-A's one-operation-per-process
//! restriction verbatim. This crate is the throughput subsystem built on
//! the two layers that lift those limits:
//!
//! 1. **The runner's operation table** (in `rmem-net`, mirrored by the
//!    simulator's engine): the per-process pending slot became a
//!    per-*register* table, so independent shards hosted by one node serve
//!    operations concurrently — `Busy` remains only for two operations on
//!    the *same* register. That is the paper's sequentiality applied at
//!    the granularity it actually proves things for: each register is its
//!    own emulation.
//! 2. **The batching engine** (this crate): [`BatchedKv`] coalesces the
//!    store operations of a batch that land on one shard into a single
//!    register operation — one `SnReq` round amortized over k puts of a
//!    composite entry-map payload, one `Read` round serving k gets — with
//!    a [`FlushPolicy`] (`max_batch` / `max_linger`) governing when a
//!    forming batch ships. Singles coalesce with concurrent callers
//!    through a per-shard leader/follower operation table; `multi_put` /
//!    `multi_get` flush their fully-formed batches immediately.
//!
//! Batched runs remain certifiable by `rmem_kv::certify_per_key` — the
//! per-key atomicity checker is the correctness oracle for the whole
//! subsystem; [`scheduler`] documents why batching is transparent to it.
//!
//! # Example
//!
//! ```no_run
//! use rmem_batch::{BatchedKv, FlushPolicy};
//! use rmem_core::{SharedMemory, Transient};
//! use rmem_kv::{KvClient, ShardRouter};
//! use rmem_net::LocalCluster;
//!
//! let mut cluster = LocalCluster::channel(3, SharedMemory::factory(Transient::flavor()))?;
//! let kv = KvClient::new(cluster.clients(), ShardRouter::new(8))?;
//! let batched = BatchedKv::new(kv, FlushPolicy::default());
//! let entries: Vec<(String, bytes::Bytes)> = (0..64)
//!     .map(|i| (format!("k{i}"), bytes::Bytes::from(vec![i as u8])))
//!     .collect();
//! batched.multi_put(&entries)?; // ≤ one write round per shard chunk
//! let keys: Vec<String> = entries.iter().map(|(k, _)| k.clone()).collect();
//! let values = batched.multi_get(&keys)?; // one read round per shard
//! assert!(values.iter().all(Option::is_some));
//! assert!(batched.stats().amortization() > 1.0);
//! cluster.shutdown();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod policy;
pub mod scheduler;
mod table;

pub use policy::FlushPolicy;
pub use scheduler::{BatchStats, BatchedKv};
