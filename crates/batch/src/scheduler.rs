//! The per-shard quorum batching engine: [`BatchedKv`].
//!
//! # What gets amortized
//!
//! Every register operation costs two quorum round-trips (SnReq/SnAck,
//! then Write/WriteAck or Read/ReadAck) regardless of how much it carries.
//! The engine therefore coalesces the store operations of a batch that
//! land on one shard into a *single* register operation:
//!
//! * **puts** — one `SnReq` round amortized over the batch: the coalesced
//!   entries (last write wins per key, batch order) become one composite
//!   entry-map payload ([`rmem_kv::codec::encode_entries`]) written in one
//!   quorum round;
//! * **gets** — one `Read` round whose payload serves every queued get on
//!   the shard ([`rmem_kv::codec::value_for_key`]).
//!
//! Two batching paths share that machinery: `multi_put`/`multi_get`
//! batches are fully formed on arrival and flush immediately (chunked by
//! the policy's `max_batch` and the transport frame budget), while singles
//! (`put`/`get`) pass through the concurrent operation table
//! (`crate::table`), where the policy's `max_linger` lets concurrent
//! callers coalesce.
//!
//! # Why per-key certification still holds
//!
//! `rmem_kv::certify_per_key` stays the correctness oracle for batched
//! runs, with no weakening, because batching never changes *what a
//! register operation is* — only how many store-level operations one
//! register operation carries:
//!
//! * A flush is still one ordinary register write (or read) of the
//!   emulation, so the per-register history is exactly as atomic as the
//!   underlying flavor guarantees; nothing new to prove at that level.
//! * Coalescing k same-key puts into one write of the *last* value is a
//!   legal linearization of those k puts: they were concurrent (all
//!   in-flight in one batch), so some order was always permissible, and
//!   the batch serves them in arrival order with the last one visible —
//!   each earlier put's ack truthfully means "my write was applied and
//!   then superseded within the same atomic step".
//! * Under an injective key↔shard map (what certification requires even
//!   unbatched — colliding universes are refused up front) a coalesced
//!   payload carries exactly one key, so the certifier's decode step maps
//!   it to a plain register value and the per-register verdict reads as
//!   the per-key verdict, word for word.
//! * With colliding keys, a composite write replaces the whole cell —
//!   exactly the displacement semantics the unbatched store already has —
//!   so batching changes nothing the certifier would need to model.
//!
//! The engine's batches are therefore *transparent* to the oracle: every
//! batched run that completes is certified by the same checker, against
//! the same criterion, as its unbatched equivalent.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bytes::Bytes;
use crossbeam::channel::bounded;
use rmem_kv::{codec, KvClient, KvError, ShardMap};
use rmem_obs::{Counter, Histogram};
use rmem_types::{RegisterId, Value};

use crate::policy::FlushPolicy;
use crate::table::{Enqueued, OpTable, QueuedGet, QueuedPut};

/// Running totals of the engine's amortization (all clones share them).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchStats {
    /// Store-level operations served (puts + gets).
    pub logical_ops: u64,
    /// Register operations (= quorum rounds × 2) actually executed.
    pub register_ops: u64,
}

impl BatchStats {
    /// Logical operations per register operation — the amortization
    /// factor (1.0 means batching never coalesced anything).
    pub fn amortization(&self) -> f64 {
        if self.register_ops == 0 {
            return 0.0;
        }
        self.logical_ops as f64 / self.register_ops as f64
    }
}

struct Shared {
    kv: KvClient,
    policy: FlushPolicy,
    table: OpTable,
    /// `batch.*` instruments, registered into the wrapped client's
    /// metrics registry so one snapshot ([`KvClient::metrics`]) covers
    /// the store stack: the amortization counters behind
    /// [`BatchedKv::stats`], plus the distinct-key size of every bundled
    /// write round.
    logical_ops: Arc<Counter>,
    register_ops: Arc<Counter>,
    bundle_size: Arc<Histogram>,
    /// The shard-map epoch the queues were last flushed under. A bundle
    /// carries exactly one epoch stamp by construction (each flush
    /// snapshots the map once); this additionally kicks every lingering
    /// queue the moment the epoch moves, so no operation waits out a
    /// linger window under routing that just changed.
    epoch: AtomicU64,
}

/// A batching store client over a [`KvClient`] (see module docs).
///
/// Cheap to clone; clones share the operation table, the health memory
/// and the stats, so concurrent callers coalesce.
#[derive(Clone)]
pub struct BatchedKv {
    shared: Arc<Shared>,
}

impl std::fmt::Debug for BatchedKv {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BatchedKv")
            .field("policy", &self.shared.policy)
            .field("shards", &self.shared.kv.router().shards())
            .finish()
    }
}

impl BatchedKv {
    /// Wraps `kv` with the given flush policy.
    pub fn new(kv: KvClient, policy: FlushPolicy) -> Self {
        assert!(policy.max_batch >= 1, "max_batch must be at least 1");
        let table = OpTable::new(kv.router().shards() as usize);
        let epoch = kv.epoch();
        let m = kv.metrics_registry().clone();
        BatchedKv {
            shared: Arc::new(Shared {
                logical_ops: m.counter("batch.logical_ops"),
                register_ops: m.counter("batch.register_ops"),
                bundle_size: m.histogram("batch.bundle_size"),
                kv,
                policy,
                table,
                epoch: AtomicU64::new(epoch),
            }),
        }
    }

    /// The coalescing bucket of `key` under `map`: the table's buckets
    /// are fixed at construction, later epochs fold onto them (bucket ≠
    /// register — every flush re-derives registers from the live map).
    fn bucket_of(&self, map: &ShardMap, key: &str) -> usize {
        map.shard_of(key) as usize % self.shared.table.len()
    }

    /// Epoch guard, run on every entry point: when the shard map's epoch
    /// has moved since the last flush, kick every leaderless non-empty
    /// queue so no operation lingers under superseded routing, and no
    /// forming bundle straddles the epochs.
    fn roll_epoch(&self, map: &ShardMap) {
        let seen = self.shared.epoch.load(Ordering::Relaxed);
        if map.epoch == seen {
            return;
        }
        if self
            .shared
            .epoch
            .compare_exchange(seen, map.epoch, Ordering::Relaxed, Ordering::Relaxed)
            .is_ok()
        {
            for bucket in 0..self.shared.table.len() {
                if self.shared.table.try_adopt(bucket) {
                    // No linger: these batches are as formed as they will
                    // get, and this runs on some victim operation's
                    // thread — it must not serially pay every bucket's
                    // linger window.
                    let (puts, gets) = self.shared.table.collect_immediate(bucket);
                    self.run_flush(puts, gets);
                }
            }
        }
    }

    /// Whether `key` currently sits behind the migration write barrier
    /// (its source shard is splitting): such operations bypass the
    /// batching table and go through the epoch-aware `KvClient` paths,
    /// which run the barrier / old-home-then-new-home protocol per key.
    fn is_barriered(&self, map: &ShardMap, key: &str) -> bool {
        map.is_migrating() && map.is_split_source(map.old_shard_of(key))
    }

    /// The wrapped client.
    pub fn kv(&self) -> &KvClient {
        &self.shared.kv
    }

    /// The flush policy in force.
    pub fn policy(&self) -> FlushPolicy {
        self.shared.policy
    }

    /// The linger window the next single-operation flush on `shard` would
    /// wait: the fixed policy value, or — under
    /// [`FlushPolicy::adaptive`] — the shard's current controller state
    /// (grows with sustained queue depth, collapses when traffic dries
    /// up). Observability hook for operators and tests.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is not below the wrapped router's shard count
    /// (`self.kv().router().shards()`).
    pub fn effective_linger(&self, shard: usize) -> std::time::Duration {
        self.shared
            .table
            .effective_linger(shard, &self.shared.policy)
    }

    /// Amortization counters since construction.
    pub fn stats(&self) -> BatchStats {
        BatchStats {
            logical_ops: self.shared.logical_ops.get(),
            register_ops: self.shared.register_ops.get(),
        }
    }

    // -- Singles: through the concurrent operation table -----------------

    /// Stores `value` under `key`, riding a shared per-shard batch:
    /// concurrent puts and gets on the same shard coalesce into single
    /// quorum rounds (the policy bounds how long a lone operation waits
    /// for company).
    ///
    /// # Errors
    ///
    /// As [`KvClient::put`].
    ///
    /// # Panics
    ///
    /// Panics if `key` exceeds [`codec::MAX_KEY_LEN`] (as
    /// [`KvClient::put`] does) — checked *before* enqueueing, so an
    /// invalid operation fails on its caller's thread instead of
    /// panicking whichever thread leads the flush.
    pub fn put(&self, key: &str, value: impl Into<Bytes>) -> Result<(), KvError> {
        let value = value.into();
        self.check_put(key, value.len())?;
        self.shared.kv.sync_map()?;
        let map = self.shared.kv.shard_map();
        self.roll_epoch(&map);
        if self.is_barriered(&map, key) {
            // Splitting shard: the write barrier is per key — run it on
            // the epoch-aware single-op path instead of a shared bundle.
            self.shared.logical_ops.inc();
            self.shared.register_ops.inc();
            return self.shared.kv.put(key, value);
        }
        let bucket = self.bucket_of(&map, key);
        let (tx, rx) = bounded(1);
        let queued = QueuedPut {
            key: key.to_string(),
            value,
            done: tx,
        };
        let role = self
            .shared
            .table
            .enqueue_put(bucket, queued, &self.shared.policy);
        if role == Enqueued::Leader {
            self.lead_flush(bucket);
        }
        rx.recv().unwrap_or(Err(KvError::Register {
            key: key.to_string(),
            source: rmem_net::ClientError::ProcessDown,
        }))
    }

    /// Reads `key`, riding a shared per-shard batch (see
    /// [`put`](Self::put)).
    ///
    /// # Errors
    ///
    /// As [`KvClient::get`].
    ///
    /// # Panics
    ///
    /// Panics if `key` exceeds [`codec::MAX_KEY_LEN`] (on the caller's
    /// thread; see [`put`](Self::put)).
    pub fn get(&self, key: &str) -> Result<Option<Bytes>, KvError> {
        assert!(
            key.len() <= codec::MAX_KEY_LEN,
            "key longer than {} bytes",
            codec::MAX_KEY_LEN
        );
        self.shared.kv.sync_map()?;
        let map = self.shared.kv.shard_map();
        self.roll_epoch(&map);
        if self.is_barriered(&map, key) {
            // Splitting shard: reads need the old-home-then-new-home
            // fallback, which is per key — bypass the shared bundle.
            self.shared.logical_ops.inc();
            self.shared.register_ops.inc();
            return self.shared.kv.get(key);
        }
        let bucket = self.bucket_of(&map, key);
        let (tx, rx) = bounded(1);
        let queued = QueuedGet {
            key: key.to_string(),
            done: tx,
        };
        let role = self
            .shared
            .table
            .enqueue_get(bucket, queued, &self.shared.policy);
        if role == Enqueued::Leader {
            self.lead_flush(bucket);
        }
        rx.recv().unwrap_or(Err(KvError::Register {
            key: key.to_string(),
            source: rmem_net::ClientError::ProcessDown,
        }))
    }

    /// Validates a put before it enters the shared queue: an invalid key
    /// panics the offender (matching `KvClient::put`'s contract), an
    /// entry that alone cannot fit any frame is refused `TooLarge` here —
    /// either failing inside the flush would hit the leader's thread and
    /// poison the whole batch with misleading errors.
    fn check_put(&self, key: &str, value_len: usize) -> Result<(), KvError> {
        assert!(
            key.len() <= codec::MAX_KEY_LEN,
            "key longer than {} bytes",
            codec::MAX_KEY_LEN
        );
        if let Some(max_value) = self.shared.kv.max_value_len() {
            let entry_len = codec::ENTRY_OVERHEAD + key.len() + value_len;
            if entry_len > max_value {
                let overhead = rmem_types::codec::VALUE_MSG_OVERHEAD;
                return Err(KvError::TooLarge {
                    key: key.to_string(),
                    size: entry_len + overhead,
                    limit: max_value + overhead,
                });
            }
        }
        Ok(())
    }

    /// Collects the bucket's queue (lingering per policy) and executes it.
    fn lead_flush(&self, bucket: usize) {
        let (puts, gets) = self.shared.table.collect(bucket, &self.shared.policy);
        self.run_flush(puts, gets);
    }

    /// Executes collected operations: one map snapshot per flush,
    /// operations regrouped by their *live* register under that
    /// snapshot, every bundle stamped with that one epoch — a bundle can
    /// never straddle epochs.
    fn run_flush(&self, puts: Vec<QueuedPut>, gets: Vec<QueuedGet>) {
        let map = self.shared.kv.shard_map();
        // Gets first: they observe the pre-batch cell, the batch's writes
        // land after — any order is legal (everything in one flush is
        // concurrent), this one keeps reads one round behind writes at
        // most.
        let mut get_groups: std::collections::BTreeMap<RegisterId, Vec<QueuedGet>> =
            std::collections::BTreeMap::new();
        for get in gets {
            if self.is_barriered(&map, &get.key) {
                // The epoch moved between enqueue and flush: serve the
                // now-barriered key through the per-key migration path.
                let reply = self.shared.kv.get(&get.key);
                self.shared.logical_ops.inc();
                self.shared.register_ops.inc();
                let _ = get.done.send(reply);
                continue;
            }
            get_groups
                .entry(map.register_for(&get.key))
                .or_default()
                .push(get);
        }
        for (reg, group) in get_groups {
            let outcome = self.read_round(reg);
            self.shared.logical_ops.add(group.len() as u64 - 1);
            for get in group {
                let reply = match &outcome {
                    Ok(payload) => {
                        let value = codec::value_for_key(payload, &get.key);
                        if value.is_none()
                            && !payload.is_bottom()
                            && codec::payload_epoch(payload) != Some(map.stamp())
                        {
                            // Key absent under a foreign stamp: our map
                            // may be stale (a split moved the key). The
                            // per-key path refreshes and re-routes —
                            // mirroring `KvClient::get`'s classification.
                            self.shared.kv.get(&get.key)
                        } else {
                            Ok(value)
                        }
                    }
                    Err(e) => Err(e.clone()),
                };
                let _ = get.done.send(reply);
            }
        }
        let mut put_groups: std::collections::BTreeMap<RegisterId, Vec<QueuedPut>> =
            std::collections::BTreeMap::new();
        for put in puts {
            if self.is_barriered(&map, &put.key) {
                let reply = self.shared.kv.put(&put.key, put.value.clone());
                self.shared.logical_ops.inc();
                self.shared.register_ops.inc();
                let _ = put.done.send(reply);
                continue;
            }
            put_groups
                .entry(map.register_for(&put.key))
                .or_default()
                .push(put);
        }
        for (reg, group) in put_groups {
            let coalesced = coalesce(group);
            for chunk in self.chunks(&coalesced) {
                let outcome = self.write_round(reg, chunk, &map);
                for entry in chunk {
                    for done in &entry.waiters {
                        let _ = done.send(outcome.clone());
                    }
                }
            }
        }
    }

    // -- One-shot batches: multi-key operations --------------------------

    /// Writes many entries, **one quorum round per shard chunk**: the
    /// entries landing on one shard coalesce (last write per key wins,
    /// in input order) into composite payloads, chunked by the policy's
    /// `max_batch` and the transport frame budget; per-node groups run
    /// concurrently, as in [`KvClient::multi_put`].
    ///
    /// # Errors
    ///
    /// Returns the first failing chunk's [`KvError`]; other chunks still
    /// ran to completion.
    pub fn multi_put<K: AsRef<str> + Sync>(&self, entries: &[(K, Bytes)]) -> Result<(), KvError> {
        self.shared.kv.sync_map()?;
        let map = self.shared.kv.shard_map();
        self.roll_epoch(&map);
        // Coalesce into per-register entry lists (order: first appearance
        // of each register / key, values last-wins). The index keeps the
        // pass linear under skew — a hot shard can absorb most of a large
        // batch. Keys behind the migration write barrier take the
        // per-key path instead (the barrier is per source shard).
        let mut per_reg: std::collections::BTreeMap<u16, Vec<CoalescedPut>> =
            std::collections::BTreeMap::new();
        let mut index: std::collections::HashMap<(u16, &str), usize> =
            std::collections::HashMap::new();
        let mut barriered: Vec<(&str, Bytes)> = Vec::new();
        for (key, value) in entries {
            let key = key.as_ref();
            if self.is_barriered(&map, key) {
                barriered.push((key, value.clone()));
                continue;
            }
            let reg = map.register_for(key);
            let list = per_reg.entry(reg.0).or_default();
            match index.get(&(reg.0, key)) {
                Some(&i) => {
                    list[i].value = value.clone();
                    list[i].covered += 1;
                }
                None => {
                    index.insert((reg.0, key), list.len());
                    list.push(CoalescedPut {
                        key: key.to_string(),
                        value: value.clone(),
                        covered: 1,
                        waiters: Vec::new(),
                    });
                }
            }
        }
        let outcomes: Vec<Result<(), KvError>> = self.per_node(per_reg, |reg, list| {
            for chunk in self.chunks(&list) {
                self.write_round(reg, chunk, &map)?;
            }
            Ok(())
        });
        // Barriered keys go through the per-key path; errors are
        // deferred so every batch and every barriered key still runs
        // (the contract: first failing error, everything attempted).
        let mut first_err = None;
        for (key, value) in barriered {
            self.shared.logical_ops.inc();
            self.shared.register_ops.inc();
            if let Err(e) = self.shared.kv.put(key, value) {
                first_err.get_or_insert(e);
            }
        }
        for outcome in outcomes {
            if let Err(e) = outcome {
                first_err.get_or_insert(e);
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Reads many keys, **one quorum round per shard**: every key landing
    /// on one shard is served from a single `Read` round's payload;
    /// per-node groups run concurrently. Results align with the input
    /// order.
    ///
    /// # Errors
    ///
    /// Returns the first failing shard's [`KvError`]; other shards still
    /// ran to completion.
    pub fn multi_get<K: AsRef<str> + Sync>(
        &self,
        keys: &[K],
    ) -> Result<Vec<Option<Bytes>>, KvError> {
        self.shared.kv.sync_map()?;
        let map = self.shared.kv.shard_map();
        self.roll_epoch(&map);
        let mut per_reg: std::collections::BTreeMap<u16, Vec<usize>> =
            std::collections::BTreeMap::new();
        let mut barriered: Vec<usize> = Vec::new();
        for (i, key) in keys.iter().enumerate() {
            if self.is_barriered(&map, key.as_ref()) {
                barriered.push(i);
                continue;
            }
            let reg = map.register_for(key.as_ref());
            per_reg.entry(reg.0).or_default().push(i);
        }
        let mut results: Vec<Option<Option<Bytes>>> = vec![None; keys.len()];
        type Served = Vec<(usize, Option<Bytes>)>;
        let outcomes: Vec<Result<Served, KvError>> = self.per_node(per_reg, |reg, indices| {
            let payload = self.read_round(reg)?;
            self.shared.logical_ops.add(indices.len() as u64 - 1);
            indices
                .into_iter()
                .map(|i| {
                    let key = keys[i].as_ref();
                    let value = codec::value_for_key(&payload, key);
                    if value.is_none()
                        && !payload.is_bottom()
                        && codec::payload_epoch(&payload) != Some(map.stamp())
                    {
                        // Absent under a foreign stamp: possibly a moved
                        // key behind a stale map — re-route per key.
                        self.shared.kv.get(key).map(|v| (i, v))
                    } else {
                        Ok((i, value))
                    }
                })
                .collect()
        });
        // Errors are deferred so every shard's round and every barriered
        // key still runs before the first failure is reported.
        let mut first_err = None;
        for outcome in outcomes {
            match outcome {
                Ok(served) => {
                    for (i, value) in served {
                        results[i] = Some(value);
                    }
                }
                Err(e) => {
                    first_err.get_or_insert(e);
                }
            }
        }
        for i in barriered {
            self.shared.logical_ops.inc();
            self.shared.register_ops.inc();
            match self.shared.kv.get(keys[i].as_ref()) {
                Ok(value) => results[i] = Some(value),
                Err(e) => {
                    results[i] = Some(None);
                    first_err.get_or_insert(e);
                }
            }
        }
        if let Some(e) = first_err {
            return Err(e);
        }
        Ok(results
            .into_iter()
            .map(|slot| slot.expect("every index answered"))
            .collect())
    }

    // -- Quorum rounds ---------------------------------------------------

    /// Runs `work` for every register group, with groups sharing a home
    /// node serialized on one thread and distinct nodes' groups running
    /// concurrently (the same pipelining shape as `KvClient`).
    fn per_node<V: Send, T: Send>(
        &self,
        per_reg: std::collections::BTreeMap<u16, V>,
        work: impl Fn(RegisterId, V) -> Result<T, KvError> + Sync,
    ) -> Vec<Result<T, KvError>> {
        let nodes = self.shared.kv.node_count();
        let mut by_node: std::collections::BTreeMap<usize, Vec<(u16, V)>> =
            std::collections::BTreeMap::new();
        for (reg, v) in per_reg {
            by_node
                .entry(reg as usize % nodes)
                .or_default()
                .push((reg, v));
        }
        std::thread::scope(|scope| {
            let work = &work;
            let handles: Vec<_> = by_node
                .into_values()
                .map(|group| {
                    scope.spawn(move || {
                        group
                            .into_iter()
                            .map(|(reg, v)| work(RegisterId(reg), v))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("batch node thread panicked"))
                .collect()
        })
    }

    /// One read quorum round.
    fn read_round(&self, reg: RegisterId) -> Result<Value, KvError> {
        self.shared.register_ops.inc();
        self.shared.logical_ops.inc();
        let label = format!("shard:{}", reg.0);
        self.shared.kv.raw_read(reg, &label)
    }

    /// One write quorum round carrying a whole chunk, stamped with and
    /// guarded by the flush's epoch.
    fn write_round(
        &self,
        reg: RegisterId,
        chunk: &[CoalescedPut],
        map: &ShardMap,
    ) -> Result<(), KvError> {
        self.shared.register_ops.inc();
        self.shared.bundle_size.record(chunk.len() as u64);
        let logical: u64 = chunk.iter().map(|e| e.covered as u64).sum();
        self.shared.logical_ops.add(logical);
        let entries: Vec<(&str, Bytes)> = chunk
            .iter()
            .map(|e| (e.key.as_str(), e.value.clone()))
            .collect();
        let payload = codec::encode_entries(&entries, map.stamp());
        let label = if chunk.len() == 1 {
            chunk[0].key.clone()
        } else {
            format!("shard:{}×{}", reg.0, chunk.len())
        };
        // Epoch-guarded (mirrors `KvClient::put`): if a split publishes
        // while this round is in flight, the bundle aborts un-issued
        // rather than landing behind a migration seal; its entries then
        // re-route through the epoch-aware per-key path.
        if !self
            .shared
            .kv
            .raw_write_guarded(reg, payload, &label, map.epoch)?
        {
            for entry in chunk {
                self.shared.kv.put(&entry.key, entry.value.clone())?;
            }
        }
        Ok(())
    }

    /// Splits coalesced entries into chunks, each fitting `max_batch` and
    /// the transport frame budget. An entry that alone exceeds the budget
    /// ships alone — `raw_write` then refuses it fast with the exact
    /// numbers, and only its own waiters see the error.
    fn chunks<'a>(&self, entries: &'a [CoalescedPut]) -> impl Iterator<Item = &'a [CoalescedPut]> {
        let budget = self.shared.kv.max_value_len();
        // The chunk size may never exceed what one bundle can count, on
        // top of the caller's policy.
        let max_batch = self.shared.policy.max_batch.min(codec::MAX_BUNDLE_ENTRIES);
        let mut cuts = vec![0usize];
        let mut size = codec::BUNDLE_OVERHEAD;
        let mut count = 0usize;
        for (i, e) in entries.iter().enumerate() {
            // Sized as a bundle entry: an upper bound for every chunk
            // (a lone entry encodes as the smaller plain form).
            let cost = codec::BUNDLE_ENTRY_OVERHEAD + e.key.len() + e.value.len();
            let over_budget = budget.is_some_and(|b| size + cost > b);
            if count > 0 && (count >= max_batch || over_budget) {
                cuts.push(i);
                size = codec::BUNDLE_OVERHEAD;
                count = 0;
            }
            size += cost;
            count += 1;
        }
        cuts.push(entries.len());
        cuts.windows(2)
            .map(|w| &entries[w[0]..w[1]])
            .filter(|c| !c.is_empty())
            .collect::<Vec<_>>()
            .into_iter()
    }
}

/// One distinct key of a forming write round.
struct CoalescedPut {
    key: String,
    value: Bytes,
    /// How many store-level puts this entry covers (same-key coalescing).
    covered: u32,
    /// Reply channels of the covered table-queued puts (empty for
    /// one-shot batches, which report through the call's return value).
    waiters: Vec<crossbeam::channel::Sender<Result<(), KvError>>>,
}

/// Last-write-wins coalescing of a flush's queued puts, preserving first
/// arrival order per key (indexed, so hot-key floods coalesce in linear
/// time).
fn coalesce(puts: Vec<QueuedPut>) -> Vec<CoalescedPut> {
    let mut out: Vec<CoalescedPut> = Vec::new();
    let mut index: std::collections::HashMap<String, usize> = std::collections::HashMap::new();
    for put in puts {
        match index.get(put.key.as_str()) {
            Some(&i) => {
                out[i].value = put.value;
                out[i].covered += 1;
                out[i].waiters.push(put.done);
            }
            None => {
                index.insert(put.key.clone(), out.len());
                out.push(CoalescedPut {
                    key: put.key,
                    value: put.value,
                    covered: 1,
                    waiters: vec![put.done],
                });
            }
        }
    }
    out
}
