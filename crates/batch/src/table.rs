//! The concurrent operation table: per-shard queues of in-flight store
//! operations, with leader election per flush.
//!
//! Every shard owns one queue. The first operation to enqueue onto an
//! empty-of-leader queue becomes that flush's **leader**: it waits for
//! company (up to the policy's linger, or until the batch is full — a
//! full queue wakes the leader early through the condvar) and then takes
//! the whole queue in one step. Everyone else is a **follower**: their
//! operation rides the leader's quorum round and they just block on their
//! reply channel. Leadership is per flush, not per shard lifetime — the
//! moment a leader takes the queue, the next arrival elects itself leader
//! of the next batch, so flushes pipeline under sustained load.

use std::sync::{Condvar, Mutex};
use std::time::Instant;

use bytes::Bytes;
use crossbeam::channel::Sender;
use rmem_kv::KvError;

use crate::policy::FlushPolicy;

/// A queued put waiting to ride a flush.
pub(crate) struct QueuedPut {
    pub key: String,
    pub value: Bytes,
    pub done: Sender<Result<(), KvError>>,
}

/// A queued get waiting to ride a flush.
pub(crate) struct QueuedGet {
    pub key: String,
    pub done: Sender<Result<Option<Bytes>, KvError>>,
}

/// What [`OpTable::enqueue_put`]/[`OpTable::enqueue_get`] made the caller.
#[derive(Debug, PartialEq, Eq)]
pub(crate) enum Enqueued {
    /// The caller opened this batch and must run the flush
    /// ([`OpTable::collect`], then execute the quorum rounds).
    Leader,
    /// The caller's operation rides the current leader's flush; just wait
    /// on the reply channel.
    Follower,
}

#[derive(Default)]
struct ShardQueue {
    puts: Vec<QueuedPut>,
    gets: Vec<QueuedGet>,
    /// Whether a leader is currently collecting this queue.
    leader: bool,
}

impl ShardQueue {
    fn len(&self) -> usize {
        self.puts.len() + self.gets.len()
    }
}

struct Slot {
    queue: Mutex<ShardQueue>,
    /// Wakes a lingering leader early when the batch fills.
    full: Condvar,
}

/// Per-shard operation queues (see module docs).
pub(crate) struct OpTable {
    slots: Vec<Slot>,
}

impl OpTable {
    pub(crate) fn new(shards: usize) -> Self {
        OpTable {
            slots: (0..shards)
                .map(|_| Slot {
                    queue: Mutex::new(ShardQueue::default()),
                    full: Condvar::new(),
                })
                .collect(),
        }
    }

    fn enqueue(
        &self,
        shard: usize,
        push: impl FnOnce(&mut ShardQueue),
        policy: &FlushPolicy,
    ) -> Enqueued {
        let slot = &self.slots[shard];
        let mut q = slot.queue.lock().expect("op-table lock");
        push(&mut q);
        if q.len() >= policy.max_batch {
            slot.full.notify_one();
        }
        if q.leader {
            Enqueued::Follower
        } else {
            q.leader = true;
            Enqueued::Leader
        }
    }

    pub(crate) fn enqueue_put(
        &self,
        shard: usize,
        put: QueuedPut,
        policy: &FlushPolicy,
    ) -> Enqueued {
        self.enqueue(shard, |q| q.puts.push(put), policy)
    }

    pub(crate) fn enqueue_get(
        &self,
        shard: usize,
        get: QueuedGet,
        policy: &FlushPolicy,
    ) -> Enqueued {
        self.enqueue(shard, |q| q.gets.push(get), policy)
    }

    /// Leader only: linger for company, then take the whole queue. Clears
    /// the leader bit in the same critical section as the take, so no
    /// operation can slip between "taken" and "next leader electable".
    pub(crate) fn collect(
        &self,
        shard: usize,
        policy: &FlushPolicy,
    ) -> (Vec<QueuedPut>, Vec<QueuedGet>) {
        let slot = &self.slots[shard];
        let deadline = Instant::now() + policy.max_linger;
        let mut q = slot.queue.lock().expect("op-table lock");
        debug_assert!(q.leader, "collect called by a non-leader");
        while q.len() < policy.max_batch {
            let now = Instant::now();
            let Some(remaining) = deadline
                .checked_duration_since(now)
                .filter(|d| !d.is_zero())
            else {
                break;
            };
            let (guard, timeout) = slot.full.wait_timeout(q, remaining).expect("op-table lock");
            q = guard;
            if timeout.timed_out() {
                break;
            }
        }
        q.leader = false;
        (std::mem::take(&mut q.puts), std::mem::take(&mut q.gets))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel::bounded;
    use std::time::Duration;

    fn put(key: &str) -> (QueuedPut, crossbeam::channel::Receiver<Result<(), KvError>>) {
        let (tx, rx) = bounded(1);
        (
            QueuedPut {
                key: key.to_string(),
                value: Bytes::from(b"v".to_vec()),
                done: tx,
            },
            rx,
        )
    }

    #[test]
    fn first_in_leads_rest_follow_until_collected() {
        let table = OpTable::new(2);
        let policy = FlushPolicy {
            max_batch: 8,
            max_linger: Duration::ZERO,
        };
        let (p1, _r1) = put("a");
        let (p2, _r2) = put("b");
        assert_eq!(table.enqueue_put(0, p1, &policy), Enqueued::Leader);
        assert_eq!(table.enqueue_put(0, p2, &policy), Enqueued::Follower);
        // A different shard elects its own leader.
        let (p3, _r3) = put("c");
        assert_eq!(table.enqueue_put(1, p3, &policy), Enqueued::Leader);
        let (puts, gets) = table.collect(0, &policy);
        assert_eq!(puts.len(), 2);
        assert!(gets.is_empty());
        // After the take, the next arrival leads the next batch.
        let (p4, _r4) = put("d");
        assert_eq!(table.enqueue_put(0, p4, &policy), Enqueued::Leader);
    }

    #[test]
    fn a_full_queue_releases_a_lingering_leader_early() {
        let table = std::sync::Arc::new(OpTable::new(1));
        let policy = FlushPolicy {
            max_batch: 2,
            max_linger: Duration::from_secs(30), // must not matter
        };
        let (p1, _r1) = put("a");
        assert_eq!(table.enqueue_put(0, p1, &policy), Enqueued::Leader);
        let t = {
            let table = table.clone();
            std::thread::spawn(move || {
                // Fill the batch shortly after the leader starts waiting.
                std::thread::sleep(Duration::from_millis(20));
                let (p2, r2) = put("b");
                assert_eq!(table.enqueue_put(0, p2, &policy), Enqueued::Follower);
                r2
            })
        };
        let started = Instant::now();
        let (puts, _) = table.collect(0, &policy);
        assert_eq!(puts.len(), 2);
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "the full batch must wake the leader, not the 30s linger"
        );
        t.join().unwrap();
    }
}
