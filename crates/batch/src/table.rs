//! The concurrent operation table: per-shard queues of in-flight store
//! operations, with leader election per flush.
//!
//! Every shard owns one queue. The first operation to enqueue onto an
//! empty-of-leader queue becomes that flush's **leader**: it waits for
//! company (up to the policy's linger, or until the batch is full — a
//! full queue wakes the leader early through the condvar) and then takes
//! the whole queue in one step. Everyone else is a **follower**: their
//! operation rides the leader's quorum round and they just block on their
//! reply channel. Leadership is per flush, not per shard lifetime — the
//! moment a leader takes the queue, the next arrival elects itself leader
//! of the next batch, so flushes pipeline under sustained load.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

use bytes::Bytes;
use crossbeam::channel::Sender;
use rmem_kv::KvError;

use crate::policy::FlushPolicy;

/// A queued put waiting to ride a flush.
pub(crate) struct QueuedPut {
    pub key: String,
    pub value: Bytes,
    pub done: Sender<Result<(), KvError>>,
}

/// A queued get waiting to ride a flush.
pub(crate) struct QueuedGet {
    pub key: String,
    pub done: Sender<Result<Option<Bytes>, KvError>>,
}

/// What [`OpTable::enqueue_put`]/[`OpTable::enqueue_get`] made the caller.
#[derive(Debug, PartialEq, Eq)]
pub(crate) enum Enqueued {
    /// The caller opened this batch and must run the flush
    /// ([`OpTable::collect`], then execute the quorum rounds).
    Leader,
    /// The caller's operation rides the current leader's flush; just wait
    /// on the reply channel.
    Follower,
}

#[derive(Default)]
struct ShardQueue {
    puts: Vec<QueuedPut>,
    gets: Vec<QueuedGet>,
    /// Whether a leader is currently collecting this queue.
    leader: bool,
}

impl ShardQueue {
    fn len(&self) -> usize {
        self.puts.len() + self.gets.len()
    }
}

struct Slot {
    queue: Mutex<ShardQueue>,
    /// Wakes a lingering leader early when the batch fills.
    full: Condvar,
    /// The adaptive controller's per-shard effective linger, in micros.
    /// Starts at 0 (a lone operation never waits); full flushes grow it
    /// toward the policy ceiling, drained flushes collapse it back.
    linger_micros: AtomicU64,
}

/// Per-shard operation queues (see module docs).
pub(crate) struct OpTable {
    slots: Vec<Slot>,
}

impl OpTable {
    pub(crate) fn new(shards: usize) -> Self {
        OpTable {
            slots: (0..shards)
                .map(|_| Slot {
                    queue: Mutex::new(ShardQueue::default()),
                    full: Condvar::new(),
                    linger_micros: AtomicU64::new(0),
                })
                .collect(),
        }
    }

    /// Number of coalescing buckets (fixed at construction; the scheduler
    /// folds whatever the current epoch's shard count is onto them).
    pub(crate) fn len(&self) -> usize {
        self.slots.len()
    }

    /// Adopts leadership of `shard`'s queue if it holds operations nobody
    /// is leading — the epoch-roll flush uses this to kick every stale
    /// queue exactly once without racing the regular leader election.
    pub(crate) fn try_adopt(&self, shard: usize) -> bool {
        let slot = &self.slots[shard];
        let mut q = slot.queue.lock().expect("op-table lock");
        if q.leader || q.len() == 0 {
            return false;
        }
        q.leader = true;
        true
    }

    fn enqueue(
        &self,
        shard: usize,
        push: impl FnOnce(&mut ShardQueue),
        policy: &FlushPolicy,
    ) -> Enqueued {
        let slot = &self.slots[shard];
        let mut q = slot.queue.lock().expect("op-table lock");
        push(&mut q);
        if q.len() >= policy.max_batch {
            slot.full.notify_one();
        }
        if q.leader {
            Enqueued::Follower
        } else {
            q.leader = true;
            Enqueued::Leader
        }
    }

    pub(crate) fn enqueue_put(
        &self,
        shard: usize,
        put: QueuedPut,
        policy: &FlushPolicy,
    ) -> Enqueued {
        self.enqueue(shard, |q| q.puts.push(put), policy)
    }

    pub(crate) fn enqueue_get(
        &self,
        shard: usize,
        get: QueuedGet,
        policy: &FlushPolicy,
    ) -> Enqueued {
        self.enqueue(shard, |q| q.gets.push(get), policy)
    }

    /// The linger window [`collect`](Self::collect) would use right now:
    /// the policy's fixed `max_linger`, or — adaptive mode — the shard's
    /// controller state.
    pub(crate) fn effective_linger(&self, shard: usize, policy: &FlushPolicy) -> Duration {
        if policy.adaptive {
            Duration::from_micros(self.slots[shard].linger_micros.load(Ordering::Relaxed))
        } else {
            policy.max_linger
        }
    }

    /// Adaptive-mode controller step, applied after a flush takes `taken`
    /// operations: a **full** batch is evidence of sustained queue depth
    /// (another batch is already forming behind it), so the window grows —
    /// doubling from a 1/8-ceiling floor up to the policy ceiling; a flush
    /// that found the queue **drained** (the leader alone) collapses it to
    /// ~0 so sparse traffic never pays a waiting tax. In-between batch
    /// sizes leave the window where it is.
    fn adapt_linger(slot: &Slot, policy: &FlushPolicy, taken: usize) {
        let ceiling = policy.max_linger.as_micros() as u64;
        if ceiling == 0 {
            return;
        }
        let cur = slot.linger_micros.load(Ordering::Relaxed);
        let next = if taken >= policy.max_batch {
            (cur * 2).clamp(ceiling.div_ceil(8).max(1), ceiling)
        } else if taken <= 1 {
            // Collapse fast: one idle flush quarters the window, a couple
            // more zero it.
            cur / 4
        } else {
            cur
        };
        slot.linger_micros.store(next, Ordering::Relaxed);
    }

    /// Leader only: take the whole queue immediately, no linger — the
    /// epoch-roll kick uses this (those batches are already as formed as
    /// they will get, and the kick runs on some victim operation's
    /// thread, which must not serially pay every bucket's linger).
    pub(crate) fn collect_immediate(&self, shard: usize) -> (Vec<QueuedPut>, Vec<QueuedGet>) {
        let slot = &self.slots[shard];
        let mut q = slot.queue.lock().expect("op-table lock");
        debug_assert!(q.leader, "collect called by a non-leader");
        q.leader = false;
        (std::mem::take(&mut q.puts), std::mem::take(&mut q.gets))
    }

    /// Leader only: linger for company, then take the whole queue. Clears
    /// the leader bit in the same critical section as the take, so no
    /// operation can slip between "taken" and "next leader electable".
    pub(crate) fn collect(
        &self,
        shard: usize,
        policy: &FlushPolicy,
    ) -> (Vec<QueuedPut>, Vec<QueuedGet>) {
        let slot = &self.slots[shard];
        let deadline = Instant::now() + self.effective_linger(shard, policy);
        let mut q = slot.queue.lock().expect("op-table lock");
        debug_assert!(q.leader, "collect called by a non-leader");
        while q.len() < policy.max_batch {
            let now = Instant::now();
            let Some(remaining) = deadline
                .checked_duration_since(now)
                .filter(|d| !d.is_zero())
            else {
                break;
            };
            let (guard, timeout) = slot.full.wait_timeout(q, remaining).expect("op-table lock");
            q = guard;
            if timeout.timed_out() {
                break;
            }
        }
        q.leader = false;
        let (puts, gets) = (std::mem::take(&mut q.puts), std::mem::take(&mut q.gets));
        if policy.adaptive {
            Self::adapt_linger(slot, policy, puts.len() + gets.len());
        }
        (puts, gets)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel::bounded;

    fn put(key: &str) -> (QueuedPut, crossbeam::channel::Receiver<Result<(), KvError>>) {
        let (tx, rx) = bounded(1);
        (
            QueuedPut {
                key: key.to_string(),
                value: Bytes::from(b"v".to_vec()),
                done: tx,
            },
            rx,
        )
    }

    #[test]
    fn first_in_leads_rest_follow_until_collected() {
        let table = OpTable::new(2);
        let policy = FlushPolicy {
            max_batch: 8,
            max_linger: Duration::ZERO,
            adaptive: false,
        };
        let (p1, _r1) = put("a");
        let (p2, _r2) = put("b");
        assert_eq!(table.enqueue_put(0, p1, &policy), Enqueued::Leader);
        assert_eq!(table.enqueue_put(0, p2, &policy), Enqueued::Follower);
        // A different shard elects its own leader.
        let (p3, _r3) = put("c");
        assert_eq!(table.enqueue_put(1, p3, &policy), Enqueued::Leader);
        let (puts, gets) = table.collect(0, &policy);
        assert_eq!(puts.len(), 2);
        assert!(gets.is_empty());
        // After the take, the next arrival leads the next batch.
        let (p4, _r4) = put("d");
        assert_eq!(table.enqueue_put(0, p4, &policy), Enqueued::Leader);
    }

    #[test]
    fn adaptive_linger_grows_under_sustained_depth() {
        let table = OpTable::new(1);
        let policy = FlushPolicy {
            max_batch: 2,
            max_linger: Duration::from_micros(800),
            adaptive: true,
        };
        assert_eq!(table.effective_linger(0, &policy), Duration::ZERO);
        let mut receivers = Vec::new();
        let mut last = Duration::ZERO;
        // Every flush comes back full: the window must grow monotonically
        // toward (and get clamped at) the policy ceiling.
        for round in 0..5 {
            let (p1, r1) = put("a");
            let (p2, r2) = put("b");
            table.enqueue_put(0, p1, &policy);
            table.enqueue_put(0, p2, &policy);
            receivers.push((r1, r2));
            let (puts, _) = table.collect(0, &policy);
            assert_eq!(puts.len(), 2);
            let now = table.effective_linger(0, &policy);
            assert!(
                now >= last,
                "round {round}: window must not shrink under depth ({now:?} < {last:?})"
            );
            assert!(now <= policy.max_linger, "clamped at the ceiling");
            last = now;
        }
        assert_eq!(
            last, policy.max_linger,
            "sustained full flushes must reach the ceiling"
        );
    }

    #[test]
    fn adaptive_linger_collapses_when_the_queue_drains() {
        let table = OpTable::new(1);
        let policy = FlushPolicy {
            max_batch: 2,
            max_linger: Duration::from_micros(800),
            adaptive: true,
        };
        // Pump the window up…
        for _ in 0..4 {
            let (p1, _r1) = put("a");
            let (p2, _r2) = put("b");
            table.enqueue_put(0, p1, &policy);
            table.enqueue_put(0, p2, &policy);
            let _ = table.collect(0, &policy);
        }
        assert_eq!(table.effective_linger(0, &policy), policy.max_linger);
        // …then let the traffic dry up: lone flushes collapse it to ~0
        // within a few rounds, so sparse operations stop paying any tax.
        for _ in 0..6 {
            let (p, _r) = put("solo");
            table.enqueue_put(0, p, &policy);
            let _ = table.collect(0, &policy);
        }
        assert_eq!(
            table.effective_linger(0, &policy),
            Duration::ZERO,
            "a drained queue must collapse the window to zero"
        );
    }

    #[test]
    fn a_full_queue_releases_a_lingering_leader_early() {
        let table = std::sync::Arc::new(OpTable::new(1));
        let policy = FlushPolicy {
            max_batch: 2,
            max_linger: Duration::from_secs(30), // must not matter
            adaptive: false,
        };
        let (p1, _r1) = put("a");
        assert_eq!(table.enqueue_put(0, p1, &policy), Enqueued::Leader);
        let t = {
            let table = table.clone();
            std::thread::spawn(move || {
                // Fill the batch shortly after the leader starts waiting.
                std::thread::sleep(Duration::from_millis(20));
                let (p2, r2) = put("b");
                assert_eq!(table.enqueue_put(0, p2, &policy), Enqueued::Follower);
                r2
            })
        };
        let started = Instant::now();
        let (puts, _) = table.collect(0, &policy);
        assert_eq!(puts.len(), 2);
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "the full batch must wake the leader, not the 30s linger"
        );
        t.join().unwrap();
    }
}
