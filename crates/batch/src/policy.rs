//! Flush policy: when a forming batch stops waiting and ships.

use std::time::Duration;

/// When a shard's forming batch flushes.
///
/// A batch flushes as soon as **either** bound is hit:
///
/// * `max_batch` — the batch holds this many operations (a full batch has
///   nothing to gain from waiting);
/// * `max_linger` — this much time passed since the batch opened (bounds
///   the latency cost batching can impose on a lone operation).
///
/// With [`adaptive`](FlushPolicy::adaptive) set, `max_linger` becomes a
/// *ceiling* instead of the operating point: each shard's effective linger
/// starts at zero (a lone operation never waits), **grows** while flushes
/// keep coming back full (sustained queue depth — waiting demonstrably
/// amortizes), and **collapses** back toward zero the moment a flush
/// drains the queue to a lone operation. Tail latency thus stays flat at
/// low load while heavy load gets the full coalescing window.
///
/// The one-shot batching of `multi_put`/`multi_get` ignores `max_linger` —
/// the batch is already fully formed when the call arrives — but still
/// honours `max_batch` as the per-quorum-round chunk size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlushPolicy {
    /// Operations per batch before an immediate flush (and the chunk size
    /// of one-shot batches). At least 1.
    pub max_batch: usize,
    /// Longest a batch may wait for company before flushing anyway (the
    /// *ceiling* of the adaptive controller).
    pub max_linger: Duration,
    /// Load-adaptive linger (see type docs). `false` lingers the full
    /// `max_linger` on every flush.
    pub adaptive: bool,
}

impl FlushPolicy {
    /// The defaults: 16 operations, 500 µs linger (about the cost of one
    /// quorum round-trip on a LAN — waiting longer than a round costs more
    /// than it amortizes).
    pub const DEFAULT: FlushPolicy = FlushPolicy {
        max_batch: 16,
        max_linger: Duration::from_micros(500),
        adaptive: false,
    };

    /// A policy that never waits: every operation flushes alone unless
    /// concurrent operations are already queued. Useful as the unbatched
    /// baseline in comparisons.
    pub const EAGER: FlushPolicy = FlushPolicy {
        max_batch: 1,
        max_linger: Duration::ZERO,
        adaptive: false,
    };

    /// The load-adaptive policy (ROADMAP item): default batch size and
    /// linger ceiling, with the per-shard effective linger governed by
    /// observed queue depth — ~0 when traffic is sparse, growing toward
    /// `max_linger` under sustained queueing.
    pub const fn adaptive() -> FlushPolicy {
        FlushPolicy {
            adaptive: true,
            ..FlushPolicy::DEFAULT
        }
    }

    /// This policy with the adaptive controller switched on/off.
    pub const fn with_adaptive(self, adaptive: bool) -> FlushPolicy {
        FlushPolicy { adaptive, ..self }
    }
}

impl Default for FlushPolicy {
    fn default() -> Self {
        FlushPolicy::DEFAULT
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let p = FlushPolicy::default();
        assert!(p.max_batch >= 1);
        assert!(p.max_linger > Duration::ZERO);
        assert!(!p.adaptive);
        assert_eq!(FlushPolicy::EAGER.max_batch, 1);
    }

    #[test]
    fn adaptive_shares_the_default_shape() {
        let a = FlushPolicy::adaptive();
        assert!(a.adaptive);
        assert_eq!(a.max_batch, FlushPolicy::DEFAULT.max_batch);
        assert_eq!(a.max_linger, FlushPolicy::DEFAULT.max_linger);
        assert_eq!(a.with_adaptive(false), FlushPolicy::DEFAULT);
    }
}
