//! Flush policy: when a forming batch stops waiting and ships.

use std::time::Duration;

/// When a shard's forming batch flushes.
///
/// A batch flushes as soon as **either** bound is hit:
///
/// * `max_batch` — the batch holds this many operations (a full batch has
///   nothing to gain from waiting);
/// * `max_linger` — this much time passed since the batch opened (bounds
///   the latency cost batching can impose on a lone operation).
///
/// The one-shot batching of `multi_put`/`multi_get` ignores `max_linger` —
/// the batch is already fully formed when the call arrives — but still
/// honours `max_batch` as the per-quorum-round chunk size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlushPolicy {
    /// Operations per batch before an immediate flush (and the chunk size
    /// of one-shot batches). At least 1.
    pub max_batch: usize,
    /// Longest a batch may wait for company before flushing anyway.
    pub max_linger: Duration,
}

impl FlushPolicy {
    /// The defaults: 16 operations, 500 µs linger (about the cost of one
    /// quorum round-trip on a LAN — waiting longer than a round costs more
    /// than it amortizes).
    pub const DEFAULT: FlushPolicy = FlushPolicy {
        max_batch: 16,
        max_linger: Duration::from_micros(500),
    };

    /// A policy that never waits: every operation flushes alone unless
    /// concurrent operations are already queued. Useful as the unbatched
    /// baseline in comparisons.
    pub const EAGER: FlushPolicy = FlushPolicy {
        max_batch: 1,
        max_linger: Duration::ZERO,
    };
}

impl Default for FlushPolicy {
    fn default() -> Self {
        FlushPolicy::DEFAULT
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let p = FlushPolicy::default();
        assert!(p.max_batch >= 1);
        assert!(p.max_linger > Duration::ZERO);
        assert_eq!(FlushPolicy::EAGER.max_batch, 1);
    }
}
