//! The paper's Fig. 1 as an executable scenario: the same adversary
//! schedule run against the transient and persistent algorithms
//! reproduces the two depicted behaviours, and the checkers assign
//! exactly the verdicts the figure illustrates.

use rmem_bench::scenarios;
use rmem_consistency::{check_persistent, check_transient};
use rmem_core::{Persistent, Transient};
use rmem_integration_tests::{read_values, run_scheduled};
use rmem_types::OpKind;

/// Fig. 1 (left): under the transient algorithm the two reads during
/// W(v3) return v1 then v2 — the overlapping-write anomaly. Transient
/// atomicity accepts the history (W(v2)'s reply is weakly completed into
/// W(v3)'s window); persistent atomicity rejects it.
#[test]
fn fig1_transient_run_shows_the_overlapping_write() {
    let report = run_scheduled(3, Transient::factory(), scenarios::fig1(), 7);
    assert_eq!(
        read_values(&report),
        vec![Some(1), Some(2)],
        "the figure's read pattern: v1 then v2 during W(v3)"
    );
    let h = report.trace.to_history();
    check_transient(&h).expect("Fig. 1 left is transient-atomic");
    assert!(
        check_persistent(&h).is_err(),
        "Fig. 1 left violates persistent atomicity by definition"
    );
}

/// Fig. 1 (right): under the persistent algorithm the same schedule shows
/// no overlap. Here the crash lands before the writer's pre-log, so v2
/// simply never happened; both reads return v1, and the history is
/// persistent-atomic.
#[test]
fn fig1_persistent_run_is_clean() {
    let report = run_scheduled(3, Persistent::factory(), scenarios::fig1(), 7);
    let h = report.trace.to_history();
    check_persistent(&h).expect("the persistent algorithm satisfies its criterion on Fig. 1");
    let reads = read_values(&report);
    assert_eq!(reads.len(), 2);
    assert!(
        reads.iter().all(|r| *r == Some(1)) || reads.iter().all(|r| *r == Some(3)),
        "no overlap: both reads agree on a completed write, got {reads:?}"
    );
}

/// The W(v3) write completes in both runs (the figure draws it finishing
/// after the reads), and the unfinished W(v2) stays pending in the
/// history.
#[test]
fn fig1_run_shape_matches_the_figure() {
    let report = run_scheduled(3, Transient::factory(), scenarios::fig1(), 7);
    let ops = report.trace.operations();
    let writes: Vec<_> = ops.iter().filter(|o| o.kind == OpKind::Write).collect();
    assert_eq!(writes.len(), 3);
    assert!(writes[0].is_completed(), "W(v1) completes");
    assert!(!writes[1].is_completed(), "W(v2) is cut off by the crash");
    assert!(writes[2].is_completed(), "W(v3) completes");
    // W(v3) replies after both reads, as drawn.
    let w3_done = writes[2].completed_at.unwrap();
    for read in ops.iter().filter(|o| o.kind == OpKind::Read) {
        assert!(
            read.completed_at.unwrap() < w3_done,
            "reads finish inside W(v3)'s window"
        );
    }
    assert_eq!(report.trace.crashes, 1);
    assert_eq!(report.trace.recoveries, 1);
}
