//! The paper's lower bounds (§IV-A), demonstrated executably: running an
//! algorithm that *skips* one of the required causal logs through the
//! proof runs ρ1 (Fig. 2, Theorem 1) and ρ4 (Fig. 3, Theorem 2) produces
//! checker-certified atomicity violations — while the intact algorithms
//! sail through the very same adversary schedules.

use std::sync::Arc;

use rmem_bench::scenarios;
use rmem_consistency::{check_persistent, check_transient};
use rmem_core::{ablation, FlavorFactory, Persistent, Transient, DEFAULT_RETRANSMIT};
use rmem_integration_tests::{read_values, run_scheduled};

fn ablated(flavor: rmem_core::Flavor) -> Arc<FlavorFactory> {
    Arc::new(FlavorFactory::new(flavor, DEFAULT_RETRANSMIT))
}

/// Theorem 1 (ρ1): with only one causal log per write — no writer pre-log,
/// no recovery completion, no `rec` counter — the recovered writer reuses
/// sequence number 2 for a different value, and reads observe the
/// confused values `v2, v3, v2`.
#[test]
fn rho1_without_pre_log_violates_both_criteria() {
    let report = run_scheduled(3, ablated(ablation::no_pre_log()), scenarios::rho1(), 1);
    let reads = read_values(&report);
    assert_eq!(
        reads,
        vec![Some(2), Some(3), Some(2)],
        "the confused-values read pattern"
    );
    let h = report.trace.to_history();
    assert!(
        check_persistent(&h).is_err(),
        "Theorem 1: persistent atomicity must fail"
    );
    assert!(
        check_transient(&h).is_err(),
        "the orphan tag breaks even transient atomicity"
    );
}

/// The same run under the intact persistent algorithm: the pre-log +
/// recovery completion close the hole.
#[test]
fn rho1_with_persistent_algorithm_is_atomic() {
    let report = run_scheduled(3, Persistent::factory(), scenarios::rho1(), 1);
    let h = report.trace.to_history();
    check_persistent(&h).expect("the intact persistent algorithm survives ρ1");
}

/// And under the intact transient algorithm: the `rec` counter (Fig. 5
/// line 11) keeps the recovered writer's tags unique, exactly as §IV-C
/// argues.
#[test]
fn rho1_with_transient_algorithm_is_atomic() {
    let report = run_scheduled(3, Transient::factory(), scenarios::rho1(), 1);
    let h = report.trace.to_history();
    check_transient(&h).expect("the rec counter protects the transient algorithm on ρ1");
}

/// Removing only the `rec` counter from the transient algorithm re-opens
/// the ρ1 hole — the counter is load-bearing, not belt-and-braces.
#[test]
fn rho1_without_rec_counter_violates_transient_atomicity() {
    let report = run_scheduled(3, ablated(ablation::no_rec_counter()), scenarios::rho1(), 1);
    let h = report.trace.to_history();
    assert!(
        check_transient(&h).is_err(),
        "without rec the tag collision returns"
    );
}

/// Theorem 2 (ρ4): with log-free reads (no write-back round), the reader
/// returns `v2`, crashes, recovers, and returns `v1` — a new-old
/// inversion across its crash.
#[test]
fn rho4_without_read_write_back_violates_both_criteria() {
    let report = run_scheduled(
        3,
        ablated(ablation::no_read_write_back()),
        scenarios::rho4(),
        2,
    );
    let reads = read_values(&report);
    assert_eq!(
        reads,
        vec![Some(2), Some(1)],
        "the ρ4 inversion: v2 then v1"
    );
    let h = report.trace.to_history();
    assert!(
        check_persistent(&h).is_err(),
        "Theorem 2: persistent atomicity must fail"
    );
    assert!(check_transient(&h).is_err(), "and transient atomicity too");
}

/// The same run with the real read (1 causal log in its write-back): the
/// first read pushes `v2` into a majority before returning, so the second
/// read cannot miss it.
#[test]
fn rho4_with_persistent_algorithm_is_atomic() {
    let report = run_scheduled(3, Persistent::factory(), scenarios::rho4(), 2);
    let h = report.trace.to_history();
    check_persistent(&h).expect("the read write-back protects the intact algorithm on ρ4");
    let reads = read_values(&report);
    // Both reads return v2 — the write-back made it stick.
    assert_eq!(reads, vec![Some(2), Some(2)]);
}

/// Sanity check on the flavor arithmetic backing the bounds table.
#[test]
fn ablations_save_exactly_the_forbidden_log() {
    assert_eq!(rmem_core::Flavor::persistent().causal_logs_per_write(), 2);
    assert_eq!(ablation::no_pre_log().causal_logs_per_write(), 1);
    assert_eq!(rmem_core::Flavor::persistent().causal_logs_per_read(), 1);
    assert_eq!(ablation::no_read_write_back().causal_logs_per_read(), 0);
}
