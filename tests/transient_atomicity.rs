//! End-to-end transient-atomicity certification for the Fig. 5 algorithm,
//! including the places where it is weaker than the persistent one — and
//! the `rec` counter that keeps it from being weaker still.

use rmem_consistency::{check_persistent, check_transient};
use rmem_core::{CrashStop, Transient};
use rmem_integration_tests::{read_values, run_scheduled};
use rmem_sim::workload::ClosedLoop;
use rmem_sim::{ClusterConfig, NetConfig, PlannedEvent, Schedule, Simulation};
use rmem_types::{Op, ProcessId, Value};

fn p(i: u16) -> ProcessId {
    ProcessId(i)
}

fn v(x: u32) -> Value {
    Value::from_u32(x)
}

/// Crash-free runs of the transient algorithm are plainly atomic.
#[test]
fn crash_free_transient_runs_are_atomic() {
    for seed in 0..10u64 {
        let mut sim = Simulation::new(
            ClusterConfig::new(5).with_net(NetConfig::lossy(0.08, 0.08)),
            Transient::factory(),
            seed,
        );
        sim.add_closed_loop(ClosedLoop::writes(p(0), v(1), 10));
        sim.add_closed_loop(ClosedLoop::writes(p(4), v(2), 10));
        sim.add_closed_loop(ClosedLoop::reads(p(2), 10));
        let report = sim.run();
        check_persistent(&report.trace.to_history()).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
    }
}

/// A crash sweep across a transient write: transient atomicity must hold
/// at every cut point (persistent may not — that is the criterion's
/// definition, not a bug).
#[test]
fn crash_sweep_preserves_transient_atomicity() {
    for crash_at in (10_050..10_900).step_by(60) {
        let schedule = Schedule::new()
            .at(1_000, PlannedEvent::Invoke(p(0), Op::Write(v(1))))
            .at(10_000, PlannedEvent::Invoke(p(0), Op::Write(v(2))))
            .at(crash_at, PlannedEvent::Crash(p(0)))
            .at(15_000, PlannedEvent::Recover(p(0)))
            .at(20_000, PlannedEvent::Invoke(p(0), Op::Write(v(3))))
            .at(30_000, PlannedEvent::Invoke(p(1), Op::Read))
            .at(40_000, PlannedEvent::Invoke(p(2), Op::Read));
        let report = run_scheduled(3, Transient::factory(), schedule, crash_at);
        check_transient(&report.trace.to_history())
            .unwrap_or_else(|e| panic!("crash at {crash_at}: {e}"));
    }
}

/// The `rec` counter at work: after `k` crash/recovery cycles the next
/// write's sequence number jumps past every number a lost in-flight write
/// could have used. We verify via replica state: the final adopted tag's
/// sequence number strictly exceeds the number of *completed* writes.
#[test]
fn rec_counter_keeps_timestamps_monotone() {
    let schedule = Schedule::new()
        .at(1_000, PlannedEvent::Invoke(p(0), Op::Write(v(1))))
        // Crash mid-write twice.
        .at(10_000, PlannedEvent::Invoke(p(0), Op::Write(v(2))))
        .at(10_300, PlannedEvent::Crash(p(0)))
        .at(12_000, PlannedEvent::Recover(p(0)))
        .at(15_000, PlannedEvent::Invoke(p(0), Op::Write(v(3))))
        .at(15_300, PlannedEvent::Crash(p(0)))
        .at(17_000, PlannedEvent::Recover(p(0)))
        .at(20_000, PlannedEvent::Invoke(p(0), Op::Write(v(4))))
        .at(30_000, PlannedEvent::Invoke(p(1), Op::Read));
    let report = run_scheduled(3, Transient::factory(), schedule, 5);
    check_transient(&report.trace.to_history()).expect("transient");
    // The final read sees the last write.
    assert_eq!(read_values(&report), vec![Some(4)]);
}

/// Every flavor of mixed workload under loss, duplication and crashes of
/// non-writers: transient atomicity certified across seeds.
#[test]
fn reader_crashes_do_not_break_transient_atomicity() {
    for seed in 0..8u64 {
        let schedule = Schedule::new()
            .at(2_000, PlannedEvent::Invoke(p(0), Op::Write(v(1))))
            .at(6_000, PlannedEvent::Invoke(p(1), Op::Read))
            .at(6_900, PlannedEvent::Crash(p(1)))
            .at(9_000, PlannedEvent::Recover(p(1)))
            .at(12_000, PlannedEvent::Invoke(p(1), Op::Read))
            .at(16_000, PlannedEvent::Invoke(p(0), Op::Write(v(2))))
            .at(22_000, PlannedEvent::Invoke(p(1), Op::Read))
            .at(28_000, PlannedEvent::Invoke(p(2), Op::Read));
        let report = run_scheduled(3, Transient::factory(), schedule, seed);
        check_transient(&report.trace.to_history()).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
    }
}

/// The contrast the paper's first experiment quantifies: under a total
/// crash the crash-stop baseline forgets, the transient algorithm
/// remembers.
#[test]
fn transient_survives_total_crash_where_crash_stop_forgets() {
    let schedule = || {
        Schedule::new()
            .at(1_000, PlannedEvent::Invoke(p(0), Op::Write(v(9))))
            .at(10_000, PlannedEvent::Crash(p(0)))
            .at(10_000, PlannedEvent::Crash(p(1)))
            .at(10_000, PlannedEvent::Crash(p(2)))
            .at(20_000, PlannedEvent::Recover(p(0)))
            .at(20_000, PlannedEvent::Recover(p(1)))
            .at(20_000, PlannedEvent::Recover(p(2)))
            .at(40_000, PlannedEvent::Invoke(p(1), Op::Read))
    };
    let transient = run_scheduled(3, Transient::factory(), schedule(), 3);
    assert_eq!(read_values(&transient), vec![Some(9)]);
    check_transient(&transient.trace.to_history()).expect("transient");

    let baseline = run_scheduled(3, CrashStop::factory(), schedule(), 3);
    assert_eq!(
        read_values(&baseline),
        vec![None],
        "the baseline must forget"
    );
    assert!(check_transient(&baseline.trace.to_history()).is_err());
}
