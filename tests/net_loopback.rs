//! Real-runtime integration: the same automata on real threads, channels,
//! UDP and TCP sockets, with kill/restart cycles and file-backed logs.

use rmem_core::{Persistent, Transient};
use rmem_net::LocalCluster;
use rmem_types::{ProcessId, Value};

fn p(i: u16) -> ProcessId {
    ProcessId(i)
}

fn tmp(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("rmem-it-{tag}-{}", std::process::id()))
}

#[test]
fn channel_cluster_serves_writes_and_reads() {
    let mut cluster = LocalCluster::channel(3, Persistent::factory()).unwrap();
    for i in 0..5u32 {
        cluster.client(p(0)).write(Value::from_u32(i)).unwrap();
        let v = cluster.client(p((i % 3) as u16)).read().unwrap();
        assert_eq!(v.as_u32(), Some(i));
    }
    cluster.shutdown();
}

#[test]
fn udp_cluster_with_file_logs_survives_restart() {
    let dir = tmp("udp");
    {
        let mut cluster = LocalCluster::udp(3, Persistent::factory(), &dir).unwrap();
        cluster.client(p(0)).write(Value::from_u32(31)).unwrap();
        cluster.kill(p(0));
        cluster.client(p(1)).write(Value::from_u32(32)).unwrap();
        cluster.restart(p(0)).unwrap();
        let v = cluster.client(p(0)).read().unwrap();
        assert_eq!(
            v.as_u32(),
            Some(32),
            "restarted node must recover and see the latest value"
        );
        cluster.shutdown();
    }
    std::fs::remove_dir_all(dir).unwrap();
}

#[test]
fn tcp_cluster_carries_payloads_beyond_the_udp_limit() {
    let dir = tmp("tcp");
    {
        let mut cluster = LocalCluster::tcp(3, Transient::factory(), &dir).unwrap();
        let big = Value::new(vec![0x42u8; 100_000]); // > 64 KB
        cluster.client(p(0)).write(big.clone()).unwrap();
        let v = cluster.client(p(2)).read().unwrap();
        assert_eq!(v, big);
        cluster.shutdown();
    }
    std::fs::remove_dir_all(dir).unwrap();
}

#[test]
fn total_crash_on_real_runtime_keeps_completed_writes() {
    let mut cluster = LocalCluster::channel(3, Transient::factory()).unwrap();
    cluster.client(p(1)).write(Value::from("precious")).unwrap();
    for pid in ProcessId::all(3) {
        cluster.kill(pid);
    }
    for pid in ProcessId::all(3) {
        cluster.restart(pid).unwrap();
    }
    let v = cluster.client(p(0)).read().unwrap();
    assert_eq!(v, Value::from("precious"));
    cluster.shutdown();
}

#[test]
fn concurrent_clients_from_different_nodes_linearize() {
    use std::sync::Mutex;
    let cluster = LocalCluster::channel(5, Persistent::factory()).unwrap();
    let history = std::sync::Arc::new(Mutex::new(rmem_consistency::History::new()));

    // Two writer threads and two reader threads, each going through its
    // own node; record a coarse history (invocation/reply interleaving is
    // approximated by lock acquisition order around the blocking calls —
    // conservative: the recorded intervals are contained in the real
    // ones… so violations found are real, and we assert none are found).
    std::thread::scope(|s| {
        for (node, base) in [(0u16, 100u32), (1, 200)] {
            let client = cluster.client(p(node));
            let history = history.clone();
            s.spawn(move || {
                for k in 0..5u32 {
                    let value = Value::from_u32(base + k);
                    let op = history
                        .lock()
                        .unwrap()
                        .invoke(p(node), rmem_types::Op::Write(value.clone()));
                    client.write(value).unwrap();
                    history
                        .lock()
                        .unwrap()
                        .reply(op, rmem_types::OpResult::Written);
                }
            });
        }
        for node in [2u16, 3] {
            let client = cluster.client(p(node));
            let history = history.clone();
            s.spawn(move || {
                for _ in 0..5 {
                    let op = history
                        .lock()
                        .unwrap()
                        .invoke(p(node), rmem_types::Op::Read);
                    let v = client.read().unwrap();
                    history
                        .lock()
                        .unwrap()
                        .reply(op, rmem_types::OpResult::ReadValue(v));
                }
            });
        }
    });

    let h = history.lock().unwrap().clone();
    rmem_consistency::check_linearizable(&h)
        .unwrap_or_else(|e| panic!("real-thread run not linearizable: {e}\n{h:?}"));
    drop(cluster);
}
