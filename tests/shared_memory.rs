//! End-to-end shared-memory (multi-register) tests: independent
//! per-register emulations composed into one addressable memory, with
//! locality-based atomicity certification and crash recovery across
//! registers.

use rmem_consistency::{check_persistent, check_transient};
use rmem_core::{Persistent, SharedMemory, Transient};
use rmem_integration_tests::run_scheduled;
use rmem_sim::{PlannedEvent, Schedule};
use rmem_types::{Op, OpKind, ProcessId, RegisterId, Value};

fn p(i: u16) -> ProcessId {
    ProcessId(i)
}

fn r(i: u16) -> RegisterId {
    RegisterId(i)
}

fn v(x: u32) -> Value {
    Value::from_u32(x)
}

#[test]
fn registers_are_independent() {
    let schedule = Schedule::new()
        .at(1_000, PlannedEvent::Invoke(p(0), Op::WriteAt(r(1), v(11))))
        .at(10_000, PlannedEvent::Invoke(p(1), Op::WriteAt(r(2), v(22))))
        .at(20_000, PlannedEvent::Invoke(p(2), Op::ReadAt(r(1))))
        .at(30_000, PlannedEvent::Invoke(p(2), Op::ReadAt(r(2))))
        .at(40_000, PlannedEvent::Invoke(p(2), Op::ReadAt(r(3)))); // never written
    let report = run_scheduled(3, SharedMemory::factory(Persistent::flavor()), schedule, 1);
    let reads: Vec<Option<u32>> = report
        .trace
        .operations()
        .iter()
        .filter(|o| o.kind == OpKind::Read)
        .map(|o| o.result.as_ref().unwrap().read_value().unwrap().as_u32())
        .collect();
    assert_eq!(
        reads,
        vec![Some(11), Some(22), None],
        "each register holds its own value"
    );
    check_persistent(&report.trace.to_history()).expect("multi-register persistent atomicity");
}

#[test]
fn concurrent_writers_on_different_registers_do_not_interfere() {
    for seed in 0..6u64 {
        let schedule = Schedule::new()
            // Simultaneous writes to different registers from different
            // processes — no cross-register quorum interference allowed.
            .at(1_000, PlannedEvent::Invoke(p(0), Op::WriteAt(r(1), v(1))))
            .at(1_000, PlannedEvent::Invoke(p(1), Op::WriteAt(r(2), v(2))))
            .at(1_000, PlannedEvent::Invoke(p(2), Op::WriteAt(r(3), v(3))))
            .at(10_000, PlannedEvent::Invoke(p(0), Op::ReadAt(r(2))))
            .at(10_000, PlannedEvent::Invoke(p(1), Op::ReadAt(r(3))))
            .at(10_000, PlannedEvent::Invoke(p(2), Op::ReadAt(r(1))));
        let report = run_scheduled(
            5,
            SharedMemory::factory(Transient::flavor()),
            schedule,
            seed,
        );
        let ops = report.trace.operations();
        assert!(ops.iter().all(|o| o.is_completed()), "seed {seed}");
        let read_of = |reg: RegisterId| {
            ops.iter()
                .find(|o| o.operation == Op::ReadAt(reg))
                .and_then(|o| o.result.as_ref().unwrap().read_value().unwrap().as_u32())
        };
        assert_eq!(read_of(r(1)), Some(1));
        assert_eq!(read_of(r(2)), Some(2));
        assert_eq!(read_of(r(3)), Some(3));
        check_transient(&report.trace.to_history()).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
    }
}

#[test]
fn crash_recovery_restores_every_register() {
    let schedule = Schedule::new()
        .at(1_000, PlannedEvent::Invoke(p(0), Op::WriteAt(r(1), v(100))))
        .at(
            10_000,
            PlannedEvent::Invoke(p(0), Op::WriteAt(r(7), v(700))),
        )
        // Total blackout.
        .at(20_000, PlannedEvent::Crash(p(0)))
        .at(20_000, PlannedEvent::Crash(p(1)))
        .at(20_000, PlannedEvent::Crash(p(2)))
        .at(30_000, PlannedEvent::Recover(p(0)))
        .at(30_000, PlannedEvent::Recover(p(1)))
        .at(30_000, PlannedEvent::Recover(p(2)))
        .at(50_000, PlannedEvent::Invoke(p(1), Op::ReadAt(r(1))))
        .at(60_000, PlannedEvent::Invoke(p(2), Op::ReadAt(r(7))));
    let report = run_scheduled(3, SharedMemory::factory(Persistent::flavor()), schedule, 2);
    let reads: Vec<Option<u32>> = report
        .trace
        .operations()
        .iter()
        .filter(|o| o.kind == OpKind::Read)
        .map(|o| o.result.as_ref().unwrap().read_value().unwrap().as_u32())
        .collect();
    assert_eq!(
        reads,
        vec![Some(100), Some(700)],
        "both registers survive the blackout"
    );
    check_persistent(&report.trace.to_history()).expect("persistent across registers");
}

#[test]
fn writer_crash_mid_write_affects_only_its_register() {
    let schedule = Schedule::new()
        .at(1_000, PlannedEvent::Invoke(p(0), Op::WriteAt(r(1), v(1))))
        .at(10_000, PlannedEvent::Invoke(p(0), Op::WriteAt(r(2), v(2))))
        // Crash p0 mid-write on register 2.
        .at(10_500, PlannedEvent::Crash(p(0)))
        .at(15_000, PlannedEvent::Recover(p(0)))
        .at(30_000, PlannedEvent::Invoke(p(1), Op::ReadAt(r(1))))
        .at(40_000, PlannedEvent::Invoke(p(2), Op::ReadAt(r(2))));
    let report = run_scheduled(3, SharedMemory::factory(Persistent::flavor()), schedule, 3);
    let ops = report.trace.operations();
    let read1 = ops
        .iter()
        .find(|o| o.operation == Op::ReadAt(r(1)))
        .unwrap();
    assert_eq!(
        read1
            .result
            .as_ref()
            .unwrap()
            .read_value()
            .unwrap()
            .as_u32(),
        Some(1),
        "register 1's completed write is untouched by the register-2 crash"
    );
    check_persistent(&report.trace.to_history()).expect("persistent");
}

#[test]
fn mixed_default_and_addressed_operations_coexist() {
    // Op::Write / Op::Read address register 0 implicitly.
    let schedule = Schedule::new()
        .at(1_000, PlannedEvent::Invoke(p(0), Op::Write(v(5))))
        .at(10_000, PlannedEvent::Invoke(p(1), Op::WriteAt(r(0), v(6))))
        .at(20_000, PlannedEvent::Invoke(p(2), Op::ReadAt(r(0))))
        .at(30_000, PlannedEvent::Invoke(p(2), Op::Read));
    let report = run_scheduled(3, SharedMemory::factory(Transient::flavor()), schedule, 4);
    let reads: Vec<Option<u32>> = report
        .trace
        .operations()
        .iter()
        .filter(|o| o.kind == OpKind::Read)
        .map(|o| o.result.as_ref().unwrap().read_value().unwrap().as_u32())
        .collect();
    assert_eq!(
        reads,
        vec![Some(6), Some(6)],
        "both addressings reach the same register"
    );
    check_transient(&report.trace.to_history()).expect("transient");
}

#[test]
fn per_register_causal_log_bounds_still_hold() {
    // The memory layer must not add logging: per-register ops cost exactly
    // the single-register bounds.
    let schedule = Schedule::new()
        .at(1_000, PlannedEvent::Invoke(p(0), Op::WriteAt(r(4), v(1))))
        .at(20_000, PlannedEvent::Invoke(p(1), Op::ReadAt(r(4))))
        .at(40_000, PlannedEvent::Invoke(p(2), Op::WriteAt(r(8), v(2))));
    let report = run_scheduled(5, SharedMemory::factory(Persistent::flavor()), schedule, 5);
    for op in report.trace.operations() {
        let expect = match op.kind {
            OpKind::Write => 2,
            OpKind::Read => 0, // uncontended
        };
        assert_eq!(op.causal_logs, expect, "{}", op.op);
    }
}

#[test]
fn memory_works_on_the_real_runtime_too() {
    // The wrapper is just another automaton: LocalCluster hosts it
    // unchanged, including kill/restart.
    let mut cluster =
        rmem_net::LocalCluster::channel(3, SharedMemory::factory(Persistent::flavor())).unwrap();
    cluster.client(p(0)).write(Value::from("root")).unwrap(); // register 0
    let c = cluster.client(p(1));
    // The blocking client API issues addressed ops through the Op enum.
    // (Client::write/read target register 0; addressed ops go through
    // invoke-level API in the sim. Here we verify the default register
    // path end-to-end and restart recovery of scoped slots.)
    assert_eq!(c.read().unwrap(), Value::from("root"));
    cluster.kill(p(0));
    cluster.restart(p(0)).unwrap();
    assert_eq!(cluster.client(p(0)).read().unwrap(), Value::from("root"));
    cluster.shutdown();
}
