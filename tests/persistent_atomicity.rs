//! End-to-end persistent-atomicity certification: the Fig. 4 algorithm
//! under randomized workloads, crash schedules and network hostility —
//! every recorded history must satisfy the persistent checker.

use rmem_consistency::check_persistent;
use rmem_core::Persistent;
use rmem_integration_tests::{read_values, run_scheduled};
use rmem_sim::workload::ClosedLoop;
use rmem_sim::{ClusterConfig, NetConfig, PlannedEvent, Schedule, Simulation};
use rmem_types::{Op, ProcessId, Value};

fn p(i: u16) -> ProcessId {
    ProcessId(i)
}

fn v(x: u32) -> Value {
    Value::from_u32(x)
}

/// Randomized closed-loop workloads over many seeds, no crashes: always
/// linearizable (persistent reduces to plain atomicity here).
#[test]
fn random_crash_free_workloads_are_atomic() {
    for seed in 0..12u64 {
        let mut sim = Simulation::new(
            ClusterConfig::new(5).with_net(NetConfig::lossy(0.05, 0.05)),
            Persistent::factory(),
            seed,
        );
        sim.add_closed_loop(ClosedLoop::writes(p(0), v(100 + seed as u32), 8));
        sim.add_closed_loop(ClosedLoop::writes(p(1), v(200 + seed as u32), 8));
        sim.add_closed_loop(ClosedLoop::reads(p(2), 8));
        sim.add_closed_loop(ClosedLoop::reads(p(3), 8));
        let report = sim.run();
        assert_eq!(
            report
                .trace
                .operations()
                .iter()
                .filter(|o| o.is_completed())
                .count(),
            32,
            "seed {seed}: all ops complete"
        );
        check_persistent(&report.trace.to_history()).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
    }
}

/// Crash schedules sweeping the crash instant across a write's lifetime:
/// before the query, mid-query, after the pre-log, mid-propagation. The
/// criterion must hold at every cut point.
#[test]
fn crash_sweep_across_a_write_is_atomic() {
    // The write at t=10_000 goes through: query (≈10_000–10_210), pre-log
    // (≈10_210–10_410), propagation (≈10_410–10_820). Sweep crashes
    // through all of it.
    for crash_at in (10_050..11_000).step_by(75) {
        let schedule = Schedule::new()
            .at(1_000, PlannedEvent::Invoke(p(0), Op::Write(v(1))))
            .at(10_000, PlannedEvent::Invoke(p(0), Op::Write(v(2))))
            .at(crash_at, PlannedEvent::Crash(p(0)))
            .at(15_000, PlannedEvent::Recover(p(0)))
            .at(25_000, PlannedEvent::Invoke(p(1), Op::Read))
            .at(35_000, PlannedEvent::Invoke(p(2), Op::Read))
            .at(45_000, PlannedEvent::Invoke(p(0), Op::Read));
        let report = run_scheduled(3, Persistent::factory(), schedule, crash_at);
        let h = report.trace.to_history();
        check_persistent(&h).unwrap_or_else(|e| {
            panic!(
                "crash at t={crash_at}: {e}\nreads: {:?}",
                read_values(&report)
            )
        });
        // All three reads agree (they are sequential and crash-free).
        let reads = read_values(&report);
        assert_eq!(reads.len(), 3, "crash at t={crash_at}");
        assert!(
            reads.windows(2).all(|w| w[0] == w[1]),
            "crash at t={crash_at}: sequential reads disagree: {reads:?}"
        );
        // The first write always completed, so ⊥ and v-lost are ruled out.
        assert!(
            reads[0] == Some(1) || reads[0] == Some(2),
            "crash at t={crash_at}: reads returned {reads:?}"
        );
    }
}

/// The recovery procedure finishes an interrupted write whose pre-log was
/// durable: once any read observes v2, all subsequent reads must.
#[test]
fn recovery_finishes_prelogged_writes() {
    // Crash after the pre-log (≈10_410) but before propagation acks
    // (≈10_820): recovery must re-propagate v2.
    let schedule = Schedule::new()
        .at(1_000, PlannedEvent::Invoke(p(0), Op::Write(v(1))))
        .at(10_000, PlannedEvent::Invoke(p(0), Op::Write(v(2))))
        .at(10_500, PlannedEvent::Crash(p(0)))
        .at(15_000, PlannedEvent::Recover(p(0)))
        .at(25_000, PlannedEvent::Invoke(p(1), Op::Read));
    let report = run_scheduled(3, Persistent::factory(), schedule, 9);
    assert_eq!(
        read_values(&report),
        vec![Some(2)],
        "the pre-logged write must be finished"
    );
    check_persistent(&report.trace.to_history()).expect("persistent");
}

/// Multi-writer contention with interleaved crashes of a reader and a
/// writer; several seeds.
#[test]
fn contended_multi_writer_with_crashes_is_atomic() {
    for seed in 0..8u64 {
        let schedule = Schedule::new()
            .at(5_000, PlannedEvent::Invoke(p(0), Op::Write(v(10))))
            .at(5_100, PlannedEvent::Invoke(p(1), Op::Write(v(20))))
            .at(5_200, PlannedEvent::Invoke(p(2), Op::Read))
            .at(8_000, PlannedEvent::Crash(p(1)))
            .at(12_000, PlannedEvent::Invoke(p(3), Op::Read))
            .at(14_000, PlannedEvent::Recover(p(1)))
            .at(16_000, PlannedEvent::Invoke(p(1), Op::Read))
            .at(20_000, PlannedEvent::Invoke(p(4), Op::Write(v(30))))
            .at(26_000, PlannedEvent::Invoke(p(2), Op::Read));
        let report = run_scheduled(5, Persistent::factory(), schedule, seed);
        check_persistent(&report.trace.to_history()).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
    }
}

/// Writes spanning payload sizes (including the 64 KB UDP-limit payload of
/// Fig. 6 bottom) stay atomic and complete.
#[test]
fn large_payloads_are_atomic() {
    for size in [0usize, 1, 4096, 65536] {
        let payload = Value::new(vec![0x5Au8; size]);
        let schedule = Schedule::new()
            .at(
                1_000,
                PlannedEvent::Invoke(p(0), Op::Write(payload.clone())),
            )
            .at(40_000, PlannedEvent::Invoke(p(1), Op::Read));
        let report = run_scheduled(3, Persistent::factory(), schedule, size as u64);
        let ops = report.trace.operations();
        assert!(ops.iter().all(|o| o.is_completed()), "size {size}");
        let read = ops.last().unwrap();
        assert_eq!(
            read.result.as_ref().unwrap().read_value().unwrap(),
            &payload,
            "size {size}: read must return the exact payload"
        );
        check_persistent(&report.trace.to_history()).expect("persistent");
    }
}

/// Back-to-back crash/recovery cycles of the same process (flapping),
/// with writes in between: timestamps must keep increasing and the
/// history must stay atomic.
#[test]
fn flapping_process_stays_atomic() {
    let mut schedule = Schedule::new();
    let mut t = 1_000u64;
    for round in 0..5u32 {
        schedule = schedule
            .at(t, PlannedEvent::Invoke(p(0), Op::Write(v(round + 1))))
            .at(t + 1_100, PlannedEvent::Crash(p(0)))
            .at(t + 3_000, PlannedEvent::Recover(p(0)));
        t += 6_000;
    }
    schedule = schedule
        .at(t, PlannedEvent::Invoke(p(1), Op::Read))
        .at(t + 10_000, PlannedEvent::Invoke(p(2), Op::Read));
    let report = run_scheduled(3, Persistent::factory(), schedule, 77);
    check_persistent(&report.trace.to_history()).expect("persistent under flapping");
    // Reads agree on some round's value (or the last fully completed one).
    let reads = read_values(&report);
    assert_eq!(reads.len(), 2);
    assert_eq!(reads[0], reads[1]);
}
