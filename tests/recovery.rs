//! Recovery-path tests: what exactly each algorithm does between `Start`
//! and readiness after a crash, and that recovery logging stays *outside*
//! operations (§IV-B: "this log is outside the actual read and write
//! operations").

use rmem_core::{Persistent, Regular, Transient};
use rmem_integration_tests::{read_values, run_scheduled};
use rmem_sim::{ClusterConfig, PlannedEvent, Schedule, Simulation};
use rmem_storage::records::{RecoveredRecord, WritingRecord, WrittenRecord};
use rmem_storage::StableStorage;
use rmem_types::{Op, OpKind, ProcessId, Value};

fn p(i: u16) -> ProcessId {
    ProcessId(i)
}

fn v(x: u32) -> Value {
    Value::from_u32(x)
}

/// After a persistent write completes, a majority's `written` records
/// hold the value; the writer's `writing` record holds it too.
#[test]
fn stable_records_after_a_persistent_write() {
    let mut sim = Simulation::new(ClusterConfig::new(3), Persistent::factory(), 1)
        .with_schedule(Schedule::new().at(1_000, PlannedEvent::Invoke(p(0), Op::Write(v(7)))));
    let report = sim.run();
    assert!(report.trace.operations()[0].is_completed());

    let mut holders = 0;
    for pid in ProcessId::all(3) {
        let storage = sim.storage(pid);
        if let Some(bytes) = storage.retrieve("written").unwrap() {
            let rec = WrittenRecord::decode(&bytes).unwrap();
            if rec.value.as_u32() == Some(7) {
                holders += 1;
            }
        }
    }
    assert!(
        holders >= 2,
        "a majority must hold the written record, got {holders}"
    );

    let writing = sim
        .storage(p(0))
        .retrieve("writing")
        .unwrap()
        .expect("writer pre-log");
    let rec = WritingRecord::decode(&writing).unwrap();
    assert_eq!(rec.value.as_u32(), Some(7));
    assert_eq!(rec.ts.pid, p(0));
}

/// The transient recovery bumps and stores the `recovered` counter once
/// per recovery; flapping accumulates it.
#[test]
fn recovered_counter_accumulates_across_recoveries() {
    let schedule = Schedule::new()
        .at(1_000, PlannedEvent::Crash(p(0)))
        .at(2_000, PlannedEvent::Recover(p(0)))
        .at(5_000, PlannedEvent::Crash(p(0)))
        .at(6_000, PlannedEvent::Recover(p(0)))
        .at(9_000, PlannedEvent::Crash(p(0)))
        .at(10_000, PlannedEvent::Recover(p(0)));
    let mut sim =
        Simulation::new(ClusterConfig::new(3), Transient::factory(), 2).with_schedule(schedule);
    let report = sim.run();
    assert_eq!(report.trace.recoveries, 3);
    let bytes = sim
        .storage(p(0))
        .retrieve("recovered")
        .unwrap()
        .expect("rec record");
    assert_eq!(RecoveredRecord::decode(&bytes).unwrap().count, 3);
}

/// Recovery stores do not count toward any operation's causal logs: a
/// post-recovery uncontended write still measures exactly its flavor's
/// causal-log bound.
#[test]
fn recovery_logging_is_outside_operations() {
    for (factory, expected_write_logs) in [
        (Persistent::factory(), 2u32),
        (Transient::factory(), 1),
        (Regular::factory(), 1),
    ] {
        let name = factory.flavor().name;
        let schedule = Schedule::new()
            .at(1_000, PlannedEvent::Invoke(p(0), Op::Write(v(1))))
            .at(10_000, PlannedEvent::Crash(p(0)))
            .at(12_000, PlannedEvent::Recover(p(0)))
            .at(30_000, PlannedEvent::Invoke(p(0), Op::Write(v(2))));
        let report = run_scheduled(3, factory, schedule, 3);
        let second_write = report
            .trace
            .operations()
            .iter()
            .filter(|o| o.kind == OpKind::Write)
            .nth(1)
            .expect("second write recorded");
        assert!(second_write.is_completed(), "{name}");
        assert_eq!(
            second_write.causal_logs, expected_write_logs,
            "{name}: post-recovery write must cost its normal causal logs"
        );
        assert!(
            report.trace.background_stores > 0,
            "{name}: recovery/initialisation stores must be accounted as background"
        );
    }
}

/// A process that recovers while an operation is being invoked at it
/// queues the invocation until its recovery round completes — the
/// operation then runs, it is not lost or rejected.
#[test]
fn invocations_during_recovery_are_served_after_it() {
    let schedule = Schedule::new()
        .at(1_000, PlannedEvent::Invoke(p(0), Op::Write(v(5))))
        .at(10_000, PlannedEvent::Crash(p(1)))
        .at(12_000, PlannedEvent::Recover(p(1)))
        // 50µs after the Recover event the automaton is still mid-recovery
        // (its rec-store/finish-write takes ≥200µs): this invoke queues.
        .at(12_050, PlannedEvent::Invoke(p(1), Op::Read));
    for factory in [Persistent::factory(), Transient::factory()] {
        let name = factory.flavor().name;
        let report = run_scheduled(3, factory, schedule.clone(), 4);
        let reads = read_values(&report);
        assert_eq!(
            reads,
            vec![Some(5)],
            "{name}: the queued read must run and see the write"
        );
    }
}

/// Recovering from corrupted stable records must not panic: the process
/// falls back to initial state (and the cluster as a whole still serves).
#[test]
fn corrupt_stable_records_do_not_panic_recovery() {
    use rmem_types::{AutomatonFactory, Input, StableSnapshot};

    struct Corrupt;
    impl StableSnapshot for Corrupt {
        fn get(&self, _key: &str) -> Option<bytes::Bytes> {
            Some(bytes::Bytes::from_static(b"\xff\xff\xff garbage"))
        }
    }

    for factory in [
        Persistent::factory(),
        Transient::factory(),
        Regular::factory(),
    ] {
        let mut automaton = factory.recover(p(0), 3, 1, &Corrupt);
        let mut out = Vec::new();
        automaton.on_input(Input::Start, &mut out); // must not panic
    }
}
