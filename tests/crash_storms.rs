//! Crash-storm robustness: heavy randomized fault schedules over many
//! seeds, every run certified. The paper's liveness condition —
//! eventually a majority stays up long enough — is satisfied by
//! construction (storms end and everyone recovers), so operations at
//! never-crashed processes must all terminate.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rmem_consistency::{check_persistent, check_transient};
use rmem_core::{Persistent, Transient};
use rmem_sim::workload::ClosedLoop;
use rmem_sim::{ClusterConfig, NetConfig, PlannedEvent, Schedule, Simulation};
use rmem_types::{Micros, ProcessId, Value};

/// Builds a random storm over processes `first..n`: each crashes and
/// recovers up to twice at random instants.
fn random_storm(first: u16, n: u16, rng: &mut StdRng) -> Schedule {
    let mut schedule = Schedule::new();
    for i in first..n {
        let mut t = 10_000u64;
        let cycles = rng.gen_range(0..3);
        for _ in 0..cycles {
            let crash_at = t + rng.gen_range(0..60_000);
            let down_for = rng.gen_range(5_000..40_000);
            schedule = schedule
                .at(crash_at, PlannedEvent::Crash(ProcessId(i)))
                .at(crash_at + down_for, PlannedEvent::Recover(ProcessId(i)));
            t = crash_at + down_for + 5_000;
        }
    }
    schedule
}

#[test]
fn persistent_survives_random_crash_storms() {
    for seed in 0..10u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        // p0 and p2 (the clients) stay up; the rest may flap.
        let schedule = random_storm(3, 5, &mut rng);
        let config = ClusterConfig::new(5).with_net(NetConfig::lossy(0.10, 0.05));
        let mut sim = Simulation::new(config, Persistent::factory(), seed).with_schedule(schedule);
        sim.add_closed_loop(
            ClosedLoop::writes(ProcessId(0), Value::from_u32(seed as u32), 12)
                .with_think(Micros(8_000)),
        );
        sim.add_closed_loop(ClosedLoop::reads(ProcessId(2), 12).with_think(Micros(8_000)));
        let report = sim.run();
        check_persistent(&report.trace.to_history()).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        let all_done = report.trace.operations().iter().all(|o| o.is_completed());
        assert!(
            all_done,
            "seed {seed}: clients never crash, all their ops must finish"
        );
    }
}

#[test]
fn transient_survives_random_crash_storms() {
    for seed in 20..30u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let schedule = random_storm(2, 5, &mut rng);
        let config = ClusterConfig::new(5).with_net(NetConfig::lossy(0.10, 0.05));
        let mut sim = Simulation::new(config, Transient::factory(), seed).with_schedule(schedule);
        sim.add_closed_loop(
            ClosedLoop::writes(ProcessId(1), Value::from_u32(seed as u32), 12)
                .with_think(Micros(8_000)),
        );
        sim.add_closed_loop(ClosedLoop::reads(ProcessId(0), 12).with_think(Micros(8_000)));
        let report = sim.run();
        check_transient(&report.trace.to_history()).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
    }
}

/// Simultaneous crash of everyone — the paper explicitly includes this —
/// repeated three times in one run, with writes between blackouts.
#[test]
fn repeated_total_crashes_are_survived() {
    let mut schedule = Schedule::new().at(
        5_000,
        PlannedEvent::Invoke(ProcessId(0), rmem_types::Op::Write(Value::from_u32(1))),
    );
    for round in 0..3u64 {
        let t = 20_000 + round * 30_000;
        for i in 0..3u16 {
            schedule = schedule.at(t, PlannedEvent::Crash(ProcessId(i)));
        }
        for i in 0..3u16 {
            schedule = schedule.at(t + 10_000, PlannedEvent::Recover(ProcessId(i)));
        }
        schedule = schedule.at(
            t + 20_000,
            PlannedEvent::Invoke(
                ProcessId((round % 3) as u16),
                rmem_types::Op::Write(Value::from_u32(round as u32 + 2)),
            ),
        );
    }
    schedule = schedule.at(
        130_000,
        PlannedEvent::Invoke(ProcessId(1), rmem_types::Op::Read),
    );
    let mut sim =
        Simulation::new(ClusterConfig::new(3), Persistent::factory(), 99).with_schedule(schedule);
    let report = sim.run();
    check_persistent(&report.trace.to_history()).expect("persistent through repeated blackouts");
    let last_read = report.trace.operations().iter().last().unwrap();
    assert!(last_read.is_completed());
    assert_eq!(
        last_read
            .result
            .as_ref()
            .unwrap()
            .read_value()
            .unwrap()
            .as_u32(),
        Some(4),
        "the final read sees the last completed write"
    );
}

/// A permanently dead minority is tolerated indefinitely.
#[test]
fn permanent_minority_death_is_tolerated() {
    let schedule = Schedule::new()
        .at(5_000, PlannedEvent::Crash(ProcessId(3)))
        .at(5_000, PlannedEvent::Crash(ProcessId(4)));
    let mut sim =
        Simulation::new(ClusterConfig::new(5), Persistent::factory(), 5).with_schedule(schedule);
    sim.add_closed_loop(
        ClosedLoop::writes(ProcessId(0), Value::from_u32(6), 10).with_think(Micros(2_000)),
    );
    sim.add_closed_loop(ClosedLoop::reads(ProcessId(1), 10).with_think(Micros(2_000)));
    let report = sim.run();
    assert!(
        report.trace.operations().iter().all(|o| o.is_completed()),
        "a 3-of-5 majority suffices forever"
    );
    check_persistent(&report.trace.to_history()).expect("persistent");
}
