//! Collection strategies (`proptest::collection::vec`).

use crate::{Strategy, TestRng};

/// Strategy producing `Vec`s of values from `element`, with a length drawn
/// from `size`.
pub struct VecStrategy<S> {
    element: S,
    min: usize,
    max: usize,
}

/// A vector strategy: lengths drawn uniformly from `size`, elements from
/// `element`.
pub fn vec<S: Strategy>(element: S, size: impl std::ops::RangeBounds<usize>) -> VecStrategy<S> {
    use std::ops::Bound;
    let min = match size.start_bound() {
        Bound::Included(&v) => v,
        Bound::Excluded(&v) => v + 1,
        Bound::Unbounded => 0,
    };
    let max = match size.end_bound() {
        Bound::Included(&v) => v,
        Bound::Excluded(&v) => v.checked_sub(1).expect("empty size range"),
        Bound::Unbounded => min + 64,
    };
    assert!(min <= max, "empty size range");
    VecStrategy { element, min, max }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.between(self.min as u64, self.max as u64) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::any;

    #[test]
    fn lengths_respect_bounds() {
        let mut rng = TestRng::seed(5);
        let strat = vec(any::<u8>(), 2..5);
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
        let inclusive = vec(any::<u8>(), 0..=3);
        for _ in 0..100 {
            assert!(inclusive.generate(&mut rng).len() <= 3);
        }
    }
}
