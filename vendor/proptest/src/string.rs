//! String strategies (`proptest::string::string_regex`).
//!
//! Supports the pattern shape the workspace uses: one character class with
//! a bounded repeat, `"[<chars and a-z ranges>]{m,n}"`. Anything fancier
//! returns an error.

use crate::{Strategy, TestRng};

/// Error parsing an unsupported regex.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "unsupported regex: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Strategy generating strings matching a (restricted) regex.
pub struct RegexStrategy {
    alphabet: Vec<char>,
    min: usize,
    max: usize,
}

/// Parses `pattern` (`"[class]{m,n}"`) into a string strategy.
///
/// # Errors
///
/// Returns [`Error`] if the pattern uses anything beyond a single
/// character class with a `{m,n}` repeat.
pub fn string_regex(pattern: &str) -> Result<RegexStrategy, Error> {
    let err = || Error(pattern.to_string());
    let rest = pattern.strip_prefix('[').ok_or_else(err)?;
    let (class, repeat) = rest.split_once(']').ok_or_else(err)?;

    let mut alphabet = Vec::new();
    let chars: Vec<char> = class.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        if i + 2 < chars.len() && chars[i + 1] == '-' {
            let (lo, hi) = (chars[i], chars[i + 2]);
            if lo > hi {
                return Err(err());
            }
            alphabet.extend(lo..=hi);
            i += 3;
        } else {
            alphabet.push(chars[i]);
            i += 1;
        }
    }
    if alphabet.is_empty() {
        return Err(err());
    }

    let repeat = repeat
        .strip_prefix('{')
        .and_then(|r| r.strip_suffix('}'))
        .ok_or_else(err)?;
    let (m, n) = repeat.split_once(',').ok_or_else(err)?;
    let min: usize = m.trim().parse().map_err(|_| err())?;
    let max: usize = n.trim().parse().map_err(|_| err())?;
    if min > max {
        return Err(err());
    }
    Ok(RegexStrategy { alphabet, min, max })
}

impl Strategy for RegexStrategy {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let len = rng.between(self.min as u64, self.max as u64) as usize;
        (0..len)
            .map(|_| self.alphabet[rng.below(self.alphabet.len() as u64) as usize])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_class_with_ranges_and_literals() {
        let strat = string_regex("[a-zA-Z0-9_@/ .%-]{1,24}").unwrap();
        let mut rng = TestRng::seed(11);
        for _ in 0..200 {
            let s = strat.generate(&mut rng);
            assert!((1..=24).contains(&s.chars().count()), "{s:?}");
            assert!(s
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || "_@/ .%-".contains(c)));
        }
    }

    #[test]
    fn rejects_unsupported_patterns() {
        assert!(string_regex("abc+").is_err());
        assert!(string_regex("[a-z]*").is_err());
        assert!(string_regex("[]{1,2}").is_err());
    }
}
