//! Offline drop-in subset of [`proptest`](https://docs.rs/proptest).
//!
//! Implements the strategy combinators and macros the workspace's property
//! tests use: integer-range and `any::<T>()` strategies, tuples,
//! `prop_map`, `prop_oneof!`, `Just`, `collection::vec`, a small
//! `string_regex` (single character class with a `{m,n}` repeat), the
//! `proptest!` test macro with `ProptestConfig`, and the
//! `prop_assert*`/`prop_assume!` macros.
//!
//! Differences from upstream: inputs are drawn from a deterministic
//! per-test PRNG (seeded from the test name, overridable via the
//! `PROPTEST_SEED` environment variable), and failing cases are **not
//! shrunk** — the failure message reports the raw case.

#![forbid(unsafe_code)]

pub mod collection;
pub mod string;

/// Deterministic PRNG driving all strategies (splitmix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from raw state.
    pub fn seed(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Seeds from a test name (stable across runs), honouring the
    /// `PROPTEST_SEED` environment variable when set.
    pub fn from_name(name: &str) -> Self {
        if let Ok(s) = std::env::var("PROPTEST_SEED") {
            if let Ok(seed) = s.parse::<u64>() {
                return TestRng::seed(seed ^ fnv(name.as_bytes()));
            }
        }
        TestRng::seed(fnv(name.as_bytes()))
    }

    /// The next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, bound)` (`bound` > 0).
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }

    /// Uniform draw from an inclusive `[lo, hi]` span.
    pub fn between(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        let span = hi - lo + 1;
        if span == 0 {
            // Full u64 domain.
            self.next_u64()
        } else {
            lo + self.next_u64() % span
        }
    }
}

fn fnv(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Outcome of a single generated test case.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case was rejected by `prop_assume!` and does not count.
    Reject,
    /// The property failed with this message.
    Fail(String),
}

impl TestCaseError {
    /// A failure with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
}

/// Per-`proptest!`-block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A generator of random values of one type.
///
/// Object-safe: combinator methods are `Self: Sized` so strategies can be
/// boxed (what `prop_oneof!` does).
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Filters generated values (rejects until `f` accepts; bounded).
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            f,
            whence,
        }
    }
}

impl<V, S: Strategy<Value = V> + ?Sized> Strategy for Box<S> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

/// Boxes a strategy (used by `prop_oneof!`).
pub fn boxed<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
    Box::new(s)
}

/// The `.prop_map` combinator.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// The `.prop_filter` combinator.
pub struct Filter<S, F> {
    inner: S,
    f: F,
    whence: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter rejected 1000 candidates in a row: {}",
            self.whence
        );
    }
}

/// Strategy producing one fixed value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform strategy over a type's whole domain (see [`any`]).
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// `any::<T>()`: the uniform strategy over all of `T`.
pub fn any<T>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

macro_rules! impl_any_int {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_any_int!(u8, u16, u32, u64, usize);

impl Strategy for Any<bool> {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() >> 63 == 1
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                rng.between(self.start as u64, self.end as u64 - 1) as $t
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                rng.between(*self.start() as u64, *self.end() as u64) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// The `prop_oneof!` union: picks a random arm, uniformly.
pub struct OneOf<V> {
    /// The alternative strategies.
    pub arms: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> Strategy for OneOf<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        assert!(!self.arms.is_empty());
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

/// Namespaced strategy modules mirroring `proptest::prop`.
pub mod prop {
    /// Boolean strategies.
    pub mod bool {
        /// The uniform boolean strategy.
        pub const ANY: crate::Any<::core::primitive::bool> = crate::Any {
            _marker: std::marker::PhantomData,
        };
    }

    pub use crate::collection;
}

/// Everything a property-test file wants in scope.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Just, ProptestConfig, Strategy,
    };
}

/// Uniform choice between listed strategies (all must generate the same
/// type).
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::OneOf { arms: vec![$($crate::boxed($arm)),+] }
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a == *b, "assertion failed: {:?} != {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a == *b, "{}: {:?} != {:?}", format!($($fmt)+), a, b);
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a != *b, "assertion failed: both sides are {:?}", a);
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a != *b, "{}: both sides are {:?}", format!($($fmt)+), a);
    }};
}

/// Rejects the current case (it is regenerated and does not count).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Declares property tests: each function runs `config.cases` times with
/// inputs drawn from the listed strategies.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@block ($cfg) $($rest)*);
    };
    (
        @block ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::TestRng::from_name(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                let mut __case: u32 = 0;
                let mut __attempts: u32 = 0;
                while __case < __config.cases {
                    __attempts += 1;
                    assert!(
                        __attempts <= __config.cases.saturating_mul(20).max(1000),
                        "proptest: too many rejected cases in {}",
                        stringify!($name),
                    );
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)*
                    let __outcome = (move || -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    match __outcome {
                        ::std::result::Result::Ok(()) => __case += 1,
                        ::std::result::Result::Err($crate::TestCaseError::Reject) => {}
                        ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                            panic!("proptest case #{} failed: {}", __case, msg);
                        }
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@block ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = crate::TestRng::seed(1);
        let strat = (0u16..3, 10u64..=20, any::<bool>());
        for _ in 0..200 {
            let (a, b, _c) = crate::Strategy::generate(&strat, &mut rng);
            assert!(a < 3);
            assert!((10..=20).contains(&b));
        }
    }

    #[test]
    fn oneof_hits_every_arm() {
        let mut rng = crate::TestRng::seed(2);
        let strat = prop_oneof![Just(1u32), Just(2u32), Just(3u32)];
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            seen.insert(crate::Strategy::generate(&strat, &mut rng));
        }
        assert_eq!(seen.len(), 3);
    }

    #[test]
    fn map_composes() {
        let mut rng = crate::TestRng::seed(3);
        let strat = (0u32..10).prop_map(|v| v * 2);
        for _ in 0..50 {
            let v = crate::Strategy::generate(&strat, &mut rng);
            assert_eq!(v % 2, 0);
            assert!(v < 20);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_machinery_works(a in 0u8..10, b in 5u64..6) {
            prop_assume!(a != 3);
            prop_assert!(a < 10);
            prop_assert_eq!(b, 5);
            prop_assert_ne!(a as u64, 100);
        }
    }
}
