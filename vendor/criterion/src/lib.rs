//! Offline drop-in subset of [`criterion`](https://docs.rs/criterion).
//!
//! Provides the macro/struct surface the workspace's benches use —
//! [`Criterion`], benchmark groups, [`BenchmarkId`], [`Throughput`],
//! `criterion_group!`/`criterion_main!` — with a simple measurement loop:
//! warm up briefly, then time a fixed batch and report mean ns/iter to
//! stdout. No statistics, plots or baselines; the point is that
//! `cargo bench` runs and prints comparable numbers offline.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Throughput annotation for a benchmark group (printed, not analyzed).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter component.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id carrying only a parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// The timing loop handed to benchmark closures.
pub struct Bencher {
    /// Mean nanoseconds per iteration, filled by [`iter`](Bencher::iter).
    ns_per_iter: f64,
}

impl Bencher {
    /// Times `routine`: short warm-up, then enough iterations to fill the
    /// measurement window, reporting the mean.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and calibration: find an iteration count that runs
        // ≈ the measurement window.
        let calibration_start = Instant::now();
        let mut calibration_iters: u64 = 0;
        while calibration_start.elapsed() < Duration::from_millis(50) {
            std::hint::black_box(routine());
            calibration_iters += 1;
        }
        let per_iter = Duration::from_millis(50).as_nanos() as f64 / calibration_iters as f64;
        let target = Duration::from_millis(300).as_nanos() as f64;
        let iters = ((target / per_iter) as u64).clamp(1, 10_000_000);

        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(routine());
        }
        self.ns_per_iter = start.elapsed().as_nanos() as f64 / iters as f64;
    }
}

fn print_result(name: &str, throughput: Option<Throughput>, ns: f64) {
    let rate = match throughput {
        Some(Throughput::Bytes(b)) => {
            format!("  ({:.1} MiB/s)", b as f64 / (ns / 1e9) / (1024.0 * 1024.0))
        }
        Some(Throughput::Elements(e)) => format!("  ({:.0} elem/s)", e as f64 / (ns / 1e9)),
        None => String::new(),
    };
    if ns >= 1_000_000.0 {
        println!("{name:<50} {:>12.3} ms/iter{rate}", ns / 1e6);
    } else if ns >= 1_000.0 {
        println!("{name:<50} {:>12.3} µs/iter{rate}", ns / 1e3);
    } else {
        println!("{name:<50} {ns:>12.1} ns/iter{rate}");
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Overrides the sample count (accepted for compatibility; the simple
    /// loop has no sampling).
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    /// Overrides the measurement window (accepted for compatibility).
    pub fn measurement_time(&mut self, _window: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher { ns_per_iter: 0.0 };
        f(&mut b, input);
        print_result(
            &format!("{}/{}", self.name, id),
            self.throughput,
            b.ns_per_iter,
        );
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId2>, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { ns_per_iter: 0.0 };
        f(&mut b);
        print_result(
            &format!("{}/{}", self.name, id.into().0),
            self.throughput,
            b.ns_per_iter,
        );
    }

    /// Ends the group (prints nothing; exists for API compatibility).
    pub fn finish(self) {}
}

/// Either a string or a [`BenchmarkId`] (what `bench_function` accepts).
pub struct BenchmarkId2(String);

impl From<&str> for BenchmarkId2 {
    fn from(s: &str) -> Self {
        BenchmarkId2(s.to_string())
    }
}

impl From<String> for BenchmarkId2 {
    fn from(s: String) -> Self {
        BenchmarkId2(s)
    }
}

impl From<BenchmarkId> for BenchmarkId2 {
    fn from(id: BenchmarkId) -> Self {
        BenchmarkId2(id.label)
    }
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { ns_per_iter: 0.0 };
        f(&mut b);
        print_result(name, None, b.ns_per_iter);
        self
    }
}

/// Re-export matching `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a benchmark group function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_render() {
        assert_eq!(BenchmarkId::new("enc", 64).to_string(), "enc/64");
        assert_eq!(BenchmarkId::from_parameter(9).to_string(), "9");
    }
}
