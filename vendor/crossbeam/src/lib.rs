//! Offline drop-in subset of [`crossbeam`](https://docs.rs/crossbeam):
//! MPMC channels with timeout/try receives and a `select!` macro covering
//! the `recv/recv/default(timeout)` shape the workspace uses.

#![forbid(unsafe_code)]

pub mod channel;

/// Two- or three-receiver + default-timeout `select!`.
///
/// Supports exactly the shapes
/// `select! { recv(a) -> x => ..., recv(b) -> y => ..., default(d) => ... }`
/// and the same with a third `recv` arm (what upstream crossbeam calls a
/// biased ready-select is here a fair-ish poll loop: receivers are tried
/// in order, sleeping briefly between rounds until the default deadline
/// passes). A disconnected channel is ready with `Err`, exactly like
/// upstream.
#[macro_export]
macro_rules! select {
    (
        recv($r1:expr) -> $p1:pat => $e1:expr,
        recv($r2:expr) -> $p2:pat => $e2:expr,
        recv($r3:expr) -> $p3:pat => $e3:expr,
        default($d:expr) => $e4:expr $(,)?
    ) => {{
        enum __Select<A, B, C> {
            First(A),
            Second(B),
            Third(C),
            Timeout,
        }
        let __decision = {
            let deadline = ::std::time::Instant::now() + $d;
            '__select: loop {
                let mut __disconnected1 = false;
                let mut __disconnected2 = false;
                let mut __disconnected3 = false;
                match $crate::channel::Receiver::try_recv(&$r1) {
                    Ok(v) => break '__select __Select::First($crate::channel::ok_result(&$r1, v)),
                    Err($crate::channel::TryRecvError::Disconnected) => __disconnected1 = true,
                    Err($crate::channel::TryRecvError::Empty) => {}
                }
                match $crate::channel::Receiver::try_recv(&$r2) {
                    Ok(v) => break '__select __Select::Second($crate::channel::ok_result(&$r2, v)),
                    Err($crate::channel::TryRecvError::Disconnected) => __disconnected2 = true,
                    Err($crate::channel::TryRecvError::Empty) => {}
                }
                match $crate::channel::Receiver::try_recv(&$r3) {
                    Ok(v) => break '__select __Select::Third($crate::channel::ok_result(&$r3, v)),
                    Err($crate::channel::TryRecvError::Disconnected) => __disconnected3 = true,
                    Err($crate::channel::TryRecvError::Empty) => {}
                }
                if __disconnected1 {
                    break '__select __Select::First($crate::channel::disconnected_result(&$r1));
                }
                if __disconnected2 {
                    break '__select __Select::Second($crate::channel::disconnected_result(&$r2));
                }
                if __disconnected3 {
                    break '__select __Select::Third($crate::channel::disconnected_result(&$r3));
                }
                let now = ::std::time::Instant::now();
                if now >= deadline {
                    break '__select __Select::Timeout;
                }
                let nap = ::std::cmp::min(
                    deadline.saturating_duration_since(now),
                    ::std::time::Duration::from_micros(500),
                );
                $crate::channel::Receiver::wait(&$r1, nap);
            }
        };
        match __decision {
            __Select::First(r) => {
                let $p1 = r;
                $e1
            }
            __Select::Second(r) => {
                let $p2 = r;
                $e2
            }
            __Select::Third(r) => {
                let $p3 = r;
                $e3
            }
            __Select::Timeout => $e4,
        }
    }};
    (
        recv($r1:expr) -> $p1:pat => $e1:expr,
        recv($r2:expr) -> $p2:pat => $e2:expr,
        default($d:expr) => $e3:expr $(,)?
    ) => {{
        // The readiness poll runs in its own labeled loop and *returns a
        // decision*; the arm bodies execute outside it, so a `break` or
        // `continue` written in an arm binds to the caller's loop, exactly
        // as with upstream crossbeam's select!.
        enum __Select<A, B> {
            First(A),
            Second(B),
            Timeout,
        }
        let __decision = {
            let deadline = ::std::time::Instant::now() + $d;
            '__select: loop {
                // Messages first, on either channel; disconnection is also
                // "ready" (as in upstream crossbeam) but at the lowest
                // priority, so a disconnected channel cannot starve a
                // queued message on the other one.
                let mut __disconnected1 = false;
                let mut __disconnected2 = false;
                match $crate::channel::Receiver::try_recv(&$r1) {
                    Ok(v) => break '__select __Select::First($crate::channel::ok_result(&$r1, v)),
                    Err($crate::channel::TryRecvError::Disconnected) => __disconnected1 = true,
                    Err($crate::channel::TryRecvError::Empty) => {}
                }
                match $crate::channel::Receiver::try_recv(&$r2) {
                    Ok(v) => break '__select __Select::Second($crate::channel::ok_result(&$r2, v)),
                    Err($crate::channel::TryRecvError::Disconnected) => __disconnected2 = true,
                    Err($crate::channel::TryRecvError::Empty) => {}
                }
                if __disconnected1 {
                    break '__select __Select::First($crate::channel::disconnected_result(&$r1));
                }
                if __disconnected2 {
                    break '__select __Select::Second($crate::channel::disconnected_result(&$r2));
                }
                let now = ::std::time::Instant::now();
                if now >= deadline {
                    break '__select __Select::Timeout;
                }
                // Wait for the first channel to signal, bounded by the
                // deadline and a polling floor (the second channel cannot
                // wake this sleeper, so cap the nap).
                let nap = ::std::cmp::min(
                    deadline.saturating_duration_since(now),
                    ::std::time::Duration::from_micros(500),
                );
                $crate::channel::Receiver::wait(&$r1, nap);
            }
        };
        match __decision {
            __Select::First(r) => {
                let $p1 = r;
                $e1
            }
            __Select::Second(r) => {
                let $p2 = r;
                $e2
            }
            __Select::Timeout => $e3,
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::channel::{bounded, unbounded, RecvTimeoutError};
    use std::time::Duration;

    #[test]
    fn send_recv_roundtrip() {
        let (tx, rx) = unbounded();
        tx.send(5).unwrap();
        assert_eq!(rx.recv().unwrap(), 5);
    }

    #[test]
    fn recv_timeout_times_out() {
        let (_tx, rx) = bounded::<u8>(1);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
    }

    #[test]
    fn drop_sender_disconnects() {
        let (tx, rx) = unbounded::<u8>();
        drop(tx);
        assert!(rx.recv().is_err());
    }

    #[test]
    fn drop_receiver_fails_send() {
        let (tx, rx) = unbounded::<u8>();
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn select_prefers_ready_channel() {
        let (tx1, rx1) = unbounded::<u8>();
        let (_tx2, rx2) = unbounded::<u8>();
        tx1.send(9).unwrap();
        let mut got = None;
        select! {
            recv(rx1) -> v => got = Some(v.unwrap()),
            recv(rx2) -> _v => unreachable!(),
            default(Duration::from_millis(50)) => {}
        }
        assert_eq!(got, Some(9));
    }

    #[test]
    fn select_falls_through_to_default() {
        let (_tx1, rx1) = unbounded::<u8>();
        let (_tx2, rx2) = unbounded::<u8>();
        let mut defaults = 0;
        select! {
            recv(rx1) -> _v => unreachable!(),
            recv(rx2) -> _v => unreachable!(),
            default(Duration::from_millis(5)) => defaults += 1,
        }
        assert_eq!(defaults, 1);
    }

    #[test]
    fn select_sees_disconnect() {
        let (tx1, rx1) = unbounded::<u8>();
        let (_tx2, rx2) = unbounded::<u8>();
        drop(tx1);
        let mut disconnected = false;
        select! {
            recv(rx1) -> v => disconnected = v.is_err(),
            recv(rx2) -> _v => unreachable!(),
            default(Duration::from_millis(50)) => {}
        }
        assert!(disconnected);
    }

    #[test]
    fn three_way_select_prefers_ready_channel() {
        let (_tx1, rx1) = unbounded::<u8>();
        let (_tx2, rx2) = unbounded::<u8>();
        let (tx3, rx3) = unbounded::<u8>();
        tx3.send(7).unwrap();
        let mut got = None;
        select! {
            recv(rx1) -> _v => unreachable!(),
            recv(rx2) -> _v => unreachable!(),
            recv(rx3) -> v => got = Some(v.unwrap()),
            default(Duration::from_millis(50)) => {}
        }
        assert_eq!(got, Some(7));
    }

    #[test]
    fn three_way_select_falls_through_to_default() {
        let (_tx1, rx1) = unbounded::<u8>();
        let (_tx2, rx2) = unbounded::<u8>();
        let (_tx3, rx3) = unbounded::<u8>();
        let mut defaults = 0;
        select! {
            recv(rx1) -> _v => unreachable!(),
            recv(rx2) -> _v => unreachable!(),
            recv(rx3) -> _v => unreachable!(),
            default(Duration::from_millis(5)) => defaults += 1,
        }
        assert_eq!(defaults, 1);
    }

    #[test]
    fn cross_thread_delivery() {
        let (tx, rx) = unbounded();
        let t = std::thread::spawn(move || {
            for i in 0..100 {
                tx.send(i).unwrap();
            }
        });
        let mut sum = 0;
        for _ in 0..100 {
            sum += rx.recv_timeout(Duration::from_secs(2)).unwrap();
        }
        t.join().unwrap();
        assert_eq!(sum, 4950);
    }
}
