//! MPMC channels: unbounded queues with condvar-based blocking receives.
//!
//! `bounded(cap)` is accepted for API compatibility but does not apply
//! back-pressure (sends never block); the workspace only uses `bounded(1)`
//! for single-reply rendezvous, where the distinction is unobservable.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Error returned by [`Sender::send`] when every receiver is gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> std::fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "sending on a disconnected channel")
    }
}

/// Error returned by [`Receiver::recv`] when the channel is empty and
/// every sender is gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl std::fmt::Display for RecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "receiving on an empty, disconnected channel")
    }
}

impl std::error::Error for RecvError {}

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// The wait hit the deadline with nothing delivered.
    Timeout,
    /// The channel is empty and every sender is gone.
    Disconnected,
}

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// Nothing queued right now.
    Empty,
    /// The channel is empty and every sender is gone.
    Disconnected,
}

struct State<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

struct Shared<T> {
    state: Mutex<State<T>>,
    ready: Condvar,
}

/// The sending half; cheap to clone.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The receiving half; cheap to clone (MPMC — each message goes to one
/// receiver).
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// Creates an unbounded channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        state: Mutex::new(State {
            queue: VecDeque::new(),
            senders: 1,
            receivers: 1,
        }),
        ready: Condvar::new(),
    });
    (
        Sender {
            shared: shared.clone(),
        },
        Receiver { shared },
    )
}

/// Creates a "bounded" channel (see module docs: no back-pressure).
pub fn bounded<T>(_cap: usize) -> (Sender<T>, Receiver<T>) {
    unbounded()
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.state.lock().unwrap().senders += 1;
        Sender {
            shared: self.shared.clone(),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut st = self.shared.state.lock().unwrap();
        st.senders -= 1;
        if st.senders == 0 {
            drop(st);
            self.shared.ready.notify_all();
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared.state.lock().unwrap().receivers += 1;
        Receiver {
            shared: self.shared.clone(),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.shared.state.lock().unwrap().receivers -= 1;
    }
}

impl<T> std::fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sender").finish_non_exhaustive()
    }
}

impl<T> std::fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Receiver").finish_non_exhaustive()
    }
}

/// Builds the `Err(RecvError)` result of a disconnected receive with the
/// item type tied to `_receiver` (lets `select!` arms infer their type).
pub fn disconnected_result<T>(_receiver: &Receiver<T>) -> Result<T, RecvError> {
    Err(RecvError)
}

/// Wraps a received value as `Ok`, with the result type tied to
/// `_receiver` (lets `select!` arms infer their type).
pub fn ok_result<T>(_receiver: &Receiver<T>, value: T) -> Result<T, RecvError> {
    Ok(value)
}

impl<T> Sender<T> {
    /// Enqueues `value`, failing if every receiver is gone.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut st = self.shared.state.lock().unwrap();
        if st.receivers == 0 {
            return Err(SendError(value));
        }
        st.queue.push_back(value);
        drop(st);
        self.shared.ready.notify_one();
        Ok(())
    }

    /// As [`send`](Self::send); the channel is unbounded, so a send never
    /// blocks and "try" cannot fail with a full queue.
    pub fn try_send(&self, value: T) -> Result<(), SendError<T>> {
        self.send(value)
    }
}

impl<T> Receiver<T> {
    /// Dequeues immediately, or reports why it cannot.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut st = self.shared.state.lock().unwrap();
        match st.queue.pop_front() {
            Some(v) => Ok(v),
            None if st.senders == 0 => Err(TryRecvError::Disconnected),
            None => Err(TryRecvError::Empty),
        }
    }

    /// Blocks until a message arrives or every sender is gone.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut st = self.shared.state.lock().unwrap();
        loop {
            if let Some(v) = st.queue.pop_front() {
                return Ok(v);
            }
            if st.senders == 0 {
                return Err(RecvError);
            }
            st = self.shared.ready.wait(st).unwrap();
        }
    }

    /// Blocks up to `timeout`.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut st = self.shared.state.lock().unwrap();
        loop {
            if let Some(v) = st.queue.pop_front() {
                return Ok(v);
            }
            if st.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, _res) = self.shared.ready.wait_timeout(st, deadline - now).unwrap();
            st = guard;
        }
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.shared.state.lock().unwrap().queue.is_empty()
    }

    /// Number of queued messages.
    pub fn len(&self) -> usize {
        self.shared.state.lock().unwrap().queue.len()
    }

    /// Parks the caller for up to `nap` or until this channel signals
    /// (used by the `select!` poll loop).
    pub fn wait(&self, nap: Duration) {
        let st = self.shared.state.lock().unwrap();
        if !st.queue.is_empty() || st.senders == 0 {
            return;
        }
        let _ = self.shared.ready.wait_timeout(st, nap).unwrap();
    }
}

/// Re-export so `crossbeam::channel::select!` resolves as upstream.
pub use crate::select;
