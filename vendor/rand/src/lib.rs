//! Offline drop-in subset of the [`rand`](https://docs.rs/rand) 0.8 API.
//!
//! Provides [`rngs::StdRng`] (an xoshiro256++ generator), the
//! [`SeedableRng`] and [`Rng`] traits, and uniform sampling over integer
//! and float ranges — the surface the workspace uses. Streams are
//! deterministic per seed (which is all the simulator requires) but are
//! *not* bit-compatible with upstream `rand`.

#![forbid(unsafe_code)]

/// Random number generator trait: typed draws and uniform ranges.
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Draws a uniformly random value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self.next_u64())
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0,1]");
        self.gen::<f64>() < p
    }

    /// Draws a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: UniformSample,
        R: std::ops::RangeBounds<T>,
    {
        T::sample_range(self, &range)
    }
}

/// Types drawable uniformly over their whole domain via [`Rng::gen`].
pub trait Standard: Sized {
    /// Maps 64 uniform bits onto the type.
    fn sample(bits: u64) -> Self;
}

impl Standard for u64 {
    fn sample(bits: u64) -> Self {
        bits
    }
}

impl Standard for u32 {
    fn sample(bits: u64) -> Self {
        (bits >> 32) as u32
    }
}

impl Standard for u16 {
    fn sample(bits: u64) -> Self {
        (bits >> 48) as u16
    }
}

impl Standard for u8 {
    fn sample(bits: u64) -> Self {
        (bits >> 56) as u8
    }
}

impl Standard for bool {
    fn sample(bits: u64) -> Self {
        bits >> 63 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)`: the top 53 bits over 2^53.
    fn sample(bits: u64) -> Self {
        (bits >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Types uniformly samplable from a range by [`Rng::gen_range`].
pub trait UniformSample: Sized {
    /// Draws uniformly from `range` (the caller guarantees `R` came from a
    /// `gen_range` call; empty ranges panic).
    fn sample_range<G: Rng + ?Sized, R: std::ops::RangeBounds<Self>>(
        rng: &mut G,
        range: &R,
    ) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformSample for $t {
            fn sample_range<G: Rng + ?Sized, R: std::ops::RangeBounds<Self>>(
                rng: &mut G,
                range: &R,
            ) -> Self {
                use std::ops::Bound;
                let lo: u128 = match range.start_bound() {
                    Bound::Included(&v) => v as u128,
                    Bound::Excluded(&v) => v as u128 + 1,
                    Bound::Unbounded => 0,
                };
                let hi: u128 = match range.end_bound() {
                    Bound::Included(&v) => v as u128,
                    Bound::Excluded(&v) => {
                        (v as u128).checked_sub(1).expect("cannot sample from an empty range")
                    }
                    Bound::Unbounded => <$t>::MAX as u128,
                };
                assert!(lo <= hi, "cannot sample from an empty range");
                let span = hi - lo + 1;
                // Modulo reduction: the bias over a 128-bit draw is
                // negligible for simulation workloads.
                let draw = (((rng.next_u64() as u128) << 64) | rng.next_u64() as u128) % span;
                (lo + draw) as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize);

macro_rules! impl_uniform_int_signed {
    ($($t:ty),*) => {$(
        impl UniformSample for $t {
            fn sample_range<G: Rng + ?Sized, R: std::ops::RangeBounds<Self>>(
                rng: &mut G,
                range: &R,
            ) -> Self {
                use std::ops::Bound;
                let lo: i128 = match range.start_bound() {
                    Bound::Included(&v) => v as i128,
                    Bound::Excluded(&v) => v as i128 + 1,
                    Bound::Unbounded => <$t>::MIN as i128,
                };
                let hi: i128 = match range.end_bound() {
                    Bound::Included(&v) => v as i128,
                    Bound::Excluded(&v) => v as i128 - 1,
                    Bound::Unbounded => <$t>::MAX as i128,
                };
                assert!(lo <= hi, "cannot sample from an empty range");
                let span = (hi - lo + 1) as u128;
                let draw = (((rng.next_u64() as u128) << 64) | rng.next_u64() as u128) % span;
                (lo + draw as i128) as $t
            }
        }
    )*};
}

impl_uniform_int_signed!(i8, i16, i32, i64, isize);

impl UniformSample for f64 {
    fn sample_range<G: Rng + ?Sized, R: std::ops::RangeBounds<Self>>(
        rng: &mut G,
        range: &R,
    ) -> Self {
        use std::ops::Bound;
        let lo = match range.start_bound() {
            Bound::Included(&v) | Bound::Excluded(&v) => v,
            Bound::Unbounded => 0.0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&v) | Bound::Excluded(&v) => v,
            Bound::Unbounded => 1.0,
        };
        assert!(lo < hi, "cannot sample from an empty range");
        lo + (hi - lo) * rng.gen::<f64>()
    }
}

/// Construction of reproducible generators from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Generator implementations.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The standard seedable generator: xoshiro256++ seeded via splitmix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 expansion, the canonical xoshiro seeding routine.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w: u16 = rng.gen_range(0..=3);
            assert!(w <= 3);
            let f: f64 = rng.gen_range(0.0..0.25);
            assert!((0.0..0.25).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn f64_unit_interval() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
