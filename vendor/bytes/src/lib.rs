//! Offline drop-in subset of the [`bytes`](https://docs.rs/bytes) crate.
//!
//! The build environment has no crate registry, so the workspace vendors
//! the minimal API surface it actually uses: [`Bytes`] (cheap reference
//! counted clones), [`BytesMut`] (an append buffer), and the [`Buf`] /
//! [`BufMut`] cursor traits with big-endian integer accessors.
//!
//! Semantics match the real crate for this subset; code written against it
//! compiles unchanged against upstream `bytes` if the registry returns.

#![forbid(unsafe_code)]

use std::sync::Arc;

/// A cheaply cloneable, immutable, contiguous slice of memory.
///
/// Cloning bumps a reference count; the underlying allocation is shared.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Creates an empty `Bytes`.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Creates `Bytes` from a static byte slice (copied once; the real
    /// crate borrows, which only changes allocation, not behavior).
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes::from(bytes.to_vec())
    }

    /// Creates `Bytes` by copying `data`.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copies the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }

    /// Returns a sub-slice sharing the same allocation.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        assert!(range.start <= range.end && self.start + range.end <= self.end);
        Bytes {
            data: self.data.clone(),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_ref()
    }
}

impl std::borrow::Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_ref()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        let end = data.len();
        Bytes {
            data: Arc::new(data),
            start: 0,
            end,
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(data: &'static [u8]) -> Self {
        Bytes::from_static(data)
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Bytes::from_static(s.as_bytes())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_ref() == other.as_ref()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_ref() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_ref() == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_ref() == other.as_slice()
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_ref().hash(state);
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_ref().cmp(other.as_ref())
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_ref() {
            for ch in std::ascii::escape_default(b) {
                write!(f, "{}", ch as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl std::iter::FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

/// A growable byte buffer, convertible into [`Bytes`] via
/// [`freeze`](BytesMut::freeze).
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// Creates an empty buffer with at least `capacity` bytes reserved.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(capacity),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts the buffer into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }

    /// Clears the buffer, retaining its capacity.
    pub fn clear(&mut self) {
        self.data.clear();
    }

    /// Splits the filled bytes off into a new `BytesMut`, leaving `self`
    /// empty. (Upstream keeps the spare capacity on `self` and lets a
    /// later `reserve` reclaim the allocation once the split-off handle
    /// drops; this subset moves the allocation instead — the next fill
    /// re-grows it, which is the same amortized cost. Code written
    /// against this compiles unchanged against upstream, where it *is*
    /// the zero-copy reuse path.)
    pub fn split(&mut self) -> BytesMut {
        BytesMut {
            data: std::mem::take(&mut self.data),
        }
    }

    /// Appends a slice.
    pub fn extend_from_slice(&mut self, extend: &[u8]) {
        self.data.extend_from_slice(extend);
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl std::ops::Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl std::fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        Bytes::from(self.data.clone()).fmt(f)
    }
}

/// Read-cursor over a contiguous byte source (big-endian accessors).
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;

    /// The unconsumed bytes.
    fn chunk(&self) -> &[u8];

    /// Advances the cursor by `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Reads a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        let mut b = [0u8; 2];
        b.copy_from_slice(&self.chunk()[..2]);
        self.advance(2);
        u16::from_be_bytes(b)
    }

    /// Reads a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        b.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_be_bytes(b)
    }

    /// Reads a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        b.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_be_bytes(b)
    }

    /// Consumes `len` bytes into an owned [`Bytes`].
    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        let out = Bytes::from(self.chunk()[..len].to_vec());
        self.advance(len);
        out
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_ref()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len());
        self.start += cnt;
    }
}

/// Write-cursor for appending (big-endian writers).
pub trait BufMut {
    /// Appends a slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_big_endian() {
        let mut buf = BytesMut::with_capacity(16);
        buf.put_u8(7);
        buf.put_u16(515);
        buf.put_u32(70_000);
        buf.put_u64(1 << 40);
        let frozen = buf.freeze();
        let mut r: &[u8] = frozen.as_ref();
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16(), 515);
        assert_eq!(r.get_u32(), 70_000);
        assert_eq!(r.get_u64(), 1 << 40);
        assert!(!r.has_remaining());
    }

    #[test]
    fn split_takes_the_filled_bytes_and_clear_keeps_capacity() {
        let mut buf = BytesMut::with_capacity(8);
        buf.extend_from_slice(b"abc");
        let head = buf.split().freeze();
        assert_eq!(head.as_ref(), b"abc");
        assert!(buf.is_empty());
        buf.extend_from_slice(b"de");
        buf.clear();
        assert!(buf.is_empty());
        buf.extend_from_slice(b"f");
        assert_eq!(buf.as_ref(), b"f");
        assert_eq!(head.as_ref(), b"abc", "split-off bytes are untouched");
    }

    #[test]
    fn bytes_clone_shares_and_compares() {
        let b = Bytes::from(vec![1, 2, 3]);
        let c = b.clone();
        assert_eq!(b, c);
        assert_eq!(b.len(), 3);
        assert_eq!(&b[1..], &[2, 3]);
        assert_eq!(b.slice(1..3).as_ref(), &[2, 3]);
    }

    #[test]
    fn copy_to_bytes_consumes() {
        let data = [1u8, 2, 3, 4];
        let mut r: &[u8] = &data;
        let head = r.copy_to_bytes(3);
        assert_eq!(head.as_ref(), &[1, 2, 3]);
        assert_eq!(r.remaining(), 1);
    }

    #[test]
    fn buf_on_bytes_advances() {
        let mut b = Bytes::from(vec![9u8, 0, 1]);
        assert_eq!(b.get_u8(), 9);
        assert_eq!(b.get_u16(), 1);
        assert!(b.is_empty());
    }
}
