//! Offline drop-in subset of [`parking_lot`](https://docs.rs/parking_lot):
//! [`Mutex`] and [`RwLock`] with the non-poisoning API, implemented over
//! the std primitives (a poisoned std lock panics here, matching
//! `parking_lot`'s behavior of not having poison at all for code that
//! never panics while holding a guard).

#![forbid(unsafe_code)]

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock (non-poisoning API).
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a lock holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// A readers-writer lock (non-poisoning API).
#[derive(Debug, Default)]
pub struct RwLock<T> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner
            .read()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner
            .write()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_guards_mutation() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }
}
