//! Umbrella crate for the `rmem` workspace: re-exports of the subsystem
//! crates, so the repository-root integration tests and examples (and any
//! quick experiment) can depend on one name.
//!
//! The real code lives in the `crates/` workspace members:
//!
//! * [`types`] — vocabulary types, wire codec, the automaton model;
//! * [`storage`] — stable-storage backends (memory, fsync'd file, fault
//!   injection);
//! * [`core`] — the register emulations (Figs. 4–5 and friends) and the
//!   multi-register [`core::SharedMemory`];
//! * [`consistency`] — persistent/transient atomicity checkers;
//! * [`sim`] — the deterministic discrete-event simulator;
//! * [`net`] — the real socket/thread runtime;
//! * [`kv`] — the sharded key-value store layered over the shared memory;
//! * [`batch`] — the per-shard quorum batching engine over the store.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use rmem_batch as batch;
pub use rmem_consistency as consistency;
pub use rmem_core as core;
pub use rmem_kv as kv;
pub use rmem_net as net;
pub use rmem_sim as sim;
pub use rmem_storage as storage;
pub use rmem_types as types;
